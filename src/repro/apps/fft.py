"""Instrumented fixed-point radix-2 FFT (the paper's first application).

The transform operates on 16-bit two's-complement data (Q1.15) and routes
every addition/subtraction and every twiddle multiplication through the
operator models supplied by the caller, counting operations along the way so
the datapath energy model (Equation 1) can charge them.  Per-stage scaling by
1/2 keeps the butterflies overflow-free, which is the classical fixed-point
FFT arrangement.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.datapath import OperationCounter, OperationCounts
from ..fxp.quantize import wrap_to_width
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import TruncatedMultiplier


@dataclass(frozen=True)
class FftResult:
    """Fixed-point FFT output with the operation inventory of the run."""

    real: np.ndarray
    imag: np.ndarray
    counts: OperationCounts

    def as_complex(self, frac_bits: int = 15) -> np.ndarray:
        """Reassemble the output into complex floating-point values."""
        scale = 2.0 ** (-frac_bits)
        return (self.real.astype(np.float64) + 1j * self.imag.astype(np.float64)) * scale


class FixedPointFFT:
    """Radix-2 decimation-in-time FFT on 16-bit fixed-point data.

    Parameters
    ----------
    size:
        Transform length (a power of two; the paper uses 32).
    data_width:
        Word length of the datapath (16 bits in every experiment).
    adder / multiplier:
        Operator models executing the additions and twiddle multiplications.
        ``None`` selects the accurate adder and the fixed-width truncated
        multiplier, which is the exact fixed-point baseline.
    """

    def __init__(self, size: int = 32, data_width: int = 16,
                 adder: Optional[AdderOperator] = None,
                 multiplier: Optional[MultiplierOperator] = None) -> None:
        if size < 2 or size & (size - 1) != 0:
            raise ValueError("FFT size must be a power of two >= 2")
        self.size = size
        self.data_width = data_width
        self.frac_bits = data_width - 1
        self.adder = adder if adder is not None else ExactAdder(data_width)
        self.multiplier = multiplier if multiplier is not None \
            else TruncatedMultiplier(data_width, data_width)
        self._twiddles = self._quantized_twiddles()

    # ------------------------------------------------------------------ #
    # Twiddle factors
    # ------------------------------------------------------------------ #
    def _quantized_twiddles(self) -> Tuple[np.ndarray, np.ndarray]:
        """Twiddle factors W_N^k quantised to the data word length."""
        k = np.arange(self.size // 2)
        angle = -2.0 * np.pi * k / self.size
        scale = (1 << self.frac_bits) - 1
        real = np.round(np.cos(angle) * scale).astype(np.int64)
        imag = np.round(np.sin(angle) * scale).astype(np.int64)
        return real, imag

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    def _add(self, a: np.ndarray, b: np.ndarray,
             counter: OperationCounter) -> np.ndarray:
        counter.count_additions(int(np.size(a)))
        return np.asarray(self.adder.aligned(a, b), dtype=np.int64)

    def _sub(self, a: np.ndarray, b: np.ndarray,
             counter: OperationCounter) -> np.ndarray:
        negated = np.asarray(
            wrap_to_width(-np.asarray(b, dtype=np.int64), self.data_width),
            dtype=np.int64)
        counter.count_additions(int(np.size(a)))
        return np.asarray(self.adder.aligned(a, negated), dtype=np.int64)

    def _mul(self, a: np.ndarray, b: np.ndarray,
             counter: OperationCounter) -> np.ndarray:
        """Q1.15 x Q1.15 product re-aligned to Q1.15 (shift by frac_bits)."""
        counter.count_multiplications(int(np.size(a)))
        product = np.asarray(self.multiplier.aligned(a, b), dtype=np.int64)
        result = product >> self.frac_bits
        return np.asarray(wrap_to_width(result, self.data_width), dtype=np.int64)

    @staticmethod
    def _halve(value: np.ndarray) -> np.ndarray:
        """Per-stage scaling by 1/2 (arithmetic shift, free in hardware)."""
        return np.asarray(value, dtype=np.int64) >> 1

    # ------------------------------------------------------------------ #
    # Transform
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bit_reverse_permutation(size: int) -> np.ndarray:
        bits = int(math.log2(size))
        indices = np.arange(size)
        reversed_indices = np.zeros(size, dtype=np.int64)
        for bit in range(bits):
            reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
        return reversed_indices

    def forward(self, real: np.ndarray, imag: Optional[np.ndarray] = None,
                counter: Optional[OperationCounter] = None) -> FftResult:
        """Run the transform on Q1.(data_width-1) integer codes."""
        counter = counter if counter is not None else OperationCounter()
        x_re = np.asarray(real, dtype=np.int64).copy()
        x_im = np.zeros_like(x_re) if imag is None \
            else np.asarray(imag, dtype=np.int64).copy()
        if x_re.shape != (self.size,):
            raise ValueError(f"expected {self.size} samples, got {x_re.shape}")

        order = self._bit_reverse_permutation(self.size)
        x_re, x_im = x_re[order], x_im[order]
        tw_re, tw_im = self._twiddles

        half = 1
        while half < self.size:
            step = self.size // (2 * half)
            for offset in range(half):
                # All butterflies sharing this twiddle, across every group,
                # are evaluated in one vectorised call to the operator models.
                tops = np.arange(offset, self.size, 2 * half, dtype=np.int64)
                bottoms = tops + half
                k = offset * step
                w_re = np.full(tops.shape, tw_re[k], dtype=np.int64)
                w_im = np.full(tops.shape, tw_im[k], dtype=np.int64)

                # Pre-scale both branches to keep the butterfly in range.
                a_re, a_im = self._halve(x_re[tops]), self._halve(x_im[tops])
                b_re, b_im = self._halve(x_re[bottoms]), self._halve(x_im[bottoms])

                # Complex twiddle multiplication (4 real mult, 2 real add).
                prod_re = self._sub(self._mul(b_re, w_re, counter),
                                    self._mul(b_im, w_im, counter), counter)
                prod_im = self._add(self._mul(b_re, w_im, counter),
                                    self._mul(b_im, w_re, counter), counter)

                # Butterfly combine (4 real additions).
                x_re[tops] = self._add(a_re, prod_re, counter)
                x_im[tops] = self._add(a_im, prod_im, counter)
                x_re[bottoms] = self._sub(a_re, prod_re, counter)
                x_im[bottoms] = self._sub(a_im, prod_im, counter)
            half *= 2

        return FftResult(real=x_re, imag=x_im, counts=counter.snapshot())

    # ------------------------------------------------------------------ #
    # References
    # ------------------------------------------------------------------ #
    def reference_spectrum(self, real: np.ndarray,
                           imag: Optional[np.ndarray] = None) -> np.ndarray:
        """Double-precision FFT with the same 1/N scaling as the datapath."""
        scale = 2.0 ** (-self.frac_bits)
        x = np.asarray(real, dtype=np.float64) * scale
        if imag is not None:
            x = x + 1j * np.asarray(imag, dtype=np.float64) * scale
        return np.fft.fft(x) / self.size

    def operation_counts(self) -> OperationCounts:
        """Operation inventory of one transform (independent of the data)."""
        stages = int(math.log2(self.size))
        butterflies = stages * self.size // 2
        return OperationCounts(additions=6 * butterflies,
                               multiplications=4 * butterflies)


def random_q15_signal(size: int, amplitude: float = 0.5,
                      seed: int = 7, frac_bits: int = 15) -> np.ndarray:
    """Uniform random test signal as Q1.(frac_bits) integer codes."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-amplitude, amplitude, size=size)
    return np.round(values * (1 << frac_bits)).astype(np.int64)
