"""Instrumented fixed-point radix-2 FFT (the paper's first application).

The transform operates on 16-bit two's-complement data (Q1.15) and routes
every addition/subtraction and every twiddle multiplication through the
:class:`~repro.core.context.ApproxContext` supplied by the caller, counting
operations along the way so the datapath energy model (Equation 1) can charge
them.  Per-stage scaling by 1/2 keeps the butterflies overflow-free, which is
the classical fixed-point FFT arrangement.

Execution is *stage-fused* by default: each of the ``log2(size)`` stages
issues ten batched context calls covering every butterfly at once, with the
stage's twiddles gathered into a per-element coefficient bank
(``ctx.mul(..., bank=True)``) so LUT backends can group them by unique
constant.  ``fused=False`` selects the seed-style per-twiddle loop — one
round of context calls per twiddle offset — which is bit-identical and
charges exactly the same operation counts, but pays O(size/2) Python
dispatches per stage.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts


@dataclass(frozen=True)
class FftResult:
    """Fixed-point FFT output with the operation inventory of the run."""

    real: np.ndarray
    imag: np.ndarray
    counts: OperationCounts

    def as_complex(self, frac_bits: int = 15) -> np.ndarray:
        """Reassemble the output into complex floating-point values."""
        scale = 2.0 ** (-frac_bits)
        return (self.real.astype(np.float64) + 1j * self.imag.astype(np.float64)) * scale


class FixedPointFFT:
    """Radix-2 decimation-in-time FFT on 16-bit fixed-point data.

    Parameters
    ----------
    size:
        Transform length (a power of two; the paper uses 32).
    data_width:
        Word length of the datapath (16 bits in every experiment).
    context:
        The :class:`ApproxContext` executing the additions and twiddle
        multiplications.  ``None`` selects the exact fixed-point baseline
        (accurate adder, fixed-width truncated multiplier, direct backend).
    fused:
        ``True`` (default) executes each stage as one batched pass over all
        butterflies with the twiddles as a coefficient bank; ``False``
        replays the seed-style per-twiddle loop.  Results and operation
        counts are bit-identical either way.
    stage_contexts:
        Optional per-stage contexts — one per ``log2(size)`` stage — for
        heterogeneous datapaths that assign a different operator to each
        stage (the design-space search's per-stage axis).  All contexts
        must share the transform's word length; stage ``s`` executes every
        butterfly of stage ``s`` through ``stage_contexts[s]``, and the
        result's counts aggregate across the distinct contexts.
    """

    def __init__(self, size: int = 32, data_width: int = 16,
                 context: Optional[ApproxContext] = None,
                 fused: bool = True,
                 stage_contexts: Optional[Sequence[ApproxContext]] = None
                 ) -> None:
        if size < 2 or size & (size - 1) != 0:
            raise ValueError("FFT size must be a power of two >= 2")
        if context is None:
            context = ApproxContext(data_width=data_width)
        elif context.data_width != data_width:
            raise ValueError(
                f"context word length ({context.data_width} bits) does not "
                f"match the requested datapath ({data_width} bits)")
        self.size = size
        self.context = context
        self.data_width = context.data_width
        self.frac_bits = context.frac_bits
        self.fused = bool(fused)
        self.stage_contexts: Optional[List[ApproxContext]] = None
        if stage_contexts is not None:
            stages = int(math.log2(size))
            contexts = list(stage_contexts)
            if len(contexts) != stages:
                raise ValueError(
                    f"expected {stages} stage contexts for a size-{size} "
                    f"transform, got {len(contexts)}")
            for stage, stage_ctx in enumerate(contexts):
                if stage_ctx.data_width != self.data_width:
                    raise ValueError(
                        f"stage {stage} context word length "
                        f"({stage_ctx.data_width} bits) does not match the "
                        f"datapath ({self.data_width} bits)")
            self.stage_contexts = contexts
        self._twiddles = self._quantized_twiddles()

    @property
    def adder(self):
        """Adder model executing the butterfly additions."""
        return self.context.adder

    @property
    def multiplier(self):
        """Multiplier model executing the twiddle multiplications."""
        return self.context.multiplier

    # ------------------------------------------------------------------ #
    # Twiddle factors
    # ------------------------------------------------------------------ #
    def _quantized_twiddles(self) -> Tuple[np.ndarray, np.ndarray]:
        """Twiddle factors W_N^k quantised to the data word length."""
        k = np.arange(self.size // 2)
        angle = -2.0 * np.pi * k / self.size
        scale = (1 << self.frac_bits) - 1
        real = np.round(np.cos(angle) * scale).astype(np.int64)
        imag = np.round(np.sin(angle) * scale).astype(np.int64)
        return real, imag

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    def _mul(self, ctx: ApproxContext, a: np.ndarray, twiddle,
             bank: bool = False) -> np.ndarray:
        """Q1.15 x Q1.15 product re-aligned to Q1.15 (shift by frac_bits)."""
        product = ctx.mul(a, twiddle, bank=bank)
        return ctx.wrap(product >> self.frac_bits)

    @staticmethod
    def _halve(value: np.ndarray) -> np.ndarray:
        """Per-stage scaling by 1/2 (arithmetic shift, free in hardware)."""
        return np.asarray(value, dtype=np.int64) >> 1

    # ------------------------------------------------------------------ #
    # Transform
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bit_reverse_permutation(size: int) -> np.ndarray:
        bits = int(math.log2(size))
        indices = np.arange(size)
        reversed_indices = np.zeros(size, dtype=np.int64)
        for bit in range(bits):
            reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
        return reversed_indices

    def forward(self, real: np.ndarray,
                imag: Optional[np.ndarray] = None) -> FftResult:
        """Run the transform on Q1.(data_width-1) integer codes."""
        contexts = self.stage_contexts
        starting: List[Tuple[ApproxContext, OperationCounts]] = []
        seen_ids = set()
        for stage_ctx in (contexts if contexts is not None else [self.context]):
            if id(stage_ctx) not in seen_ids:
                seen_ids.add(id(stage_ctx))
                starting.append((stage_ctx, stage_ctx.counts))
        x_re = np.asarray(real, dtype=np.int64).copy()
        x_im = np.zeros_like(x_re) if imag is None \
            else np.asarray(imag, dtype=np.int64).copy()
        if x_re.shape != (self.size,):
            raise ValueError(f"expected {self.size} samples, got {x_re.shape}")

        order = self._bit_reverse_permutation(self.size)
        x_re, x_im = x_re[order], x_im[order]
        tw_re, tw_im = self._twiddles

        half = 1
        stage = 0
        while half < self.size:
            ctx = contexts[stage] if contexts is not None else self.context
            stage += 1
            step = self.size // (2 * half)
            if self.fused:
                # Stage-fused: every butterfly of the stage in one batched
                # pass — rows are twiddle offsets, columns are the groups
                # sharing that twiddle, and the twiddle column broadcasts as
                # a coefficient bank over the whole (half, groups) block.
                offsets = np.arange(half, dtype=np.int64)
                starts = np.arange(0, self.size, 2 * half, dtype=np.int64)
                tops = offsets[:, None] + starts[None, :]
                bottoms = tops + half
                k = offsets * step
                w_re = tw_re[k][:, None]
                w_im = tw_im[k][:, None]

                # Pre-scale both branches to keep the butterfly in range.
                a_re, a_im = self._halve(x_re[tops]), self._halve(x_im[tops])
                b_re, b_im = self._halve(x_re[bottoms]), self._halve(x_im[bottoms])

                # Complex twiddle multiplication (4 real mult, 2 real add).
                prod_re = ctx.sub(self._mul(ctx, b_re, w_re, bank=True),
                                  self._mul(ctx, b_im, w_im, bank=True))
                prod_im = ctx.add(self._mul(ctx, b_re, w_im, bank=True),
                                  self._mul(ctx, b_im, w_re, bank=True))

                # Butterfly combine (4 real additions).
                x_re[tops] = ctx.add(a_re, prod_re)
                x_im[tops] = ctx.add(a_im, prod_im)
                x_re[bottoms] = ctx.sub(a_re, prod_re)
                x_im[bottoms] = ctx.sub(a_im, prod_im)
                half *= 2
                continue
            for offset in range(half):
                # Seed-style: all butterflies sharing this twiddle, across
                # every group, in one vectorised call into the context.
                tops = np.arange(offset, self.size, 2 * half, dtype=np.int64)
                bottoms = tops + half
                k = offset * step
                w_re = int(tw_re[k])
                w_im = int(tw_im[k])

                # Pre-scale both branches to keep the butterfly in range.
                a_re, a_im = self._halve(x_re[tops]), self._halve(x_im[tops])
                b_re, b_im = self._halve(x_re[bottoms]), self._halve(x_im[bottoms])

                # Complex twiddle multiplication (4 real mult, 2 real add).
                prod_re = ctx.sub(self._mul(ctx, b_re, w_re),
                                  self._mul(ctx, b_im, w_im))
                prod_im = ctx.add(self._mul(ctx, b_re, w_im),
                                  self._mul(ctx, b_im, w_re))

                # Butterfly combine (4 real additions).
                x_re[tops] = ctx.add(a_re, prod_re)
                x_im[tops] = ctx.add(a_im, prod_im)
                x_re[bottoms] = ctx.sub(a_re, prod_re)
                x_im[bottoms] = ctx.sub(a_im, prod_im)
            half *= 2

        total = OperationCounts()
        for stage_ctx, start in starting:
            total = total + stage_ctx.counts_since(start)
        return FftResult(real=x_re, imag=x_im, counts=total)

    # ------------------------------------------------------------------ #
    # References
    # ------------------------------------------------------------------ #
    def reference_spectrum(self, real: np.ndarray,
                           imag: Optional[np.ndarray] = None) -> np.ndarray:
        """Double-precision FFT with the same 1/N scaling as the datapath."""
        scale = 2.0 ** (-self.frac_bits)
        x = np.asarray(real, dtype=np.float64) * scale
        if imag is not None:
            x = x + 1j * np.asarray(imag, dtype=np.float64) * scale
        return np.fft.fft(x) / self.size

    def operation_counts(self) -> OperationCounts:
        """Operation inventory of one transform (independent of the data)."""
        stages = int(math.log2(self.size))
        butterflies = stages * self.size // 2
        return OperationCounts(additions=6 * butterflies,
                               multiplications=4 * butterflies)

    def stage_operation_counts(self) -> List[OperationCounts]:
        """Per-stage operation inventory of one transform.

        Every radix-2 stage executes ``size / 2`` butterflies (6 additions
        and 4 twiddle multiplications each), so the stages split the total
        of :meth:`operation_counts` evenly — the accounting a heterogeneous
        per-stage datapath charges stage by stage.
        """
        stages = int(math.log2(self.size))
        butterflies = self.size // 2
        return [OperationCounts(additions=6 * butterflies,
                                multiplications=4 * butterflies)
                for _ in range(stages)]


def random_q15_signal(size: int, amplitude: float = 0.5,
                      seed: int = 7, frac_bits: int = 15) -> np.ndarray:
    """Uniform random test signal as Q1.(frac_bits) integer codes."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-amplitude, amplitude, size=size)
    return np.round(values * (1 << frac_bits)).astype(np.int64)
