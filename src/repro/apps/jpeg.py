"""Minimal JPEG encoder / decoder model built on the instrumented DCT.

The pipeline follows the baseline JPEG luminance path: 8x8 block split, level
shift, 2-D DCT, quantisation with the standard luminance table scaled by the
quality factor, zig-zag scan and run-length coding (for the size estimate),
then the decoder mirror (dequantisation, inverse DCT, level shift).  Only the
*forward DCT* uses the approximate / data-sized operators — exactly the
experiment of Figure 6 — so the quality difference between two runs isolates
the arithmetic approximation.

The encoder consumes one :class:`~repro.core.context.ApproxContext`; the
coded-size estimate is evaluated for the whole image in one vectorised pass
(:func:`estimate_coded_bits_blocks`), bit-identical to the per-block
run-length reference kept for unit tests.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts
from ..metrics.image import mssim
from .dct import BLOCK_SIZE, FixedPointDCT
from .images import pad_to_multiple

#: Standard JPEG luminance quantisation table (Annex K of the specification).
LUMINANCE_QUANTIZATION_TABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


def quality_scaled_table(quality: int) -> np.ndarray:
    """Luminance table scaled for an IJG-style quality factor in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must lie in [1, 100]")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((LUMINANCE_QUANTIZATION_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def zigzag_order(block_size: int = BLOCK_SIZE) -> np.ndarray:
    """Zig-zag scan indices for a ``block_size`` x ``block_size`` block."""
    indices = []
    for s in range(2 * block_size - 1):
        diagonal = [(i, s - i) for i in range(block_size)
                    if 0 <= s - i < block_size]
        if s % 2 == 0:
            diagonal.reverse()
        indices.extend(diagonal)
    flat = [i * block_size + j for i, j in indices]
    return np.asarray(flat, dtype=np.int64)


def run_length_encode(values: np.ndarray) -> List[Tuple[int, int]]:
    """(zero-run, value) pairs of a zig-zagged coefficient block."""
    pairs: List[Tuple[int, int]] = []
    run = 0
    for value in np.asarray(values, dtype=np.int64):
        if value == 0:
            run += 1
            continue
        pairs.append((run, int(value)))
        run = 0
    pairs.append((0, 0))  # end-of-block marker
    return pairs


def estimate_coded_bits(pairs: List[Tuple[int, int]]) -> int:
    """Rough size estimate of a run-length coded block (category coding)."""
    bits = 0
    for run, value in pairs:
        magnitude_bits = int(abs(value)).bit_length()
        bits += 4 + 4 + magnitude_bits  # run nibble + size nibble + amplitude
    return bits


def estimate_coded_bits_blocks(blocks: np.ndarray) -> np.ndarray:
    """Per-block coded-size estimates for a batch, in one vectorised pass.

    Bit-identical to chaining :func:`run_length_encode` and
    :func:`estimate_coded_bits` on each zig-zagged block: every nonzero
    coefficient costs its run/size nibbles plus its magnitude bits, the
    end-of-block marker costs one empty pair, and the scan order does not
    change the total.
    """
    values = np.asarray(blocks, dtype=np.int64).reshape(len(blocks), -1)
    magnitude = np.abs(values)
    # bit_length via the base-2 exponent: |v| = m * 2**e with 0.5 <= m < 1,
    # so e is exactly bit_length(|v|) for positive |v| (and 0 for zero).
    bit_lengths = np.frexp(magnitude.astype(np.float64))[1]
    nonzero = np.count_nonzero(magnitude, axis=1)
    return 8 * (nonzero + 1) + bit_lengths.sum(axis=1)


@dataclass(frozen=True)
class JpegResult:
    """Outcome of one encode/decode round trip."""

    reconstructed: np.ndarray
    counts: OperationCounts
    estimated_bits: int

    @property
    def estimated_bytes(self) -> int:
        return (self.estimated_bits + 7) // 8


class JpegEncoder:
    """Baseline JPEG model whose forward DCT runs through an ApproxContext."""

    def __init__(self, quality: int = 90,
                 context: Optional[ApproxContext] = None,
                 data_width: int = 16, fused: bool = True,
                 pass_contexts: Optional[Sequence[ApproxContext]] = None
                 ) -> None:
        self.quality = quality
        self.table = quality_scaled_table(quality)
        self.dct = FixedPointDCT(data_width=data_width, context=context,
                                 fused=fused, pass_contexts=pass_contexts)
        self.context = self.dct.context

    def _counting_contexts(self) -> List[ApproxContext]:
        """Distinct contexts whose counters this encoder charges."""
        if self.dct.pass_contexts is None:
            return [self.context]
        contexts: List[ApproxContext] = []
        for ctx in self.dct.pass_contexts:
            if all(ctx is not seen for seen in contexts):
                contexts.append(ctx)
        return contexts

    def encode_decode(self, image: np.ndarray) -> JpegResult:
        """Encode then decode an 8-bit grayscale image."""
        contexts = self._counting_contexts()
        starting = [(ctx, ctx.counts) for ctx in contexts]
        padded = pad_to_multiple(np.asarray(image, dtype=np.float64), BLOCK_SIZE)
        rows, cols = padded.shape
        block_rows = rows // BLOCK_SIZE
        block_cols = cols // BLOCK_SIZE

        # Gather every 8x8 block into one batch so the instrumented DCT runs
        # a single vectorised pass over the whole image.
        blocks = (padded.reshape(block_rows, BLOCK_SIZE, block_cols, BLOCK_SIZE)
                  .transpose(0, 2, 1, 3)
                  .reshape(-1, BLOCK_SIZE, BLOCK_SIZE)) - 128.0
        codes = self.dct.forward(blocks.astype(np.int64))
        coefficients = self.dct.to_float(codes)
        quantized = np.round(coefficients / self.table)

        total_bits = int(estimate_coded_bits_blocks(quantized).sum())

        dequantized = quantized * self.table
        restored = self.dct.inverse_float(dequantized) + 128.0
        reconstructed = (restored.reshape(block_rows, block_cols, BLOCK_SIZE, BLOCK_SIZE)
                         .transpose(0, 2, 1, 3)
                         .reshape(rows, cols))

        cropped = np.clip(reconstructed[: image.shape[0], : image.shape[1]], 0, 255)
        counts = OperationCounts()
        for ctx, start in starting:
            counts = counts + ctx.counts_since(start)
        return JpegResult(reconstructed=cropped,
                          counts=counts,
                          estimated_bits=total_bits)


def jpeg_quality_score(image: np.ndarray, quality: int = 90,
                       context: Optional[ApproxContext] = None
                       ) -> Tuple[float, OperationCounts]:
    """MSSIM between the exact-DCT and approximate-DCT encoded images.

    This is exactly the quality axis of Figure 6: the exact fixed-point
    encoder is the reference, the context under test produces the distorted
    version, and MSSIM measures how much of the structure survives.
    """
    candidate_context = context if context is not None else ApproxContext()
    reference = JpegEncoder(
        quality=quality,
        context=candidate_context.exact_reference()).encode_decode(image)
    candidate = JpegEncoder(quality=quality,
                            context=candidate_context).encode_decode(image)
    score = mssim(reference.reconstructed, candidate.reconstructed)
    return score, candidate.counts
