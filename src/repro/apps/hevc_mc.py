"""HEVC motion-compensation (fractional interpolation) filter, instrumented.

HEVC predicts a block from a reference picture at fractional-pixel motion
vectors; the fractional positions are produced by separable interpolation
filters — the 8-tap luma filters standardised in HEVC (quarter-, half- and
three-quarter-pel) and 4-tap chroma filters.  The paper swaps the additions
and multiplications of this kernel for approximate or data-sized operators
and measures the MSSIM of the interpolated image against the exact filter
output (Tables III and IV).

The multiplications are by small constant coefficients, which is why the
datapath model charges them as constant-coefficient multiplications.  By
default every non-zero tap of a phase is evaluated in one *stage-fused*
context call with the taps as a coefficient bank (``bank=True``), so LUT
backends serve the whole phase from cached per-tap tables; ``fused=False``
replays the seed-style per-tap loop, bit-identical and with the same
operation counts.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts
from ..metrics.image import mssim

#: HEVC luma interpolation filter coefficients (8 taps) per fractional phase.
LUMA_FILTERS: Dict[int, Tuple[int, ...]] = {
    0: (0, 0, 0, 64, 0, 0, 0, 0),
    1: (-1, 4, -10, 58, 17, -5, 1, 0),
    2: (-1, 4, -11, 40, 40, -11, 4, -1),
    3: (0, 1, -5, 17, 58, -10, 4, -1),
}

#: HEVC chroma interpolation filter coefficients (4 taps) for phase 1/8..4/8.
CHROMA_FILTERS: Dict[int, Tuple[int, ...]] = {
    0: (0, 64, 0, 0),
    1: (-2, 58, 10, -2),
    2: (-4, 54, 16, -2),
    3: (-6, 46, 28, -4),
    4: (-4, 36, 36, -4),
}

#: Normalisation shift of the HEVC interpolation filters (coefficients sum to 64).
FILTER_SHIFT = 6


@dataclass(frozen=True)
class McFilterResult:
    """Interpolated image plus the operation inventory of the run."""

    interpolated: np.ndarray
    counts: OperationCounts


class MotionCompensationFilter:
    """Separable HEVC fractional interpolation through an ApproxContext."""

    def __init__(self, data_width: int = 16,
                 context: Optional[ApproxContext] = None,
                 fused: bool = True) -> None:
        if context is None:
            context = ApproxContext(data_width=data_width)
        elif context.data_width != data_width:
            raise ValueError(
                f"context word length ({context.data_width} bits) does not "
                f"match the requested datapath ({data_width} bits)")
        self.context = context
        self.data_width = context.data_width
        self.fused = bool(fused)

    @property
    def adder(self):
        """Adder model executing the tap accumulations."""
        return self.context.adder

    @property
    def multiplier(self):
        """Multiplier model executing the coefficient multiplications."""
        return self.context.multiplier

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    #: Left-alignment applied to pixels (8-bit) and coefficients (signed 8-bit)
    #: so the 16x16 multiplier operands use the full datapath range, as a
    #: sized fixed-point implementation would.
    _PIXEL_SHIFT = 7
    _COEFF_SHIFT = 8

    def _mac(self, accumulator: np.ndarray, samples: np.ndarray,
             coefficient: int) -> np.ndarray:
        if coefficient == 0:
            return accumulator
        ctx = self.context
        scaled_samples = np.asarray(samples, dtype=np.int64) << self._PIXEL_SHIFT
        # in_range=False: second-pass samples are first-pass intermediates,
        # which may overshoot the pixel range (and thus the datapath grid).
        product = ctx.mul(scaled_samples, int(coefficient) << self._COEFF_SHIFT,
                          in_range=False)
        # Re-align the product to plain pixel*coefficient units; the HEVC
        # intermediate values then fit the 16-bit accumulation by design.
        term = ctx.wrap(product >> (self._PIXEL_SHIFT + self._COEFF_SHIFT))
        return ctx.add(accumulator, term)

    def _filter_axis(self, image: np.ndarray, taps: Tuple[int, ...],
                     axis: int) -> np.ndarray:
        """Apply one 1-D filter along ``axis`` with edge padding."""
        radius_before = len(taps) // 2 - 1
        radius_after = len(taps) - 1 - radius_before
        pad = [(0, 0), (0, 0)]
        pad[axis] = (radius_before, radius_after)
        padded = np.pad(image, pad, mode="edge").astype(np.int64)

        def window(index: int) -> np.ndarray:
            if axis == 0:
                return padded[index:index + image.shape[0], :]
            return padded[:, index:index + image.shape[1]]

        accumulator = np.zeros(image.shape, dtype=np.int64)
        if self.fused:
            # Stage-fused: every non-zero tap's product in one banked call
            # (zero taps are skipped exactly as the seed-style loop skips
            # them, so operation counts match), then one accumulation per
            # tap in the same order.
            active = [(index, coefficient) for index, coefficient
                      in enumerate(taps) if coefficient != 0]
            if not active:
                return accumulator >> FILTER_SHIFT
            ctx = self.context
            stacked = np.stack([window(index) for index, _ in active])
            bank = np.asarray([coefficient << self._COEFF_SHIFT
                               for _, coefficient in active],
                              dtype=np.int64).reshape(-1, 1, 1)
            # in_range=False: second-pass samples are first-pass
            # intermediates, which may overshoot the pixel range (and thus
            # the datapath grid).
            products = ctx.mul(stacked << self._PIXEL_SHIFT, bank, bank=True,
                               in_range=False)
            terms = ctx.wrap(products >> (self._PIXEL_SHIFT + self._COEFF_SHIFT))
            for tap in range(len(active)):
                accumulator = ctx.add(accumulator, terms[tap])
            return accumulator >> FILTER_SHIFT
        for index, coefficient in enumerate(taps):
            accumulator = self._mac(accumulator, window(index), coefficient)
        return accumulator >> FILTER_SHIFT

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def interpolate(self, image: np.ndarray, horizontal_phase: int = 2,
                    vertical_phase: int = 2) -> McFilterResult:
        """Interpolate an 8-bit image at the requested fractional phases."""
        if horizontal_phase not in LUMA_FILTERS or vertical_phase not in LUMA_FILTERS:
            raise ValueError("phases must be one of the quarter-pel positions 0..3")
        start = self.context.counts
        samples = np.asarray(image, dtype=np.int64)

        result = samples
        if horizontal_phase != 0:
            result = self._filter_axis(result, LUMA_FILTERS[horizontal_phase],
                                       axis=1)
        if vertical_phase != 0:
            result = self._filter_axis(result, LUMA_FILTERS[vertical_phase],
                                       axis=0)
        clipped = np.clip(result, 0, 255)
        return McFilterResult(interpolated=clipped,
                              counts=self.context.counts_since(start))

    def reference_interpolate(self, image: np.ndarray, horizontal_phase: int = 2,
                              vertical_phase: int = 2) -> np.ndarray:
        """Exact integer reference of the same interpolation."""
        exact = MotionCompensationFilter(
            self.data_width, context=self.context.exact_reference(),
            fused=self.fused)
        return exact.interpolate(image, horizontal_phase, vertical_phase).interpolated


def mc_quality_score(image: np.ndarray,
                     context: Optional[ApproxContext] = None,
                     horizontal_phase: int = 2, vertical_phase: int = 2,
                     fused: bool = True) -> Tuple[float, OperationCounts]:
    """MSSIM of the approximate MC filter output against the exact one."""
    mc = MotionCompensationFilter(
        context=context if context is not None else ApproxContext(),
        fused=fused)
    approx = mc.interpolate(image, horizontal_phase, vertical_phase)
    reference = mc.reference_interpolate(image, horizontal_phase, vertical_phase)
    score = mssim(reference.astype(np.float64),
                  approx.interpolated.astype(np.float64))
    return score, approx.counts
