"""HEVC motion-compensation (fractional interpolation) filter, instrumented.

HEVC predicts a block from a reference picture at fractional-pixel motion
vectors; the fractional positions are produced by separable interpolation
filters — the 8-tap luma filters standardised in HEVC (quarter-, half- and
three-quarter-pel) and 4-tap chroma filters.  The paper swaps the additions
and multiplications of this kernel for approximate or data-sized operators
and measures the MSSIM of the interpolated image against the exact filter
output (Tables III and IV).

The multiplications are by small constant coefficients, which is why the
datapath model charges them as constant-coefficient multiplications.  By
default every non-zero tap of a phase is evaluated in one *stage-fused*
context call with the taps as a coefficient bank (``bank=True``), so LUT
backends serve the whole phase from cached per-tap tables; ``fused=False``
replays the seed-style per-tap loop, bit-identical and with the same
operation counts.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts
from ..metrics.image import mssim

#: HEVC luma interpolation filter coefficients (8 taps) per fractional phase.
LUMA_FILTERS: Dict[int, Tuple[int, ...]] = {
    0: (0, 0, 0, 64, 0, 0, 0, 0),
    1: (-1, 4, -10, 58, 17, -5, 1, 0),
    2: (-1, 4, -11, 40, 40, -11, 4, -1),
    3: (0, 1, -5, 17, 58, -10, 4, -1),
}

#: HEVC chroma interpolation filter coefficients (4 taps) for phase 1/8..4/8.
CHROMA_FILTERS: Dict[int, Tuple[int, ...]] = {
    0: (0, 64, 0, 0),
    1: (-2, 58, 10, -2),
    2: (-4, 54, 16, -2),
    3: (-6, 46, 28, -4),
    4: (-4, 36, 36, -4),
}

#: Normalisation shift of the HEVC interpolation filters (coefficients sum to 64).
FILTER_SHIFT = 6


@dataclass(frozen=True)
class McFilterResult:
    """Interpolated image plus the operation inventory of the run."""

    interpolated: np.ndarray
    counts: OperationCounts


class MotionCompensationFilter:
    """Separable HEVC fractional interpolation through an ApproxContext."""

    def __init__(self, data_width: int = 16,
                 context: Optional[ApproxContext] = None,
                 fused: bool = True) -> None:
        if context is None:
            context = ApproxContext(data_width=data_width)
        elif context.data_width != data_width:
            raise ValueError(
                f"context word length ({context.data_width} bits) does not "
                f"match the requested datapath ({data_width} bits)")
        self.context = context
        self.data_width = context.data_width
        self.fused = bool(fused)

    @property
    def adder(self):
        """Adder model executing the tap accumulations."""
        return self.context.adder

    @property
    def multiplier(self):
        """Multiplier model executing the coefficient multiplications."""
        return self.context.multiplier

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    @property
    def _input_shift(self) -> int:
        """LSBs dropped from the 8-bit pixels on a narrow datapath.

        The per-tap terms ``pixel * coefficient`` span ~15 bits, so a
        datapath narrower than 16 bits cannot carry full-precision pixels
        without wrapping; a sized implementation quantises the input
        instead.  Zero on the default 16-bit datapath.
        """
        return max(0, 16 - self.data_width)

    @property
    def _pixel_shift(self) -> int:
        """Left-alignment of the (quantised) pixels onto the datapath grid.

        Seven bits on the default 16-bit datapath; narrower word lengths
        (the design-space word-length axis) shrink the alignment — and with
        it the precision headroom — exactly as a sized implementation
        would.
        """
        return max(0, self.data_width - 9)

    @property
    def _coeff_shift(self) -> int:
        """Left-alignment of the signed 8-bit filter coefficients."""
        return max(0, self.data_width - 8)

    def _mac(self, accumulator: np.ndarray, samples: np.ndarray,
             coefficient: int) -> np.ndarray:
        if coefficient == 0:
            return accumulator
        ctx = self.context
        scaled_samples = np.asarray(samples, dtype=np.int64) << self._pixel_shift
        # in_range=False: second-pass samples are first-pass intermediates,
        # which may overshoot the pixel range (and thus the datapath grid).
        product = ctx.mul(scaled_samples, int(coefficient) << self._coeff_shift,
                          in_range=False)
        # Re-align the product to plain pixel*coefficient units; the HEVC
        # intermediate values then fit the 16-bit accumulation by design.
        term = ctx.wrap(product >> (self._pixel_shift + self._coeff_shift))
        return ctx.add(accumulator, term)

    def _filter_axis(self, image: np.ndarray, taps: Tuple[int, ...],
                     axis: int) -> np.ndarray:
        """Apply one 1-D filter along ``axis`` with edge padding."""
        radius_before = len(taps) // 2 - 1
        radius_after = len(taps) - 1 - radius_before
        pad = [(0, 0), (0, 0)]
        pad[axis] = (radius_before, radius_after)
        padded = np.pad(image, pad, mode="edge").astype(np.int64)

        def window(index: int) -> np.ndarray:
            if axis == 0:
                return padded[index:index + image.shape[0], :]
            return padded[:, index:index + image.shape[1]]

        accumulator = np.zeros(image.shape, dtype=np.int64)
        if self.fused:
            # Stage-fused: every non-zero tap's product in one banked call
            # (zero taps are skipped exactly as the seed-style loop skips
            # them, so operation counts match), then one accumulation per
            # tap in the same order.
            active = [(index, coefficient) for index, coefficient
                      in enumerate(taps) if coefficient != 0]
            if not active:
                return accumulator >> FILTER_SHIFT
            ctx = self.context
            stacked = np.stack([window(index) for index, _ in active])
            bank = np.asarray([coefficient << self._coeff_shift
                               for _, coefficient in active],
                              dtype=np.int64).reshape(-1, 1, 1)
            # in_range=False: second-pass samples are first-pass
            # intermediates, which may overshoot the pixel range (and thus
            # the datapath grid).
            products = ctx.mul(stacked << self._pixel_shift, bank, bank=True,
                               in_range=False)
            terms = ctx.wrap(products >> (self._pixel_shift + self._coeff_shift))
            for tap in range(len(active)):
                accumulator = ctx.add(accumulator, terms[tap])
            return accumulator >> FILTER_SHIFT
        for index, coefficient in enumerate(taps):
            accumulator = self._mac(accumulator, window(index), coefficient)
        return accumulator >> FILTER_SHIFT

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def interpolate(self, image: np.ndarray, horizontal_phase: int = 2,
                    vertical_phase: int = 2) -> McFilterResult:
        """Interpolate an 8-bit image at the requested fractional phases."""
        if horizontal_phase not in LUMA_FILTERS or vertical_phase not in LUMA_FILTERS:
            raise ValueError("phases must be one of the quarter-pel positions 0..3")
        start = self.context.counts
        # A narrow datapath quantises the input pixels onto its grid (the
        # word-length axis quality cost); the default 16-bit width keeps
        # them untouched.
        samples = np.asarray(image, dtype=np.int64) >> self._input_shift

        result = samples
        if horizontal_phase != 0:
            result = self._filter_axis(result, LUMA_FILTERS[horizontal_phase],
                                       axis=1)
        if vertical_phase != 0:
            result = self._filter_axis(result, LUMA_FILTERS[vertical_phase],
                                       axis=0)
        clipped = np.clip(result << self._input_shift, 0, 255)
        return McFilterResult(interpolated=clipped,
                              counts=self.context.counts_since(start))

    def reference_interpolate(self, image: np.ndarray, horizontal_phase: int = 2,
                              vertical_phase: int = 2,
                              reference_width: Optional[int] = None
                              ) -> np.ndarray:
        """Exact integer reference of the same interpolation.

        ``reference_width`` selects the word length of the reference
        datapath; it defaults to this filter's own width (the paper's
        iso-width comparison).  Word-length studies pass the full 16-bit
        width so an undersized exact datapath shows its own quality cost.
        """
        width = self.data_width if reference_width is None \
            else int(reference_width)
        exact = MotionCompensationFilter(
            width,
            context=ApproxContext(data_width=width,
                                  backend=self.context.backend),
            fused=self.fused)
        return exact.interpolate(image, horizontal_phase, vertical_phase).interpolated


def mc_quality_score(image: np.ndarray,
                     context: Optional[ApproxContext] = None,
                     horizontal_phase: int = 2, vertical_phase: int = 2,
                     fused: bool = True,
                     reference_width: Optional[int] = None
                     ) -> Tuple[float, OperationCounts]:
    """MSSIM of the approximate MC filter output against the exact one.

    ``reference_width`` (default: the context's own word length) sets the
    datapath width of the exact reference — see
    :meth:`MotionCompensationFilter.reference_interpolate`.
    """
    ctx = context if context is not None else ApproxContext()
    mc = MotionCompensationFilter(data_width=ctx.data_width, context=ctx,
                                  fused=fused)
    approx = mc.interpolate(image, horizontal_phase, vertical_phase)
    reference = mc.reference_interpolate(image, horizontal_phase,
                                         vertical_phase,
                                         reference_width=reference_width)
    score = mssim(reference.astype(np.float64),
                  approx.interpolated.astype(np.float64))
    return score, approx.counts
