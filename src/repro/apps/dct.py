"""Instrumented 8x8 fixed-point DCT (the JPEG encoder's main kernel).

The two-dimensional DCT-II is computed as ``C · X · C^T`` with the cosine
matrix quantised to the datapath word length and every multiply-accumulate
routed through the supplied operator models.  This is the kernel whose
operators the paper swaps in the JPEG experiment (Figure 6).

Blocks are processed in batches: the transform accepts a ``(blocks, 8, 8)``
array and evaluates each multiply-accumulate step across every block in one
vectorised operator call, which keeps the full-image experiments fast without
changing the bit-accurate arithmetic.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.datapath import OperationCounter, OperationCounts
from ..fxp.quantize import wrap_to_width
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import TruncatedMultiplier

BLOCK_SIZE = 8


def dct_matrix(block_size: int = BLOCK_SIZE) -> np.ndarray:
    """Orthonormal DCT-II basis matrix (floating point)."""
    n = block_size
    matrix = np.zeros((n, n), dtype=np.float64)
    for k in range(n):
        scale = np.sqrt(1.0 / n) if k == 0 else np.sqrt(2.0 / n)
        matrix[k, :] = scale * np.cos((2 * np.arange(n) + 1) * k * np.pi / (2 * n))
    return matrix


class FixedPointDCT:
    """8x8 DCT / inverse DCT on 16-bit fixed-point data with swappable operators.

    Level-shifted pixels are represented as Q10.5 codes (five fractional
    bits): the 2-D DCT of an 8x8 block of values in ``[-128, 127]`` stays
    within ``[-1024, 1016]``, so the representation uses the full 16-bit
    datapath without overflowing while keeping sub-pixel resolution.  The
    cosine coefficients are Q1.14; products are re-aligned to the data grid
    after each multiplication and accumulations run through the adder model.
    """

    def __init__(self, data_width: int = 16,
                 adder: Optional[AdderOperator] = None,
                 multiplier: Optional[MultiplierOperator] = None,
                 block_size: int = BLOCK_SIZE) -> None:
        self.block_size = block_size
        self.data_width = data_width
        self.pixel_frac_bits = 5
        self.coeff_frac_bits = 14
        self.adder = adder if adder is not None else ExactAdder(data_width)
        self.multiplier = multiplier if multiplier is not None \
            else TruncatedMultiplier(data_width, data_width)
        basis = dct_matrix(block_size)
        self._coeffs = np.round(basis * (1 << self.coeff_frac_bits)).astype(np.int64)
        self._basis_float = basis

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    def _matmul(self, coeffs: np.ndarray, data: np.ndarray,
                counter: OperationCounter) -> np.ndarray:
        """``coeffs @ data`` per block, through the operator models.

        ``data`` has shape ``(blocks, n, columns)``; the result has shape
        ``(blocks, n, columns)`` where row ``r`` is the instrumented dot
        product of coefficient row ``r`` with the data rows.
        """
        blocks, n, columns = data.shape
        result = np.zeros_like(data)
        for r in range(n):
            accumulator = np.zeros((blocks, columns), dtype=np.int64)
            for k in range(n):
                coefficient = np.full((blocks, columns), coeffs[r, k], dtype=np.int64)
                counter.count_multiplications(blocks * columns)
                product = np.asarray(
                    self.multiplier.aligned(data[:, k, :], coefficient),
                    dtype=np.int64)
                term = product >> self.coeff_frac_bits
                term = np.asarray(wrap_to_width(term, self.data_width), dtype=np.int64)
                counter.count_additions(blocks * columns)
                accumulator = np.asarray(self.adder.aligned(accumulator, term),
                                         dtype=np.int64)
            result[:, r, :] = accumulator
        return result

    # ------------------------------------------------------------------ #
    # Transforms
    # ------------------------------------------------------------------ #
    def forward(self, blocks: np.ndarray,
                counter: Optional[OperationCounter] = None) -> np.ndarray:
        """2-D DCT of level-shifted pixel blocks; returns Q10.5 codes.

        ``blocks`` is either one ``(8, 8)`` block or a ``(count, 8, 8)``
        batch; the output has the same shape.
        """
        counter = counter if counter is not None else OperationCounter()
        data = np.asarray(blocks, dtype=np.int64)
        single = data.ndim == 2
        if single:
            data = data[np.newaxis, :, :]
        codes = data << self.pixel_frac_bits
        temp = self._matmul(self._coeffs, codes, counter)
        transposed = np.transpose(temp, (0, 2, 1))
        result = np.transpose(self._matmul(self._coeffs, transposed, counter),
                              (0, 2, 1))
        return result[0] if single else result

    def forward_float(self, block: np.ndarray) -> np.ndarray:
        """Double-precision reference DCT of one block."""
        data = np.asarray(block, dtype=np.float64)
        return self._basis_float @ data @ self._basis_float.T

    def inverse_float(self, coefficients: np.ndarray) -> np.ndarray:
        """Double-precision inverse DCT (used by the JPEG decoder model)."""
        data = np.asarray(coefficients, dtype=np.float64)
        if data.ndim == 2:
            return self._basis_float.T @ data @ self._basis_float
        return np.einsum("ij,bjk,kl->bil", self._basis_float.T, data,
                         self._basis_float)

    def to_float(self, codes: np.ndarray) -> np.ndarray:
        """Convert Q10.5 DCT codes back to real coefficient values."""
        return np.asarray(codes, dtype=np.float64) / (1 << self.pixel_frac_bits)

    def operation_counts(self, blocks: int = 1) -> OperationCounts:
        """Operation inventory of transforming ``blocks`` 8x8 blocks."""
        n = self.block_size
        per_block = 2 * n * n * n
        return OperationCounts(additions=per_block * blocks,
                               multiplications=per_block * blocks)
