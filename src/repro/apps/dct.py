"""Instrumented 8x8 fixed-point DCT (the JPEG encoder's main kernel).

The two-dimensional DCT-II is computed as ``C · X · C^T`` with the cosine
matrix quantised to the datapath word length and every multiply-accumulate
routed through the :class:`~repro.core.context.ApproxContext` supplied by the
caller.  This is the kernel whose operators the paper swaps in the JPEG
experiment (Figure 6).

Blocks are processed in batches: the transform accepts a ``(blocks, 8, 8)``
array and — by default — executes each matrix pass *stage-fused*: every
coefficient multiplication of the pass runs in one batched context call with
the cosine matrix as a per-element coefficient bank (``bank=True``), and the
accumulations follow as one batched adder call per accumulation step.
``fused=False`` replays the seed-style loop (one scalar-coefficient call per
matrix entry); results and operation counts are bit-identical either way.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts

BLOCK_SIZE = 8


def dct_matrix(block_size: int = BLOCK_SIZE) -> np.ndarray:
    """Orthonormal DCT-II basis matrix (floating point)."""
    n = block_size
    matrix = np.zeros((n, n), dtype=np.float64)
    for k in range(n):
        scale = np.sqrt(1.0 / n) if k == 0 else np.sqrt(2.0 / n)
        matrix[k, :] = scale * np.cos((2 * np.arange(n) + 1) * k * np.pi / (2 * n))
    return matrix


class FixedPointDCT:
    """8x8 DCT / inverse DCT on fixed-point data with a swappable context.

    On the default 16-bit datapath, level-shifted pixels are represented as
    Q10.5 codes (five fractional bits): the 2-D DCT of an 8x8 block of
    values in ``[-128, 127]`` stays within ``[-1024, 1016]``, so the
    representation uses the full 16-bit datapath without overflowing while
    keeping sub-pixel resolution.  The cosine coefficients are Q1.14;
    products are re-aligned to the data grid after each multiplication and
    accumulations run through the adder model.

    Narrower word lengths (the design-space word-length axis) shrink both
    alignments with the datapath — pixels keep ``data_width - 11``
    fractional bits (the 11-bit DCT dynamic range is preserved down to
    11-bit words, below which the transform saturates its range and quality
    collapses, as a real undersized datapath would), and coefficients keep
    ``data_width - 2`` fractional bits.  At 16 bits both reduce to the
    paper's Q10.5 / Q1.14 exactly.
    """

    def __init__(self, data_width: int = 16,
                 context: Optional[ApproxContext] = None,
                 block_size: int = BLOCK_SIZE,
                 fused: bool = True,
                 pass_contexts: Optional[Sequence[ApproxContext]] = None
                 ) -> None:
        if context is None:
            context = ApproxContext(data_width=data_width)
        elif context.data_width != data_width:
            raise ValueError(
                f"context word length ({context.data_width} bits) does not "
                f"match the requested datapath ({data_width} bits)")
        self.block_size = block_size
        self.fused = bool(fused)
        self.context = context
        # Heterogeneous datapath: one context per matrix pass (rows, then
        # columns) of the 2-D transform, for per-pass operator assignment.
        self.pass_contexts: Optional[List[ApproxContext]] = None
        if pass_contexts is not None:
            contexts = list(pass_contexts)
            if len(contexts) != 2:
                raise ValueError(
                    f"expected 2 pass contexts (row pass, column pass), "
                    f"got {len(contexts)}")
            for index, pass_ctx in enumerate(contexts):
                if pass_ctx.data_width != data_width:
                    raise ValueError(
                        f"pass {index} context word length "
                        f"({pass_ctx.data_width} bits) does not match the "
                        f"datapath ({data_width} bits)")
            self.pass_contexts = contexts
        self.data_width = context.data_width
        self.pixel_frac_bits = max(0, self.data_width - 11)
        self.coeff_frac_bits = max(2, self.data_width - 2)
        basis = dct_matrix(block_size)
        self._coeffs = np.round(basis * (1 << self.coeff_frac_bits)).astype(np.int64)
        self._basis_float = basis

    @property
    def adder(self):
        """Adder model executing the accumulations."""
        return self.context.adder

    @property
    def multiplier(self):
        """Multiplier model executing the coefficient multiplications."""
        return self.context.multiplier

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    def _matmul(self, coeffs: np.ndarray, data: np.ndarray,
                ctx: Optional[ApproxContext] = None) -> np.ndarray:
        """``coeffs @ data`` per block, through the context's operators.

        ``data`` has shape ``(blocks, n, columns)``; the result has shape
        ``(blocks, n, columns)`` where row ``r`` is the instrumented dot
        product of coefficient row ``r`` with the data rows.
        """
        if ctx is None:
            ctx = self.context
        blocks, n, columns = data.shape
        if self.fused:
            # Stage-fused: one banked call per dot-product step — data row k
            # against coefficient column k (every output row at once) —
            # followed by one batched accumulation.  Each output row r
            # accumulates term k = 0..n-1 in the same order as the seed
            # loop, so results are bit-identical.  Working one step at a
            # time keeps the products / terms / accumulator working set
            # cache-resident; the earlier all-steps-in-one-call shape
            # materialised an n-times-larger products array whose wrap and
            # accumulation passes streamed from main memory.
            accumulator = np.zeros((blocks, n, columns), dtype=np.int64)
            for k in range(n):
                operands = data[:, np.newaxis, k, :]
                bank = coeffs[np.newaxis, :, k, np.newaxis]
                products = ctx.mul(operands, bank, bank=True)
                term = ctx.wrap(products >> self.coeff_frac_bits)
                accumulator = ctx.add(accumulator, term)
            return accumulator
        result = np.zeros_like(data)
        for r in range(n):
            accumulator = np.zeros((blocks, columns), dtype=np.int64)
            for k in range(n):
                product = ctx.mul(data[:, k, :], int(coeffs[r, k]))
                term = ctx.wrap(product >> self.coeff_frac_bits)
                accumulator = ctx.add(accumulator, term)
            result[:, r, :] = accumulator
        return result

    # ------------------------------------------------------------------ #
    # Transforms
    # ------------------------------------------------------------------ #
    def forward(self, blocks: np.ndarray) -> np.ndarray:
        """2-D DCT of level-shifted pixel blocks; returns Q10.5 codes.

        ``blocks`` is either one ``(8, 8)`` block or a ``(count, 8, 8)``
        batch; the output has the same shape.  Operation counts accumulate
        on the context's counter.
        """
        data = np.asarray(blocks, dtype=np.int64)
        single = data.ndim == 2
        if single:
            data = data[np.newaxis, :, :]
        codes = data << self.pixel_frac_bits
        row_ctx, col_ctx = self.pass_contexts \
            if self.pass_contexts is not None else (None, None)
        temp = self._matmul(self._coeffs, codes, ctx=row_ctx)
        transposed = np.transpose(temp, (0, 2, 1))
        result = np.transpose(
            self._matmul(self._coeffs, transposed, ctx=col_ctx), (0, 2, 1))
        return result[0] if single else result

    def forward_float(self, block: np.ndarray) -> np.ndarray:
        """Double-precision reference DCT of one block."""
        data = np.asarray(block, dtype=np.float64)
        return self._basis_float @ data @ self._basis_float.T

    def inverse_float(self, coefficients: np.ndarray) -> np.ndarray:
        """Double-precision inverse DCT (used by the JPEG decoder model)."""
        data = np.asarray(coefficients, dtype=np.float64)
        if data.ndim == 2:
            return self._basis_float.T @ data @ self._basis_float
        # Stacked dgemms are substantially faster than the equivalent einsum
        # for full-image batches.
        return np.matmul(np.matmul(self._basis_float.T, data),
                         self._basis_float)

    def to_float(self, codes: np.ndarray) -> np.ndarray:
        """Convert Q10.5 DCT codes back to real coefficient values."""
        return np.asarray(codes, dtype=np.float64) / (1 << self.pixel_frac_bits)

    def operation_counts(self, blocks: int = 1) -> OperationCounts:
        """Operation inventory of transforming ``blocks`` 8x8 blocks."""
        n = self.block_size
        per_block = 2 * n * n * n
        return OperationCounts(additions=per_block * blocks,
                               multiplications=per_block * blocks)

    def pass_operation_counts(self, blocks: int = 1) -> List[OperationCounts]:
        """Per-pass operation inventory: the two matrix passes split evenly."""
        n = self.block_size
        per_pass = n * n * n * blocks
        return [OperationCounts(additions=per_pass, multiplications=per_pass)
                for _ in range(2)]
