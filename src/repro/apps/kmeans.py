"""K-means clustering with instrumented fixed-point distance computation.

The paper's last experiment: bidimensional Gaussian point clouds are
clustered with Lloyd's algorithm, where the squared-Euclidean distance
computation — the arithmetic core of the algorithm — runs through the
data-sized or approximate operators of an
:class:`~repro.core.context.ApproxContext`.  The accuracy metric is the
success rate, the proportion of points assigned to the same cluster as the
exact fixed-point run (Tables V and VI).

Coordinates are represented as Q1.15 codes in ``[-1, 1)``; the squared
distances are accumulated on the 16-bit datapath after re-alignment, exactly
like the other kernels.  By default the distance computation is *stage-fused*:
every centroid is evaluated in one batched context call per dimension, with
the centroid coordinates as a coefficient bank (``bank=True``) and the
squaring passing the same array twice so LUT backends serve both from
one-dimensional tables.  ``fused=False`` replays the seed-style per-centroid
loop, bit-identical and with the same operation counts.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.context import ApproxContext
from ..core.datapath import OperationCounts
from ..metrics.clustering import success_rate


@dataclass(frozen=True)
class PointCloud:
    """A generated data set with its ground-truth cluster labels."""

    points: np.ndarray            # (count, 2) Q1.15 integer codes
    labels: np.ndarray            # (count,) generating cluster of each point
    centers: np.ndarray           # (clusters, 2) Q1.15 integer codes


def generate_point_cloud(points_per_run: int = 5000, clusters: int = 10,
                         spread: float = 0.045, seed: int = 0,
                         frac_bits: int = 15) -> PointCloud:
    """Gaussian blobs around random centres, as in the paper's setup.

    5 sets of 5000 points around 10 random centres are used by the paper; the
    experiment module draws five different seeds.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-0.75, 0.75, size=(clusters, 2))
    labels = rng.integers(0, clusters, size=points_per_run)
    coordinates = centers[labels] + rng.normal(0.0, spread, size=(points_per_run, 2))
    coordinates = np.clip(coordinates, -0.999, 0.999)
    scale = 1 << frac_bits
    return PointCloud(
        points=np.round(coordinates * scale).astype(np.int64),
        labels=labels.astype(np.int64),
        centers=np.round(centers * scale).astype(np.int64),
    )


class FixedPointKMeans:
    """Lloyd's K-means whose distance computation runs through an ApproxContext."""

    def __init__(self, clusters: int = 10, data_width: int = 16,
                 context: Optional[ApproxContext] = None,
                 iterations: int = 10, fused: bool = True) -> None:
        if context is None:
            context = ApproxContext(data_width=data_width)
        elif context.data_width != data_width:
            raise ValueError(
                f"context word length ({context.data_width} bits) does not "
                f"match the requested datapath ({data_width} bits)")
        self.clusters = clusters
        self.context = context
        self.data_width = context.data_width
        self.frac_bits = context.frac_bits
        self.iterations = iterations
        self.fused = bool(fused)

    @property
    def adder(self):
        """Adder model executing the distance accumulations."""
        return self.context.adder

    @property
    def multiplier(self):
        """Multiplier model executing the squarings."""
        return self.context.multiplier

    # ------------------------------------------------------------------ #
    # Instrumented distance computation
    # ------------------------------------------------------------------ #
    def _squared_distance(self, points: np.ndarray,
                          center: np.ndarray) -> np.ndarray:
        """Instrumented squared Euclidean distance to one centroid."""
        ctx = self.context
        count = points.shape[0]
        total = np.zeros(count, dtype=np.int64)
        for dim in range(points.shape[1]):
            delta = ctx.sub(points[:, dim], int(center[dim]))
            square = ctx.mul(delta, delta)
            # Re-align the Q2.30 square onto the Q1.15 data grid; squared
            # deltas are small, so the halved dynamic keeps them in range.
            term = ctx.wrap(square >> (self.frac_bits + 1))
            total = ctx.add(total, term)
        return total

    def _squared_distances(self, points: np.ndarray,
                           centers: np.ndarray) -> np.ndarray:
        """Stage-fused distances to *all* centroids: one call per dimension.

        The centroid coordinates broadcast over the points as a coefficient
        bank, so the whole ``(points, clusters)`` distance matrix costs six
        context calls instead of ``3 * clusters * dims`` — with per-element
        arithmetic, accumulation order and operation counts identical to the
        seed-style per-centroid loop.
        """
        ctx = self.context
        total = np.zeros((points.shape[0], centers.shape[0]), dtype=np.int64)
        for dim in range(points.shape[1]):
            delta = ctx.sub(points[:, dim][:, np.newaxis],
                            centers[np.newaxis, :, dim], bank=True)
            square = ctx.mul(delta, delta)
            # Re-align the Q2.30 square onto the Q1.15 data grid; squared
            # deltas are small, so the halved dynamic keeps them in range.
            term = ctx.wrap(square >> (self.frac_bits + 1))
            total = ctx.add(total, term)
        return total

    def assign(self, points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Assign every point to the centroid with the smallest distance."""
        if self.fused:
            distances = self._squared_distances(points, centers)
        else:
            distances = np.zeros((points.shape[0], centers.shape[0]),
                                 dtype=np.int64)
            for index in range(centers.shape[0]):
                distances[:, index] = self._squared_distance(points,
                                                             centers[index])
        return np.argmin(distances, axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Full clustering
    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray, initial_centers: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray, OperationCounts]:
        """Run Lloyd's iterations; returns (labels, centers, operation counts).

        Only the distance computation is instrumented — centroid updates are
        exact, as in the paper where the focus is the distance datapath.
        """
        start = self.context.counts
        centers = np.asarray(initial_centers, dtype=np.int64).copy()
        labels = np.zeros(points.shape[0], dtype=np.int64)
        for _ in range(self.iterations):
            labels = self.assign(points, centers)
            for index in range(self.clusters):
                members = points[labels == index]
                if members.shape[0] > 0:
                    centers[index] = np.round(members.mean(axis=0)).astype(np.int64)
        return labels, centers, self.context.counts_since(start)


def kmeans_success_rate(cloud: PointCloud,
                        context: Optional[ApproxContext] = None,
                        iterations: int = 10, fused: bool = True
                        ) -> Tuple[float, OperationCounts]:
    """Success rate of the approximate run against the exact fixed-point run.

    Both runs start from the same initial centroids (the generating centres
    are a natural common starting point), so the only difference is the
    arithmetic of the distance computation.
    """
    candidate_context = context if context is not None else ApproxContext()
    width = candidate_context.data_width
    clusters = cloud.centers.shape[0]
    exact = FixedPointKMeans(clusters=clusters, data_width=width,
                             iterations=iterations,
                             context=candidate_context.exact_reference(),
                             fused=fused)
    reference_labels, _, _ = exact.fit(cloud.points, cloud.centers)

    candidate = FixedPointKMeans(clusters=clusters, data_width=width,
                                 iterations=iterations,
                                 context=candidate_context, fused=fused)
    labels, _, counts = candidate.fit(cloud.points, cloud.centers)
    return success_rate(reference_labels, labels, clusters=clusters), counts
