"""Instrumented applications used for the application-level comparison."""
from .dct import BLOCK_SIZE, FixedPointDCT, dct_matrix
from .fft import FftResult, FixedPointFFT, random_q15_signal
from .hevc_mc import (
    CHROMA_FILTERS,
    FILTER_SHIFT,
    LUMA_FILTERS,
    McFilterResult,
    MotionCompensationFilter,
    mc_quality_score,
)
from .images import pad_to_multiple, synthetic_gradient, synthetic_image
from .jpeg import (
    JpegEncoder,
    JpegResult,
    LUMINANCE_QUANTIZATION_TABLE,
    estimate_coded_bits,
    estimate_coded_bits_blocks,
    jpeg_quality_score,
    quality_scaled_table,
    run_length_encode,
    zigzag_order,
)
from .kmeans import (
    FixedPointKMeans,
    PointCloud,
    generate_point_cloud,
    kmeans_success_rate,
)

__all__ = [
    "FixedPointFFT",
    "FftResult",
    "random_q15_signal",
    "FixedPointDCT",
    "dct_matrix",
    "BLOCK_SIZE",
    "JpegEncoder",
    "JpegResult",
    "jpeg_quality_score",
    "quality_scaled_table",
    "zigzag_order",
    "run_length_encode",
    "estimate_coded_bits",
    "estimate_coded_bits_blocks",
    "LUMINANCE_QUANTIZATION_TABLE",
    "MotionCompensationFilter",
    "McFilterResult",
    "mc_quality_score",
    "LUMA_FILTERS",
    "CHROMA_FILTERS",
    "FILTER_SHIFT",
    "FixedPointKMeans",
    "PointCloud",
    "generate_point_cloud",
    "kmeans_success_rate",
    "synthetic_image",
    "synthetic_gradient",
    "pad_to_multiple",
]
