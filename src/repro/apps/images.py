"""Deterministic synthetic test images.

The paper runs its JPEG and HEVC experiments on the Lena image, which cannot
be redistributed here.  The generator below produces a reproducible 8-bit
grayscale image with natural-image statistics — smooth illumination
gradients, a few rounded objects with soft shading, sharp edges and a
band-limited texture — which is all the MSSIM-based comparisons need: the
metric compares the exactly-processed and approximately-processed versions of
the *same* image, so the conclusions do not depend on the particular content.
"""
from __future__ import annotations

from functools import lru_cache

import numpy as np


def synthetic_image(size: int = 256, seed: int = 2017) -> np.ndarray:
    """Reproducible grayscale test image with natural-image statistics.

    Returns a ``(size, size)`` array of ``uint8`` values in ``[0, 255]``.
    The image is deterministic in ``(size, seed)``, so repeated requests
    (every sweep point of a study asks for the same stimulus) are served
    from a small cache; the returned array is marked read-only to keep the
    cache coherent.
    """
    return _synthetic_image_cached(int(size), int(seed))


@lru_cache(maxsize=8)
def _synthetic_image_cached(size: int, seed: int) -> np.ndarray:
    if size < 16:
        raise ValueError("image size must be at least 16 pixels")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size].astype(np.float64) / size

    # Smooth illumination gradient.
    image = 110.0 + 70.0 * x + 40.0 * (1.0 - y)

    # A few soft-shaded elliptical objects.
    for _ in range(6):
        cx, cy = rng.uniform(0.15, 0.85, size=2)
        rx, ry = rng.uniform(0.05, 0.22, size=2)
        amplitude = rng.uniform(-70.0, 70.0)
        distance = ((x - cx) / rx) ** 2 + ((y - cy) / ry) ** 2
        image += amplitude * np.exp(-distance)

    # Sharp rectangular edges (high-contrast structures).
    for _ in range(3):
        x0, y0 = rng.uniform(0.1, 0.6, size=2)
        w, h = rng.uniform(0.1, 0.3, size=2)
        amplitude = rng.uniform(-50.0, 50.0)
        mask = (x >= x0) & (x <= x0 + w) & (y >= y0) & (y <= y0 + h)
        image += amplitude * mask

    # Band-limited texture (sum of oriented sinusoids) plus mild sensor noise.
    for _ in range(4):
        fx, fy = rng.uniform(4.0, 24.0, size=2)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        image += rng.uniform(2.0, 7.0) * np.sin(2.0 * np.pi * (fx * x + fy * y) + phase)
    image += rng.normal(0.0, 1.5, size=image.shape)

    result = np.clip(image, 0.0, 255.0).astype(np.uint8)
    result.setflags(write=False)
    return result


def synthetic_gradient(size: int = 64) -> np.ndarray:
    """Simple diagonal gradient image (useful for quick unit tests)."""
    y, x = np.mgrid[0:size, 0:size].astype(np.float64)
    image = (x + y) / (2 * size - 2) * 255.0
    return image.astype(np.uint8)


def pad_to_multiple(image: np.ndarray, multiple: int) -> np.ndarray:
    """Edge-pad an image so both dimensions are multiples of ``multiple``."""
    if multiple < 1:
        raise ValueError("multiple must be positive")
    rows, cols = image.shape
    pad_rows = (-rows) % multiple
    pad_cols = (-cols) % multiple
    if pad_rows == 0 and pad_cols == 0:
        return image
    return np.pad(image, ((0, pad_rows), (0, pad_cols)), mode="edge")
