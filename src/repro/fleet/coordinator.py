"""The fleet coordinator: plan the queue, watch it, harvest the results.

Three verbs on top of :class:`~repro.fleet.queue.LeaseQueue`, one per CLI
subcommand:

* :func:`plan_queue` — carve the suite into ``n`` shard tasks (the same
  deterministic round-robin partition ``run --shard i/n`` uses) and lay
  the queue directory out;
* :func:`queue_status` — one observation pass: reclaim expired leases
  (bounded per task by ``max_attempts``, so a poison shard is tombstoned
  into ``failed/`` instead of looping forever) and report live counters;
* :func:`harvest` — once every task is terminal, fold the per-attempt
  artifact directories back through
  :meth:`ExperimentResult.merge_shards` / :func:`merge_run` and absorb
  every per-worker store — the merged rows, fronts and store are
  bit-identical to a single-process golden run of the same experiments.
"""
from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from ..core.store import ResultStore, StoreLike
from .queue import LeaseQueue


def plan_queue(directory: Union[str, Path],
               experiments: Optional[Sequence[str]] = None,
               shards: int = 4, reduced: bool = True,
               backend: str = "direct", ttl_s: float = 60.0,
               max_attempts: int = 3,
               include_ablations: bool = True) -> Dict[str, object]:
    """Plan a fleet queue; returns the ``fleet plan`` JSON document."""
    queue = LeaseQueue.plan(directory, experiments=experiments,
                            shards=shards, reduced=reduced, backend=backend,
                            ttl_s=ttl_s, max_attempts=max_attempts,
                            include_ablations=include_ablations)
    return {
        "queue": str(queue.directory),
        "tasks": queue.task_ids(),
        **{key: queue.config[key]
           for key in ("experiments", "shards", "reduced", "backend",
                       "ttl_s", "max_attempts")},
    }


def queue_status(directory: Union[str, Path],
                 reclaim: bool = True) -> Dict[str, object]:
    """Watch the queue: optionally sweep expired leases, then report.

    The reclaim sweep is what lets a coordinator (or any ``status``
    probe) recover tasks from workers that died without cleanup; claim
    paths do the same lazily, so the sweep is an accelerant, not a
    requirement.
    """
    queue = LeaseQueue(directory)
    reclaimed_now = queue.reclaim_expired() if reclaim else 0
    status = queue.status()
    status["reclaimed_now"] = reclaimed_now
    return status


def wait_until_finished(directory: Union[str, Path],
                        timeout_s: float = 600.0, poll_s: float = 0.5,
                        sleep: Callable[[float], None] = time.sleep
                        ) -> Dict[str, object]:
    """Block (reclaiming as it watches) until every task is terminal."""
    deadline = time.monotonic() + timeout_s
    while True:
        status = queue_status(directory, reclaim=True)
        if status["finished"]:
            return status
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"fleet queue {directory} still has "
                f"{status['pending'] + status['leased']} live task(s) "
                f"after {timeout_s}s")
        sleep(poll_s)


def harvest(directory: Union[str, Path],
            output_dir: Optional[Union[str, Path]] = None,
            store: StoreLike = None,
            golden: Optional[Union[str, Path]] = None
            ) -> Tuple[Dict[str, object], int]:
    """Fold a finished queue into one result; ``(document, exit_status)``.

    Refuses (status 1) while tasks are still outstanding, and reports the
    poison tombstones (status 1) when any task exhausted its retries —
    the failed-task report carries every attempt's reason so the poison
    shard is debuggable from the harvest output alone.  On success the
    shard artifact directories named by the ``done/`` tombstones are
    merged exactly like ``repro merge`` merges shard run directories, and
    every per-worker store is absorbed into ``store``; ``golden`` gates
    the merged rows and fronts against an unsharded run directory.
    """
    from ..experiments.runner import merge_run

    queue = LeaseQueue(directory)
    queue.config  # raise early on an unplanned directory
    document: Dict[str, object] = {"queue": str(queue.directory)}
    failures = queue.failure_reports()
    if failures:
        document["failed_tasks"] = failures
        document["error"] = (f"{len(failures)} task(s) exhausted their "
                             f"retries; nothing harvested")
        return document, 1
    outstanding = queue.outstanding()
    if outstanding:
        document["outstanding"] = outstanding
        document["error"] = (f"{len(outstanding)} task(s) still pending or "
                             f"leased; harvest after the fleet drains")
        return document, 1

    outputs = queue.completed_outputs()
    merged = merge_run([path for _, path in outputs],
                       output_dir=output_dir, store=store)
    document["tasks"] = [task_id for task_id, _ in outputs]
    document["out"] = str(output_dir) if output_dir is not None else None

    merged_store = ResultStore.of(store)
    if merged_store is not None:
        stores_base = queue.directory / "stores"
        absorbed = 0
        if stores_base.is_dir():
            for worker_store in sorted(p for p in stores_base.iterdir()
                                       if p.is_dir()):
                absorbed += merged_store.absorb(ResultStore(worker_store))
        stats = merged_store.stats()
        document["store"] = {
            "directory": str(merged_store.directory),
            "absorbed": stats["absorbed"],
            "conflicts": stats["conflicts"],
            "quarantined": stats["quarantined"],
            "records": stats["records"],
        }
    document.update(merged.manifest())

    # What the run survived: queue-level churn (reclaims of dead workers,
    # worker-reported errors) plus store-level self-defence (absorb
    # conflicts, quarantined corruption).  Written next to the merged
    # artifacts so the dashboard can surface it; ``ResultBundle.load_dir``
    # ignores it (no "experiment"/"columns" keys).
    queue_counters = queue.status()
    document["resilience"] = {
        "reclaims": queue_counters["reclaims"],
        "worker_errors": queue_counters["worker_errors"],
        "conflicts": (document.get("store") or {}).get("conflicts", 0),
        "quarantined": (document.get("store") or {}).get("quarantined", 0),
    }
    if output_dir is not None:
        resilience_path = Path(output_dir) / "resilience.json"
        try:
            resilience_path.write_text(
                json.dumps(document["resilience"], indent=2, sort_keys=True))
        except OSError:
            pass

    status = 0
    if golden is not None:
        from ..experiments.runner import compare_to_golden

        mismatches = compare_to_golden(merged, golden)
        document["golden"] = str(golden)
        document["identical_to_golden"] = not mismatches
        if mismatches:
            document["mismatches"] = mismatches
            status = 1
    return document, status
