"""The fleet worker: claim a shard lease, compute, heartbeat, commit.

A :class:`FleetWorker` is one process in the fleet.  Its loop is the
standard lease-queue worker shape:

1. **claim** a task (reclaiming expired leases on the way in);
2. start a **heartbeat thread** that refreshes the lease every quarter
   TTL while the shard computes — a worker that dies (even ``SIGKILL``,
   which runs no cleanup) simply stops heartbeating, its lease expires,
   and another worker reclaims the task;
3. run the shard through the *existing* pipeline —
   ``run_all(shard=(i, n))`` with a per-worker :class:`ResultStore`
   that stays warm across this worker's tasks — writing artifacts
   directly into the queue's per-attempt output area;
4. **complete**: exclusively tombstone the task (a lost completion race
   is counted, not fatal) — or, on an exception, file the failed attempt
   and release the lease so the retry budget ticks down;
5. when nothing is claimable, **back off with jitter**
   (:func:`~repro.core.retry.retry_with_backoff`) and poll again, exiting
   with a drained summary once every task is terminal.
"""
from __future__ import annotations

import random
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..core.retry import retry_with_backoff
from ..core.store import ResultStore
from ..faults.inject import maybe_fault
from .queue import Lease, LeaseQueue, default_owner


class QueueBusy(Exception):
    """Nothing claimable right now, but tasks are still outstanding."""


class _DrainRequested(Exception):
    """The worker was asked to drain; stop polling immediately."""


class _HeartbeatThread(threading.Thread):
    """Background lease refresh while the shard computes.

    Beats every quarter TTL (floored at 50 ms).  If a beat discovers the
    lease was reclaimed (`heartbeat()` returns False) the thread stops
    and flags it; the worker finds out at commit time — completion is
    exclusive either way.
    """

    def __init__(self, lease: Lease) -> None:
        super().__init__(daemon=True,
                         name=f"heartbeat-{lease.task_id}")
        self.lease = lease
        self.interval_s = max(0.05, lease.ttl_s / 4.0)
        self.lost = False
        self.beats = 0
        # Not named ``_stop``: Thread itself owns a private ``_stop()``.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            fault = maybe_fault("fleet.worker.heartbeat")
            if fault is not None and fault.kind == "stall":
                # A GC pause / NFS hiccup / suspended VM: the thread is
                # alive but no beat lands for ``stall_s``.  If that
                # overshoots the TTL the lease is fair game for reclaim.
                self._halt.wait(float(fault.params.get("stall_s",
                                                       self.interval_s * 4)))
                continue
            if not self.lease.heartbeat():
                self.lost = True
                return
            self.beats += 1

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _run_shard_task(task: Dict[str, object], config: Dict[str, object],
                    store: ResultStore, output_dir: Path,
                    workers: int = 1) -> Dict[str, object]:
    """Default task runner: the existing ``run_all`` on one shard."""
    from ..experiments.runner import run_all

    index, count = (int(v) for v in task["shard"])  # type: ignore[index]
    # The plan pinned the experiment names at planning time; running the
    # pinned list (select order is registry order either way) keeps every
    # worker on the same suite even if the registry changes under them.
    bundle = run_all(
        output_dir=output_dir,
        reduced=bool(config.get("reduced", True)),
        backend=str(config.get("backend", "direct")),
        workers=workers,
        store=store,
        shard=(index, count),
        experiments=list(config["experiments"]),  # type: ignore[arg-type]
    )
    return {"rows": sum(len(result.rows)
                        for result in bundle.results.values()),
            "experiments": len(bundle.results)}


class FleetWorker:
    """One fleet process: claims leases until the queue drains.

    ``poll_retries`` x ``poll_base_delay`` bound how long the worker
    waits on a momentarily-unclaimable queue (every live task leased to
    someone else) before giving up; a *finished* queue exits immediately.
    ``runner`` is injectable for tests (e.g. a poison runner that always
    raises for one shard).
    """

    def __init__(self, queue: Union[LeaseQueue, str, Path],
                 owner: Optional[str] = None, workers: int = 1,
                 max_tasks: Optional[int] = None,
                 poll_retries: int = 20, poll_base_delay: float = 0.25,
                 poll_jitter: float = 0.5,
                 poll_deadline_s: Optional[float] = None,
                 runner: Optional[Callable[..., Dict[str, object]]] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.queue = queue if isinstance(queue, LeaseQueue) \
            else LeaseQueue(queue)
        self.owner = owner or default_owner()
        self.workers = int(workers)
        self.max_tasks = max_tasks
        self.poll_retries = int(poll_retries)
        self.poll_base_delay = float(poll_base_delay)
        self.poll_jitter = float(poll_jitter)
        self.poll_deadline_s = poll_deadline_s
        self.runner = runner or _run_shard_task
        self.sleep = sleep
        self._rng = random.Random(self.owner)
        self._drain = threading.Event()

    # ------------------------------------------------------------------ #
    # Graceful drain
    # ------------------------------------------------------------------ #
    def request_drain(self) -> None:
        """Ask the worker to stop after the task in flight (signal-safe).

        Sets a flag only — the SIGTERM contract: a task mid-compute is
        finished and committed (its work is not thrown away), a backoff
        sleep is cut short, and no further lease is claimed.
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def _poll_sleep(self, delay: float) -> None:
        """A backoff sleep that a drain request cuts short."""
        if self.sleep is time.sleep:
            self._drain.wait(delay)
        else:
            self.sleep(delay)  # injected fake clocks keep their semantics

    # ------------------------------------------------------------------ #
    def _claim_or_raise(self) -> Optional[Lease]:
        """One poll: a lease, ``None`` when finished, QueueBusy otherwise."""
        if self._drain.is_set():
            raise _DrainRequested(self.owner)
        lease = self.queue.claim(self.owner)
        if lease is not None:
            return lease
        if self.queue.finished():
            return None
        raise QueueBusy(f"{len(self.queue.outstanding())} task(s) "
                        f"outstanding, none claimable")

    def _next_lease(self) -> Optional[Lease]:
        """Poll with jittered exponential backoff until claim or drain."""
        return retry_with_backoff(
            self._claim_or_raise, retries=self.poll_retries,
            base_delay=self.poll_base_delay, jitter=self.poll_jitter,
            max_delay=10.0, retry_on=QueueBusy, sleep=self._poll_sleep,
            rng=self._rng, deadline_s=self.poll_deadline_s)

    def run_one(self, lease: Lease) -> Dict[str, object]:
        """Execute one leased shard and commit (or file) the attempt."""
        started = time.perf_counter()
        output_dir = self.queue.output_dir(lease.task_id, lease.attempt,
                                           self.owner)
        store = ResultStore(self.queue.worker_store_dir(self.owner))
        heartbeat = _HeartbeatThread(lease)
        heartbeat.start()
        try:
            summary = self.runner(lease.task, self.queue.config, store,
                                  output_dir, workers=self.workers)
        except Exception as error:  # noqa: BLE001 - the attempt report
            heartbeat.stop()
            lease.fail(f"{type(error).__name__}: {error}")
            return {"task": lease.task_id, "outcome": "error",
                    "attempt": lease.attempt, "reason": str(error),
                    "seconds": round(time.perf_counter() - started, 3)}
        heartbeat.stop()
        summary = dict(summary or {})
        summary["seconds"] = round(time.perf_counter() - started, 3)
        fault = maybe_fault("fleet.worker.commit")
        if fault is not None and fault.kind == "crash_before":
            # Simulated SIGKILL between compute and commit: no tombstone,
            # no release, no attempt report — the lease just goes silent
            # and ages out, and a reclaiming worker redoes the shard.
            # The artifacts in the attempt directory are orphaned exactly
            # as a real dead worker's would be.
            return {"task": lease.task_id, "outcome": "injected_crash",
                    "crash": "before_commit", "attempt": lease.attempt,
                    "heartbeats": heartbeat.beats,
                    "lease_lost": heartbeat.lost}
        if fault is not None and fault.kind == "crash_after":
            # Simulated death between commit and cleanup: the tombstone
            # lands (the task IS done) but the lease is left to expire —
            # the coordinator's sweep must cope with leased-and-done.
            committed = lease.complete(output_dir, summary=summary,
                                       cleanup=False)
            return {"task": lease.task_id, "outcome": "injected_crash",
                    "crash": "after_commit", "committed": committed,
                    "attempt": lease.attempt,
                    "heartbeats": heartbeat.beats,
                    "lease_lost": heartbeat.lost}
        committed = lease.complete(output_dir, summary=summary)
        return {"task": lease.task_id,
                "outcome": "completed" if committed else "double_completion",
                "attempt": lease.attempt,
                "heartbeats": heartbeat.beats,
                "lease_lost": heartbeat.lost,
                **summary}

    def run(self) -> Dict[str, object]:
        """Drain the queue; the worker's JSON exit summary."""
        started = time.perf_counter()
        tasks = []
        completed = failures = double_completions = injected_crashes = 0
        drained = False
        while self.max_tasks is None or len(tasks) < self.max_tasks:
            try:
                lease = self._next_lease()
            except QueueBusy:
                break  # gave up waiting on other workers' live leases
            except _DrainRequested:
                break
            if lease is None:
                drained = True
                break
            if self._drain.is_set():
                # Drain won the race against the claim: hand the task
                # straight back rather than start work we mean to abandon.
                lease.release()
                break
            outcome = self.run_one(lease)
            tasks.append(outcome)
            if outcome["outcome"] == "completed":
                completed += 1
            elif outcome["outcome"] == "error":
                failures += 1
            elif outcome["outcome"] == "injected_crash":
                injected_crashes += 1
            else:
                double_completions += 1
            if self._drain.is_set():
                break  # the in-flight task was finished; stop here
        if not drained and self.queue.finished():
            drained = True
        return {
            "owner": self.owner,
            "queue": str(self.queue.directory),
            "tasks": tasks,
            "completed": completed,
            "failed_attempts": failures,
            "double_completions": double_completions,
            "injected_crashes": injected_crashes,
            "drain_requested": self._drain.is_set(),
            "drained": drained,
            "seconds": round(time.perf_counter() - started, 3),
        }
