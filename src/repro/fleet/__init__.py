"""Fleet execution: a dependency-free, filesystem-backed work queue.

``repro fleet plan`` carves the experiment suite into shard tasks inside
a shared directory; any number of ``repro fleet work`` processes — on one
machine or many sharing the directory — claim lease files atomically,
heartbeat while computing, and push per-attempt artifacts plus
per-worker stores back into the queue.  Workers that die (including
``SIGKILL``) stop heartbeating; their leases expire and are reclaimed
with a bounded retry budget, so crashes cost wall-clock, never results —
and a poison shard fails loudly instead of looping.  ``repro fleet
harvest`` folds everything back together, bit-identical to a
single-process run.

See :mod:`repro.fleet.queue` for the on-disk state machine,
:mod:`repro.fleet.worker` for the claim/heartbeat/commit loop and
:mod:`repro.fleet.coordinator` for plan/status/harvest.
"""
from .coordinator import harvest, plan_queue, queue_status, wait_until_finished
from .queue import Lease, LeaseQueue, QueueError, default_owner
from .worker import FleetWorker, QueueBusy

__all__ = [
    "FleetWorker",
    "Lease",
    "LeaseQueue",
    "QueueBusy",
    "QueueError",
    "default_owner",
    "harvest",
    "plan_queue",
    "queue_status",
    "wait_until_finished",
]
