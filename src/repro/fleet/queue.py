"""Filesystem-backed lease queue: the fleet's shared coordination state.

No broker, no database — a :class:`LeaseQueue` is a directory (local or on
a shared filesystem) whose *files are the state machine*.  Every
transition is a single atomic filesystem operation, so any number of
worker processes on any number of machines can race without locks:

* **claim** — exclusive creation of ``leases/<task>.json`` via
  ``os.link`` from a fully-written temporary (content-complete and
  exclusive in one step; the second claimant loses with
  ``FileExistsError``);
* **heartbeat** — atomic ``os.replace`` of the lease with a fresh
  timestamp;
* **reclaim** — ``os.replace`` of an *expired* lease into
  ``attempts/<task>.<k>.json``; the rename both frees the task and files
  the forensic record of the dead attempt, and only one reclaimer can win
  it (the loser's rename finds no source);
* **complete** — exclusive creation of ``done/<task>.json``; a second
  completion of the same task (its first owner lost the lease mid-compute
  but finished anyway) is *detected and rejected*, never merged twice;
* **poison** — a task whose failed attempts reach ``max_attempts`` is
  tombstoned into ``failed/<task>.json`` with every attempt report
  attached, so a poison shard fails loudly instead of looping forever.

Layout under the queue directory::

    queue.json                     the plan: experiments, shards, ttl, ...
    tasks/<task>.json              immutable task definitions
    leases/<task>.json             live leases (owner, heartbeat, ttl)
    attempts/<task>.<k>.json       one record per failed/reclaimed attempt
    done/<task>.json               completion tombstones -> output dirs
    failed/<task>.json             poison tombstones (retries exhausted)
    out/<task>/a<k>-<owner>/       per-attempt run artifacts
    stores/<owner>/                per-worker ResultStore directories

Leases are advisory — they make the fleet *efficient* (at most one worker
per task while heartbeats flow) — but correctness never rests on them:
the ``done/`` tombstone's exclusive creation is the one true commit
point, and per-attempt output directories keep racing attempts from
scribbling over each other.
"""
from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..faults.inject import maybe_fault

#: queue.json schema version; bump when the on-disk layout changes.
QUEUE_VERSION = 1


class QueueError(ValueError):
    """A structurally unusable queue (missing plan, bad version, ...)."""


def default_owner() -> str:
    """A reasonably unique worker identity: host, pid and thread."""
    return f"{socket.gethostname()}-{os.getpid()}-{threading.get_ident()}"


def _write_text_durable(path: Path, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())


def _exclusive_create(path: Path, document: Dict[str, object]) -> bool:
    """Atomically create ``path`` holding ``document``; False if it exists.

    The document is fully written (and fsynced) to a temporary file first
    and linked into place, so a winner's file is never observable
    half-written and exactly one concurrent creator can win.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_suffix(
        f".{os.getpid()}.{threading.get_ident()}.tmp")
    try:
        _write_text_durable(temporary,
                            json.dumps(document, indent=2, sort_keys=True))
        os.link(temporary, path)
        return True
    except FileExistsError:
        return False
    except OSError:
        # ``os.link`` unsupported (exotic filesystems): fall back to
        # O_EXCL creation — still exclusive, marginally less atomic.
        try:
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(json.dumps(document, indent=2, sort_keys=True))
            return True
        except FileExistsError:
            return False
    finally:
        temporary.unlink(missing_ok=True)


def _read_json(path: Path) -> Optional[Dict[str, object]]:
    """The JSON object at ``path``, or ``None`` on any problem."""
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


class Lease:
    """One claimed task: the worker's handle for heartbeat and commit."""

    def __init__(self, queue: "LeaseQueue", task_id: str, owner: str,
                 attempt: int, ttl_s: float) -> None:
        self.queue = queue
        self.task_id = task_id
        self.owner = owner
        self.attempt = attempt
        self.ttl_s = ttl_s

    @property
    def path(self) -> Path:
        return self.queue.lease_path(self.task_id)

    @property
    def task(self) -> Dict[str, object]:
        document = _read_json(self.queue.task_path(self.task_id))
        if document is None:
            raise QueueError(f"task file for {self.task_id!r} is unreadable")
        return document

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #
    def heartbeat(self) -> bool:
        """Refresh the lease timestamp; False once the lease was lost.

        A ``False`` return means an expiry reclaim took the task away
        (the worker stalled longer than the TTL).  The worker may keep
        computing — completion is still exclusive — but should expect its
        :meth:`complete` to lose the race.
        """
        current = _read_json(self.path)
        if current is None or current.get("owner") != self.owner:
            return False
        current["heartbeat_at"] = self.queue.clock()
        temporary = self.path.with_suffix(
            f".{os.getpid()}.{threading.get_ident()}.hb.tmp")
        try:
            _write_text_durable(temporary,
                                json.dumps(current, indent=2, sort_keys=True))
            os.replace(temporary, self.path)
        except OSError:
            temporary.unlink(missing_ok=True)
            return False
        return True

    def release(self) -> None:
        """Drop the lease if still ours (best effort, used on failure)."""
        current = _read_json(self.path)
        if current is not None and current.get("owner") == self.owner:
            try:
                self.path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Terminal transitions
    # ------------------------------------------------------------------ #
    def complete(self, output: Union[str, Path],
                 summary: Optional[Dict[str, object]] = None,
                 cleanup: bool = True) -> bool:
        """Commit this attempt's output; False on a double completion.

        ``output`` is the artifact directory (relative paths are kept
        relative to the queue directory, so the queue moves wholesale).
        Exactly one completion per task ever succeeds; the tombstone
        records *which* attempt's output directory is canonical, and the
        harvest reads only tombstoned directories.  ``cleanup=False``
        skips releasing the lease after the commit — how fault injection
        simulates a worker dying *between* its commit and its cleanup;
        the stale lease ages out via the TTL and the reclaim path must
        cope with a task that is both leased and done.
        """
        output_path = Path(output)
        try:
            recorded = str(output_path.relative_to(self.queue.directory))
        except ValueError:
            recorded = str(output_path)
        tombstone = {
            "task": self.task_id,
            "owner": self.owner,
            "attempt": self.attempt,
            "output": recorded,
            "completed_at": self.queue.clock(),
        }
        if summary:
            tombstone["summary"] = summary
        won = _exclusive_create(self.queue.done_path(self.task_id), tombstone)
        if cleanup:
            self.release()
        return won

    def fail(self, reason: str) -> None:
        """Record a failed attempt (worker-side exception) and release."""
        self.queue.record_failure(self.task_id, self.attempt, self.owner,
                                  reason)
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Lease {self.task_id} owner={self.owner!r} "
                f"attempt={self.attempt}>")


class LeaseQueue:
    """The shared work queue: plan it once, then claim/heartbeat/complete.

    ``clock`` is injectable for tests (expiry without waiting out a TTL).
    """

    def __init__(self, directory: Union[str, Path],
                 clock: Callable[[], float] = time.time) -> None:
        self.directory = Path(directory)
        self.clock = clock
        self._config: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def task_path(self, task_id: str) -> Path:
        return self.directory / "tasks" / f"{task_id}.json"

    def lease_path(self, task_id: str) -> Path:
        return self.directory / "leases" / f"{task_id}.json"

    def done_path(self, task_id: str) -> Path:
        return self.directory / "done" / f"{task_id}.json"

    def failed_path(self, task_id: str) -> Path:
        return self.directory / "failed" / f"{task_id}.json"

    def output_dir(self, task_id: str, attempt: int, owner: str) -> Path:
        safe_owner = "".join(c if c.isalnum() or c in "-_." else "_"
                             for c in owner)
        return self.directory / "out" / task_id / f"a{attempt}-{safe_owner}"

    def worker_store_dir(self, owner: str) -> Path:
        safe_owner = "".join(c if c.isalnum() or c in "-_." else "_"
                             for c in owner)
        return self.directory / "stores" / safe_owner

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    @classmethod
    def plan(cls, directory: Union[str, Path],
             experiments: Optional[Sequence[str]] = None,
             shards: int = 4, reduced: bool = True, backend: str = "direct",
             ttl_s: float = 60.0, max_attempts: int = 3,
             include_ablations: bool = True,
             clock: Callable[[], float] = time.time) -> "LeaseQueue":
        """Create a queue of ``shards`` shard tasks over the experiments.

        One task per shard index — each task runs ``run_all(shard=(i, n))``
        over the *same* experiment selection, exactly the partition
        ``merge_shards`` knows how to reassemble bit-identically.
        Planning an already-planned directory raises (a queue is created
        once; workers join it).
        """
        from ..experiments.runner import select_experiments

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        # Validate the selection (and pin its names) before touching disk.
        names = [spec.name for spec in
                 select_experiments(experiments, include_ablations)]
        queue = cls(directory, clock=clock)
        if (queue.directory / "queue.json").exists():
            raise QueueError(
                f"{queue.directory} already holds a planned queue")
        queue.directory.mkdir(parents=True, exist_ok=True)
        from .. import __version__

        config = {
            "queue_version": QUEUE_VERSION,
            "repro": __version__,
            "experiments": names,
            "explicit_selection": experiments is not None,
            "shards": int(shards),
            "reduced": bool(reduced),
            "backend": str(backend),
            "ttl_s": float(ttl_s),
            "max_attempts": int(max_attempts),
            "created_at": clock(),
        }
        for index in range(shards):
            task_id = f"shard-{index:03d}-of-{shards:03d}"
            _exclusive_create(queue.task_path(task_id), {
                "task": task_id,
                "shard": [index, int(shards)],
            })
        _write_text_durable(queue.directory / "queue.json",
                            json.dumps(config, indent=2, sort_keys=True))
        queue._config = config
        return queue

    @property
    def config(self) -> Dict[str, object]:
        if self._config is None:
            document = _read_json(self.directory / "queue.json")
            if document is None:
                raise QueueError(
                    f"{self.directory} holds no queue.json — not a planned "
                    f"fleet queue (run 'fleet plan' first)")
            if document.get("queue_version") != QUEUE_VERSION:
                raise QueueError(
                    f"{self.directory} has queue_version "
                    f"{document.get('queue_version')!r}, expected "
                    f"{QUEUE_VERSION}")
            self._config = document
        return self._config

    def task_ids(self) -> List[str]:
        base = self.directory / "tasks"
        if not base.is_dir():
            return []
        return sorted(path.stem for path in base.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Attempt bookkeeping
    # ------------------------------------------------------------------ #
    def _attempt_records(self, task_id: str) -> List[Path]:
        base = self.directory / "attempts"
        if not base.is_dir():
            return []
        return sorted(base.glob(f"{task_id}.*.json"))

    def attempt_count(self, task_id: str) -> int:
        """Failed attempts so far (reclaims plus worker-reported errors)."""
        return len(self._attempt_records(task_id))

    def record_failure(self, task_id: str, attempt: int, owner: str,
                       reason: str) -> None:
        """File a failed-attempt record (idempotent per attempt number)."""
        path = (self.directory / "attempts"
                / f"{task_id}.{attempt:03d}.json")
        _exclusive_create(path, {
            "task": task_id,
            "attempt": attempt,
            "owner": owner,
            "reason": reason,
            "recorded_at": self.clock(),
        })

    def _reclaim_lease(self, task_id: str,
                       lease: Dict[str, object]) -> bool:
        """Move an expired lease into the attempt records; True if we won."""
        attempt = int(lease.get("attempt", self.attempt_count(task_id) + 1))
        grave = (self.directory / "attempts"
                 / f"{task_id}.{attempt:03d}.json")
        grave.parent.mkdir(parents=True, exist_ok=True)
        if grave.exists():
            # The attempt record already exists (worker filed an error for
            # this very attempt); just clear the stale lease.
            try:
                self.lease_path(task_id).unlink()
            except OSError:
                return False
            return True
        try:
            os.replace(self.lease_path(task_id), grave)
        except OSError:
            return False  # lost the reclaim race (or lease vanished)
        # Annotate the grave with why it is there; we own the file now.
        lease = dict(lease)
        lease["reason"] = "lease_expired"
        lease["reclaimed_at"] = self.clock()
        try:
            _write_text_durable(grave,
                                json.dumps(lease, indent=2, sort_keys=True))
        except OSError:
            pass
        return True

    def _fail_task(self, task_id: str) -> bool:
        """Tombstone a task whose retries are exhausted; True if we won."""
        reports = [_read_json(path) or {"unreadable": str(path)}
                   for path in self._attempt_records(task_id)]
        return _exclusive_create(self.failed_path(task_id), {
            "task": task_id,
            "attempts": reports,
            "failed_at": self.clock(),
        })

    def _lease_expired(self, task_id: str,
                       lease: Optional[Dict[str, object]]) -> bool:
        # Fault point: a skewed clock makes this checker see leases older
        # (positive skew_s: premature reclaims of live leases) or younger
        # (negative: expiry goes blind) than they are.  Correctness must
        # not care — leases are advisory; done/ is the only commit point.
        skew = 0.0
        fault = maybe_fault("fleet.queue.expiry")
        if fault is not None and fault.kind == "clock_skew":
            skew = float(fault.params.get("skew_s", 0.0))
        if lease is None:
            # Unreadable lease: fall back to the file clock so a garbage
            # file cannot wedge the task forever.
            try:
                age = self.clock() + skew \
                    - self.lease_path(task_id).stat().st_mtime
            except OSError:
                return False
            return age > float(self.config.get("ttl_s", 60.0))
        ttl = float(lease.get("ttl_s", self.config.get("ttl_s", 60.0)))
        beat = float(lease.get("heartbeat_at",
                               lease.get("acquired_at", 0.0)))
        return (self.clock() + skew - beat) > ttl

    # ------------------------------------------------------------------ #
    # Claiming
    # ------------------------------------------------------------------ #
    def claim(self, owner: Optional[str] = None) -> Optional[Lease]:
        """Claim one runnable task, reclaiming expired leases on the way.

        Returns a :class:`Lease`, or ``None`` when no task is claimable
        right now — distinguish *drained* (every task terminal — see
        :meth:`finished`) from *contended* (live leases still out) via
        :meth:`status`.  Tasks are visited in a rotation keyed on the
        owner name, so a fleet of workers spreads over the queue instead
        of stampeding the first pending task.
        """
        owner = owner or default_owner()
        config = self.config
        ttl = float(config.get("ttl_s", 60.0))
        max_attempts = int(config.get("max_attempts", 3))
        tasks = self.task_ids()
        if not tasks:
            return None
        offset = int(hashlib.sha1(owner.encode()).hexdigest(), 16) % len(tasks)
        for task_id in tasks[offset:] + tasks[:offset]:
            if self.done_path(task_id).exists() \
                    or self.failed_path(task_id).exists():
                continue
            lease_path = self.lease_path(task_id)
            if lease_path.exists():
                lease = _read_json(lease_path)
                if not self._lease_expired(task_id, lease):
                    continue
                if not self._reclaim_lease(task_id, lease or {}):
                    continue  # another worker handled the expiry
            attempts = self.attempt_count(task_id)
            if attempts >= max_attempts:
                self._fail_task(task_id)
                continue
            acquired = {
                "task": task_id,
                "owner": owner,
                "attempt": attempts + 1,
                "acquired_at": self.clock(),
                "heartbeat_at": self.clock(),
                "ttl_s": ttl,
            }
            if _exclusive_create(lease_path, acquired):
                return Lease(self, task_id, owner, attempts + 1, ttl)
        return None

    def reclaim_expired(self) -> int:
        """One coordinator sweep: reclaim every expired lease, tombstone
        exhausted tasks; returns how many leases were reclaimed."""
        reclaimed = 0
        max_attempts = int(self.config.get("max_attempts", 3))
        for task_id in self.task_ids():
            if self.done_path(task_id).exists() \
                    or self.failed_path(task_id).exists():
                # A worker that died between its commit and its cleanup
                # leaves a lease behind on a terminal task; sweep it once
                # expired so the directory converges to the tombstones.
                stale = self.lease_path(task_id)
                if stale.exists() \
                        and self._lease_expired(task_id, _read_json(stale)):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
                continue
            lease_path = self.lease_path(task_id)
            if lease_path.exists():
                lease = _read_json(lease_path)
                if self._lease_expired(task_id, lease) \
                        and self._reclaim_lease(task_id, lease or {}):
                    reclaimed += 1
            if self.attempt_count(task_id) >= max_attempts \
                    and not lease_path.exists():
                self._fail_task(task_id)
        return reclaimed

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def finished(self) -> bool:
        """Every task terminal (done or failed) — nothing left to run."""
        return all(self.done_path(t).exists() or self.failed_path(t).exists()
                   for t in self.task_ids())

    def outstanding(self) -> List[str]:
        """Tasks not yet terminal (pending or leased)."""
        return [t for t in self.task_ids()
                if not (self.done_path(t).exists()
                        or self.failed_path(t).exists())]

    def completed_outputs(self) -> List[Tuple[str, Path]]:
        """(task, canonical artifact directory) for every done task."""
        outputs = []
        for task_id in self.task_ids():
            tombstone = _read_json(self.done_path(task_id))
            if tombstone is None:
                continue
            outputs.append((task_id,
                            self.directory / str(tombstone.get("output"))))
        return outputs

    def failure_reports(self) -> Dict[str, Dict[str, object]]:
        """Poison tombstones, keyed by task."""
        reports = {}
        for task_id in self.task_ids():
            report = _read_json(self.failed_path(task_id))
            if report is not None:
                reports[task_id] = report
        return reports

    def status(self) -> Dict[str, object]:
        """Live progress counters — what ``repro fleet status`` prints."""
        now = self.clock()
        pending = leased = done = failed = 0
        workers: Dict[str, Dict[str, object]] = {}
        reclaims = 0
        worker_errors = 0
        for task_id in self.task_ids():
            if self.done_path(task_id).exists():
                done += 1
            elif self.failed_path(task_id).exists():
                failed += 1
            elif self.lease_path(task_id).exists():
                lease = _read_json(self.lease_path(task_id))
                expired = self._lease_expired(task_id, lease)
                leased += 1
                if lease is not None:
                    owner = str(lease.get("owner", "?"))
                    beat = float(lease.get("heartbeat_at", now))
                    workers[owner] = {
                        "task": task_id,
                        "attempt": int(lease.get("attempt", 1)),
                        "heartbeat_age_s": round(max(0.0, now - beat), 3),
                        "expired": expired,
                    }
            else:
                pending += 1
            for record_path in self._attempt_records(task_id):
                record = _read_json(record_path) or {}
                if record.get("reason") == "lease_expired":
                    reclaims += 1
                else:
                    worker_errors += 1
        config = self.config
        return {
            "directory": str(self.directory),
            "tasks": len(self.task_ids()),
            "pending": pending,
            "leased": leased,
            "done": done,
            "failed": failed,
            "reclaims": reclaims,
            "worker_errors": worker_errors,
            "workers": workers,
            "finished": (pending == leased == 0),
            "config": {key: config.get(key)
                       for key in ("experiments", "shards", "reduced",
                                   "backend", "ttl_s", "max_attempts")},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LeaseQueue {self.directory}>"
