"""The injection runtime: one process-wide injector, zero-cost when off.

Call sites consult :func:`maybe_fault` at their named fault point::

    fault = maybe_fault("store.save")
    if fault is not None and fault.kind == "torn_write":
        ...act out the fault...

With no plan active this is one global load and an ``is None`` check —
unmeasurable next to the I/O the fault points guard, which is what lets
the injection stay compiled into the production paths instead of living
in test-only monkeypatches.

Activation, in precedence order:

* :func:`activate` with a :class:`~repro.faults.plan.FaultPlan` (or a
  plan path) — what tests and the CLI ``--fault-plan`` flags call;
* the ``REPRO_FAULT_PLAN`` environment variable naming a plan file,
  checked once at import — which is how process-pool workers and
  subprocesses spawned by a faulted run inherit the plan (the CLI flags
  export it for exactly that reason).

Deactivation (:func:`deactivate`) drops the injector; tests use the
``try/finally`` or fixture shape so one test's chaos never leaks into
the next.
"""
from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .plan import Fault, FaultInjector, FaultPlan

#: Environment variable naming the active plan file.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: The process-wide injector; ``None`` means injection is off.
_ACTIVE: Optional[FaultInjector] = None


def fault_active() -> bool:
    """Whether a fault plan is currently driving injection."""
    return _ACTIVE is not None


def active_injector() -> Optional[FaultInjector]:
    """The live injector (for schedule/stats introspection), or ``None``."""
    return _ACTIVE


def maybe_fault(point: str) -> Optional[Fault]:
    """Consult ``point``; the fired fault, or ``None`` (the common case)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.check(point)


def activate(plan: Union[FaultPlan, str, Path],
             export_env: bool = False) -> FaultInjector:
    """Install ``plan`` (or the plan file at that path) process-wide.

    ``export_env=True`` additionally writes ``REPRO_FAULT_PLAN`` so child
    processes — sweep process pools, fleet worker subprocesses — pick the
    same plan up at import; it requires the plan to have a file source.
    Returns the injector (its :meth:`~FaultInjector.schedule` is the
    chaos log).
    """
    global _ACTIVE
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.load(plan)
    if export_env:
        if plan.source is None:
            raise ValueError("export_env needs a file-backed plan "
                             "(load it from a path)")
        os.environ[ENV_FAULT_PLAN] = plan.source
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def deactivate() -> None:
    """Drop the active injector (idempotent); clears the env export."""
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(ENV_FAULT_PLAN, None)


def activate_from_env() -> Optional[FaultInjector]:
    """Activate from ``REPRO_FAULT_PLAN`` if set; the injector or ``None``.

    Called once at import so spawned workers inherit the parent's plan;
    callable again after the environment changes (tests).  A plan file
    that does not validate raises — a chaos run that silently runs
    unfaulted would report a vacuous pass.
    """
    path = os.environ.get(ENV_FAULT_PLAN)
    if not path:
        return None
    return activate(path)


activate_from_env()
