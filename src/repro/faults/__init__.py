"""Deterministic fault injection: break the system on purpose, on a seed.

The reproduction's credibility rests on results being bit-identical no
matter how the work is executed — sharded, fleeted, served, or crashed
mid-flight.  This package makes "crashed mid-flight" a *first-class,
replayable input*: a seeded :class:`FaultPlan` (JSON-loadable) is
consulted at named fault points threaded through every layer that does
I/O — the result store's writes, the fleet worker's commit/heartbeat,
the lease queue's TTL checks, the evaluation server's request handler —
and the resulting fault schedule is a pure function of the seed and the
consult sequence, so a chaos failure reproduces exactly.

* :mod:`repro.faults.plan` — the plan/rule schema, validation, the
  :data:`FAULT_POINTS` point/kind registry and the deterministic
  :class:`FaultInjector`;
* :mod:`repro.faults.inject` — the process-wide runtime: zero-cost
  ``maybe_fault`` consults, activation via ``--fault-plan`` CLI flags or
  the ``REPRO_FAULT_PLAN`` environment variable (inherited by spawned
  workers).

With no plan active every fault point is a global load plus an
``is None`` check; ``perf_bench --check`` floors hold unchanged.
"""
from .inject import (
    ENV_FAULT_PLAN,
    activate,
    activate_from_env,
    active_injector,
    deactivate,
    fault_active,
    maybe_fault,
)
from .plan import (
    FAULT_POINTS,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)

__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_POINTS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "activate",
    "activate_from_env",
    "active_injector",
    "deactivate",
    "fault_active",
    "maybe_fault",
]
