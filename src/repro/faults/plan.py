"""Fault plans: seeded, deterministic descriptions of what to break.

A :class:`FaultPlan` is a JSON-loadable document — a seed plus a list of
:class:`FaultRule`\\ s — that tells the named fault points threaded
through the I/O layers (:data:`FAULT_POINTS`) when to misbehave.  The
same plan file drives unit tests, the CI chaos matrix and local
reproduction of a field failure, because the schedule it produces is a
pure function of ``(seed, rules, consult sequence)``:

* an ``nth`` rule fires on exact consult ordinals of its point
  (1-based), so "crash the first commit" is spelled ``"nth": [1]``;
* a ``probability`` rule draws from a :class:`random.Random` stream
  seeded from ``(seed, rule index, point, kind)`` — re-running the same
  consult sequence replays the identical draws.

Plan document shape::

    {
      "fault_plan_version": 1,
      "seed": 1234,
      "rules": [
        {"point": "fleet.worker.commit", "kind": "crash_before",
         "nth": [1]},
        {"point": "store.save", "kind": "torn_write",
         "probability": 0.2, "params": {"keep_fraction": 0.5}}
      ]
    }

Unknown points, unsupported kinds and malformed triggers are rejected at
load time (:class:`FaultPlanError`) — a chaos tool that silently does
nothing is worse than one that refuses loudly.
"""
from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Plan document schema version; bump when the shape changes.
FAULT_PLAN_VERSION = 1

#: Every named fault point threaded through the code, with the fault
#: kinds its call site implements.  This table is the contract between
#: plans and code: a rule naming anything else is rejected at load time,
#: and the README's resilience table is generated from the same data.
FAULT_POINTS: Dict[str, Tuple[str, ...]] = {
    # core/store.py — ResultStore.save / ResultStore.absorb
    "store.save": ("torn_write", "fsync_error"),
    "store.absorb": ("corrupt",),
    # fleet/worker.py — commit transition and the heartbeat thread
    "fleet.worker.commit": ("crash_before", "crash_after"),
    "fleet.worker.heartbeat": ("stall",),
    # fleet/queue.py — the TTL expiry check
    "fleet.queue.expiry": ("clock_skew",),
    # server/app.py — the HTTP request handler
    "server.handler": ("drop", "delay", "error"),
}


class FaultPlanError(ValueError):
    """A structurally invalid fault plan (unknown point, bad trigger...)."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* (point, kind) and *when* (nth or p)."""

    point: str
    kind: str
    nth: Optional[Tuple[int, ...]] = None
    probability: Optional[float] = None
    params: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        kinds = FAULT_POINTS.get(self.point)
        if kinds is None:
            raise FaultPlanError(
                f"unknown fault point {self.point!r}; known points: "
                f"{', '.join(sorted(FAULT_POINTS))}")
        if self.kind not in kinds:
            raise FaultPlanError(
                f"fault point {self.point!r} does not implement kind "
                f"{self.kind!r}; it implements: {', '.join(kinds)}")
        if (self.nth is None) == (self.probability is None):
            raise FaultPlanError(
                f"rule for {self.point!r}/{self.kind!r} needs exactly one "
                f"trigger: 'nth' (consult ordinals) or 'probability'")
        if self.nth is not None:
            if not self.nth or any(n < 1 for n in self.nth):
                raise FaultPlanError(
                    f"rule for {self.point!r}/{self.kind!r}: 'nth' must be "
                    f"a non-empty list of ordinals >= 1, got {self.nth}")
        if self.probability is not None \
                and not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"rule for {self.point!r}/{self.kind!r}: 'probability' "
                f"must be in (0, 1], got {self.probability}")

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "FaultRule":
        if not isinstance(document, dict):
            raise FaultPlanError(f"a rule must be a JSON object, "
                                 f"got {type(document).__name__}")
        unknown = set(document) - {"point", "kind", "nth", "probability",
                                   "params"}
        if unknown:
            raise FaultPlanError(
                f"rule has unknown field(s): {', '.join(sorted(unknown))}")
        point = document.get("point")
        kind = document.get("kind")
        if not isinstance(point, str) or not isinstance(kind, str):
            raise FaultPlanError("a rule needs string 'point' and 'kind'")
        nth = document.get("nth")
        if nth is not None:
            if isinstance(nth, int) and not isinstance(nth, bool):
                nth = (nth,)
            elif isinstance(nth, list) and all(
                    isinstance(n, int) and not isinstance(n, bool)
                    for n in nth):
                nth = tuple(nth)
            else:
                raise FaultPlanError(
                    f"'nth' must be an integer or a list of integers, "
                    f"got {nth!r}")
        probability = document.get("probability")
        if probability is not None:
            if isinstance(probability, bool) \
                    or not isinstance(probability, (int, float)):
                raise FaultPlanError(
                    f"'probability' must be a number, got {probability!r}")
            probability = float(probability)
        params = document.get("params", {})
        if not isinstance(params, dict):
            raise FaultPlanError("'params' must be a JSON object")
        return cls(point=point, kind=kind, nth=nth,
                   probability=probability, params=dict(params))

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {"point": self.point, "kind": self.kind}
        if self.nth is not None:
            document["nth"] = list(self.nth)
        if self.probability is not None:
            document["probability"] = self.probability
        if self.params:
            document["params"] = dict(self.params)
        return document


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus the ordered rules — everything the injector needs."""

    seed: int
    rules: Tuple[FaultRule, ...] = ()
    source: Optional[str] = None  # the file it came from, for reporting

    @classmethod
    def from_dict(cls, document: Dict[str, object],
                  source: Optional[str] = None) -> "FaultPlan":
        if not isinstance(document, dict):
            raise FaultPlanError("a fault plan must be a JSON object")
        version = document.get("fault_plan_version", FAULT_PLAN_VERSION)
        if version != FAULT_PLAN_VERSION:
            raise FaultPlanError(
                f"fault_plan_version {version!r} is not supported "
                f"(expected {FAULT_PLAN_VERSION})")
        seed = document.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultPlanError(f"'seed' must be an integer, got {seed!r}")
        rules = document.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError("'rules' must be a list of rule objects")
        return cls(seed=seed,
                   rules=tuple(FaultRule.from_dict(rule) for rule in rules),
                   source=source)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load and validate a plan file; loud on any problem."""
        try:
            document = json.loads(Path(path).read_text())
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {error}") from None
        except ValueError as error:
            raise FaultPlanError(
                f"fault plan {path} is not valid JSON: {error}") from None
        return cls.from_dict(document, source=str(path))

    def to_dict(self) -> Dict[str, object]:
        return {
            "fault_plan_version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }


@dataclasses.dataclass(frozen=True)
class Fault:
    """One fired fault, handed to the call site to act out."""

    point: str
    kind: str
    params: Dict[str, object]
    occurrence: int  # 1-based consult ordinal of the point


class FaultInjector:
    """Deterministic fault scheduler over one plan.

    Each consult of a point advances that point's 1-based ordinal; rules
    are evaluated in plan order and the first that triggers wins.  A
    ``probability`` rule owns a private :class:`random.Random` seeded
    from ``(plan seed, rule index, point, kind)``, so two injectors built
    from the same plan produce the identical schedule for the identical
    consult sequence — the property the determinism tests pin.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counters: Dict[str, int] = {}
        self._fired: List[Dict[str, object]] = []
        self._rules: Dict[str, List[Tuple[FaultRule, Optional[random.Random]]]] = {}
        for index, rule in enumerate(plan.rules):
            rng = None
            if rule.probability is not None:
                rng = random.Random(
                    f"{plan.seed}:{index}:{rule.point}:{rule.kind}")
            self._rules.setdefault(rule.point, []).append((rule, rng))

    def check(self, point: str) -> Optional[Fault]:
        """Consult one fault point; the fired :class:`Fault` or ``None``."""
        rules = self._rules.get(point)
        if not rules:
            return None
        ordinal = self._counters.get(point, 0) + 1
        self._counters[point] = ordinal
        for rule, rng in rules:
            if rule.nth is not None:
                fired = ordinal in rule.nth
            else:
                fired = rng.random() < rule.probability  # type: ignore[union-attr]
            if fired:
                fault = Fault(point=point, kind=rule.kind,
                              params=dict(rule.params), occurrence=ordinal)
                self._fired.append({"point": point, "kind": rule.kind,
                                    "occurrence": ordinal})
                return fault
        return None

    def schedule(self) -> List[Dict[str, object]]:
        """Every fault fired so far, in consult order (the chaos log)."""
        return list(self._fired)

    def stats(self) -> Dict[str, object]:
        return {
            "seed": self.plan.seed,
            "source": self.plan.source,
            "rules": len(self.plan.rules),
            "consults": dict(sorted(self._counters.items())),
            "fired": len(self._fired),
            "schedule": self.schedule(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultInjector seed={self.plan.seed} "
                f"rules={len(self.plan.rules)} fired={len(self._fired)}>")
