"""Gate-level netlist container with logic simulation, timing and area.

The netlist plays the role of the synthesised gate-level design in APXPERF's
flow: from it we obtain area (sum of cell areas), delay (longest
combinational path) and — together with :mod:`repro.hardware.power` — an
activity-based power figure.  Netlists are built programmatically by the
operator builders; gates must be appended in topological order (a gate's
inputs are either primary inputs, constants or outputs of earlier gates),
which every builder naturally satisfies.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .technology import GateKind, TechnologyLibrary, TECH_28NM


@dataclass(frozen=True)
class Gate:
    """One primitive cell instance: an output wire driven by input wires."""

    kind: GateKind
    output: int
    inputs: Tuple[int, ...]


class Netlist:
    """A combinational (plus optional I/O register) gate-level design."""

    def __init__(self, name: str, technology: TechnologyLibrary = TECH_28NM) -> None:
        self.name = name
        self.technology = technology
        self._gates: List[Gate] = []
        self._wire_count = 0
        self._ports_in: Dict[str, List[int]] = {}
        self._ports_out: Dict[str, List[int]] = {}
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None
        self._register_bits = 0

    # ------------------------------------------------------------------ #
    # Construction API (used by the builders)
    # ------------------------------------------------------------------ #
    def new_wire(self) -> int:
        wire = self._wire_count
        self._wire_count += 1
        return wire

    def add_input_port(self, name: str, width: int) -> List[int]:
        """Declare a primary input port of ``width`` bits (LSB first)."""
        if name in self._ports_in:
            raise ValueError(f"input port {name!r} already exists")
        wires = []
        for _ in range(width):
            wire = self.new_wire()
            self._gates.append(Gate(GateKind.INPUT, wire, ()))
            wires.append(wire)
        self._ports_in[name] = wires
        return wires

    def set_output_port(self, name: str, wires: Sequence[int]) -> None:
        """Declare a primary output port from existing wires (LSB first)."""
        if name in self._ports_out:
            raise ValueError(f"output port {name!r} already exists")
        self._ports_out[name] = list(wires)

    def const(self, value: int) -> int:
        """Wire holding constant 0 or 1 (created lazily, shared)."""
        if value not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        if value == 0:
            if self._const0 is None:
                self._const0 = self.new_wire()
                self._gates.append(Gate(GateKind.CONST0, self._const0, ()))
            return self._const0
        if self._const1 is None:
            self._const1 = self.new_wire()
            self._gates.append(Gate(GateKind.CONST1, self._const1, ()))
        return self._const1

    def add_gate(self, kind: GateKind, *inputs: int) -> int:
        """Append a gate driven by existing wires; returns its output wire."""
        for wire in inputs:
            if not 0 <= wire < self._wire_count:
                raise ValueError(f"unknown wire {wire}")
        output = self.new_wire()
        self._gates.append(Gate(kind, output, tuple(inputs)))
        return output

    def add_register_bits(self, count: int) -> None:
        """Account for ``count`` D flip-flops (I/O registers of the operator).

        Registers are not simulated (the operators are purely combinational
        between registers); they contribute area, leakage and clock-load
        energy, which is why the paper's small adders still burn tens of
        microwatts.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._register_bits += count

    # -- small structural helpers shared by many builders ---------------- #
    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Accurate full adder; returns ``(sum, carry)`` wires."""
        axb = self.add_gate(GateKind.XOR2, a, b)
        s = self.add_gate(GateKind.XOR2, axb, cin)
        carry = self.add_gate(GateKind.MAJ3, a, b, cin)
        return s, carry

    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Half adder; returns ``(sum, carry)`` wires."""
        s = self.add_gate(GateKind.XOR2, a, b)
        carry = self.add_gate(GateKind.AND2, a, b)
        return s, carry

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def gates(self) -> Sequence[Gate]:
        return tuple(self._gates)

    @property
    def input_ports(self) -> Dict[str, List[int]]:
        return dict(self._ports_in)

    @property
    def output_ports(self) -> Dict[str, List[int]]:
        return dict(self._ports_out)

    @property
    def register_bits(self) -> int:
        return self._register_bits

    def gate_count(self, kind: Optional[GateKind] = None) -> int:
        """Number of logic gates (pseudo-cells excluded), optionally by kind."""
        pseudo = (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1)
        if kind is None:
            return sum(1 for g in self._gates if g.kind not in pseudo)
        return sum(1 for g in self._gates if g.kind is kind)

    def gate_histogram(self) -> Dict[str, int]:
        """Cell-count histogram, useful for reports and tests."""
        histogram: Dict[str, int] = {}
        pseudo = (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1)
        for gate in self._gates:
            if gate.kind in pseudo:
                continue
            histogram[gate.kind.value] = histogram.get(gate.kind.value, 0) + 1
        if self._register_bits:
            histogram[GateKind.DFF.value] = histogram.get(GateKind.DFF.value, 0) \
                + self._register_bits
        return histogram

    # ------------------------------------------------------------------ #
    # Area and timing
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total cell area, combinational gates plus I/O registers."""
        tech = self.technology
        total = sum(tech.area(g.kind) for g in self._gates)
        total += self._register_bits * tech.area(GateKind.DFF)
        return total

    def leakage_nw(self) -> float:
        """Total leakage power in nanowatts."""
        tech = self.technology
        total = sum(tech.leakage(g.kind) for g in self._gates)
        total += self._register_bits * tech.leakage(GateKind.DFF)
        return total

    def wire_depths(self) -> np.ndarray:
        """Arrival time (ns) of every wire assuming zero input arrival."""
        tech = self.technology
        arrival = np.zeros(self._wire_count, dtype=np.float64)
        for gate in self._gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
                arrival[gate.output] = 0.0
                continue
            start = max((arrival[w] for w in gate.inputs), default=0.0)
            arrival[gate.output] = start + tech.delay(gate.kind)
        return arrival

    def wire_logic_depths(self) -> np.ndarray:
        """Logic depth (gate count from primary inputs) of every wire."""
        depth = np.zeros(self._wire_count, dtype=np.int64)
        for gate in self._gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
                depth[gate.output] = 0
                continue
            start = max((depth[w] for w in gate.inputs), default=0)
            depth[gate.output] = start + 1
        return depth

    def critical_path_ns(self) -> float:
        """Longest input-to-output combinational delay.

        The clock-to-q / setup overhead of the I/O registers is added when
        registers are present, mirroring what a synthesis report would show.
        """
        arrival = self.wire_depths()
        outputs = [w for wires in self._ports_out.values() for w in wires]
        path = max((arrival[w] for w in outputs), default=0.0)
        if self._register_bits:
            path += self.technology.delay(GateKind.DFF)
        return float(path)

    # ------------------------------------------------------------------ #
    # Logic simulation
    # ------------------------------------------------------------------ #
    def evaluate(self, inputs: Dict[str, np.ndarray],
                 return_wires: bool = False
                 ) -> Dict[str, np.ndarray] | Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Simulate the netlist on integer stimulus.

        ``inputs`` maps port names to arrays of (unsigned or two's-complement)
        integer codes; each code is expanded into the port's bit wires.
        Returns the output ports re-assembled into unsigned integer codes,
        plus optionally the full wire-value matrix (samples x wires) used by
        the toggle-based power estimation.
        """
        sizes = {np.asarray(v).size for v in inputs.values()}
        if len(sizes) != 1:
            raise ValueError("all input ports must have the same number of samples")
        samples = sizes.pop()

        values = np.zeros((samples, self._wire_count), dtype=np.int8)
        for port, wires in self._ports_in.items():
            if port not in inputs:
                raise ValueError(f"missing stimulus for input port {port!r}")
            codes = np.asarray(inputs[port], dtype=np.int64)
            for bit, wire in enumerate(wires):
                values[:, wire] = (codes >> bit) & 1

        for gate in self._gates:
            kind = gate.kind
            if kind is GateKind.INPUT:
                continue
            if kind is GateKind.CONST0:
                values[:, gate.output] = 0
            elif kind is GateKind.CONST1:
                values[:, gate.output] = 1
            elif kind is GateKind.BUF:
                values[:, gate.output] = values[:, gate.inputs[0]]
            elif kind is GateKind.NOT:
                values[:, gate.output] = 1 - values[:, gate.inputs[0]]
            elif kind is GateKind.AND2:
                values[:, gate.output] = values[:, gate.inputs[0]] & values[:, gate.inputs[1]]
            elif kind is GateKind.OR2:
                values[:, gate.output] = values[:, gate.inputs[0]] | values[:, gate.inputs[1]]
            elif kind is GateKind.NAND2:
                values[:, gate.output] = 1 - (values[:, gate.inputs[0]] & values[:, gate.inputs[1]])
            elif kind is GateKind.NOR2:
                values[:, gate.output] = 1 - (values[:, gate.inputs[0]] | values[:, gate.inputs[1]])
            elif kind is GateKind.XOR2:
                values[:, gate.output] = values[:, gate.inputs[0]] ^ values[:, gate.inputs[1]]
            elif kind is GateKind.XNOR2:
                values[:, gate.output] = 1 - (values[:, gate.inputs[0]] ^ values[:, gate.inputs[1]])
            elif kind is GateKind.MUX2:
                sel = values[:, gate.inputs[0]]
                values[:, gate.output] = np.where(sel == 1,
                                                  values[:, gate.inputs[2]],
                                                  values[:, gate.inputs[1]])
            elif kind is GateKind.MAJ3:
                total = (values[:, gate.inputs[0]].astype(np.int16)
                         + values[:, gate.inputs[1]] + values[:, gate.inputs[2]])
                values[:, gate.output] = (total >= 2).astype(np.int8)
            elif kind is GateKind.AOI21:
                a, b, c = gate.inputs
                values[:, gate.output] = 1 - ((values[:, a] & values[:, b]) | values[:, c])
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unsupported gate kind {kind}")

        outputs: Dict[str, np.ndarray] = {}
        for port, wires in self._ports_out.items():
            codes = np.zeros(samples, dtype=np.int64)
            for bit, wire in enumerate(wires):
                codes |= values[:, wire].astype(np.int64) << bit
            outputs[port] = codes
        if return_wires:
            return outputs, values
        return outputs

    def evaluate_signed(self, inputs: Dict[str, np.ndarray],
                        port: str = "y") -> np.ndarray:
        """Evaluate and reinterpret one output port as two's complement."""
        outputs = self.evaluate(inputs)
        wires = self._ports_out[port]
        width = len(wires)
        codes = np.asarray(outputs[port], dtype=np.int64)
        sign_bit = 1 << (width - 1)
        return (codes ^ sign_bit) - sign_bit

    # ------------------------------------------------------------------ #
    # Structural transformations
    # ------------------------------------------------------------------ #
    def prune_unused(self) -> "Netlist":
        """Remove gates with no path to any primary output.

        This mirrors the fanout-free-cone sweeping a synthesis tool performs
        when some product bits are unused (e.g. truncated multiplier outputs).
        Primary inputs are always kept so the port interface is unchanged.
        """
        needed = set()
        for wires in self._ports_out.values():
            needed.update(wires)
        for gate in reversed(self._gates):
            if gate.output in needed:
                needed.update(gate.inputs)

        pruned = Netlist(self.name, self.technology)
        pruned._register_bits = self._register_bits
        wire_map: Dict[int, int] = {}
        for gate in self._gates:
            keep = gate.kind is GateKind.INPUT or gate.output in needed
            if not keep:
                continue
            new_output = pruned.new_wire()
            wire_map[gate.output] = new_output
            new_inputs = tuple(wire_map[w] for w in gate.inputs)
            pruned._gates.append(Gate(gate.kind, new_output, new_inputs))
        pruned._ports_in = {
            port: [wire_map[w] for w in wires] for port, wires in self._ports_in.items()
        }
        pruned._ports_out = {
            port: [wire_map[w] for w in wires] for port, wires in self._ports_out.items()
        }
        if self._const0 is not None and self._const0 in wire_map:
            pruned._const0 = wire_map[self._const0]
        if self._const1 is not None and self._const1 in wire_map:
            pruned._const1 = wire_map[self._const1]
        return pruned
