"""Operator-to-netlist mapping and hardware characterisation flow.

This module is the equivalent of the left branch of the APXPERF flow
(Figure 2 of the paper): from an operator description it produces a
"synthesised" gate-level netlist, extracts area and timing, simulates the
netlist on random vectors to obtain switching activity, and converts the
activity into power.  The calibration layer then anchors the absolute scale
to the numbers the paper reports for its reference operators.
"""
from __future__ import annotations


import numpy as np

from ..operators.adders import (
    ACAAdder,
    ETAIIAdder,
    ETAIVAdder,
    ExactAdder,
    QuantizedOutputAdder,
    RCAApxAdder,
    RoundedAdder,
)
from ..operators.base import Operator
from ..operators.multipliers import (
    AAMMultiplier,
    ABMMultiplier,
    BoothMultiplier,
    ExactMultiplier,
    QuantizedOutputMultiplier,
)
from .builders import (
    aam_multiplier,
    abm_multiplier,
    aca_adder,
    eta_adder,
    exact_multiplier,
    quantized_output_adder,
    rca_approximate_adder,
    ripple_carry_adder,
)
from .netlist import Netlist
from .power import MonteCarloPowerEstimator
from .report import HardwareReport
from .technology import TechnologyLibrary, TECH_28NM


def build_netlist(operator: Operator, registered: bool = True,
                  technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """Build the structural netlist matching an operator configuration."""
    if isinstance(operator, RCAApxAdder):
        return rca_approximate_adder(operator.input_width, operator.accurate_bits,
                                     operator.approximate_cell, registered, technology)
    if isinstance(operator, ACAAdder):
        return aca_adder(operator.input_width, operator.prediction_bits,
                         registered, technology)
    if isinstance(operator, (ETAIVAdder, ETAIIAdder)):
        return eta_adder(operator.input_width, operator.block_size,
                         operator.speculation_blocks, registered, technology)
    if isinstance(operator, QuantizedOutputAdder):
        rounded = isinstance(operator, RoundedAdder)
        return quantized_output_adder(operator.input_width, operator.output_width,
                                      rounded, registered, technology)
    if isinstance(operator, ExactAdder):
        return ripple_carry_adder(operator.input_width, registered,
                                  technology=technology)
    if isinstance(operator, AAMMultiplier):
        return aam_multiplier(operator.input_width, operator.compensation,
                              registered, technology)
    if isinstance(operator, ABMMultiplier):
        window = operator.carry_window if operator.carry_window is not None \
            else operator.input_width
        return abm_multiplier(operator.input_width, operator.compensation,
                              window, registered, technology)
    if isinstance(operator, QuantizedOutputMultiplier):
        return exact_multiplier(operator.input_width, operator.output_width,
                                strategy="wallace", registered=registered,
                                technology=technology)
    if isinstance(operator, BoothMultiplier):
        return exact_multiplier(operator.input_width, strategy="wallace",
                                registered=registered, technology=technology)
    if isinstance(operator, ExactMultiplier):
        return exact_multiplier(operator.input_width, strategy="wallace",
                                registered=registered, technology=technology)
    raise TypeError(f"no netlist builder registered for {type(operator).__name__}")


def characterize_hardware(operator: Operator, frequency_hz: float = 100e6,
                          samples: int = 1500, calibrated: bool = True,
                          technology: TechnologyLibrary = TECH_28NM,
                          seed: int = 2017) -> HardwareReport:
    """Full hardware characterisation of one operator configuration.

    Returns area, delay and power (hence PDP) for the operator at the given
    clock frequency.  With ``calibrated=True`` (default) the family anchors of
    :mod:`repro.hardware.calibration` are applied so the absolute values are
    directly comparable with the paper's tables.
    """
    netlist = build_netlist(operator, registered=True, technology=technology)
    estimator = MonteCarloPowerEstimator(frequency_hz=frequency_hz,
                                         samples=samples, seed=seed)
    breakdown = estimator.estimate(netlist)
    report = HardwareReport(
        operator=operator.name,
        family=operator.family,
        area_um2=netlist.area_um2(),
        delay_ns=netlist.critical_path_ns(),
        power_mw=breakdown.total_mw,
        leakage_mw=breakdown.leakage_mw,
        frequency_hz=frequency_hz,
        gate_histogram=netlist.gate_histogram(),
        params=dict(operator.params),
        calibrated=False,
    )
    if not calibrated:
        return report
    from .calibration import get_calibration

    calibration = get_calibration(technology=technology, frequency_hz=frequency_hz,
                                  samples=samples, seed=seed)
    return calibration.apply(report)


def verify_netlist_equivalence(operator: Operator, samples: int = 512,
                               seed: int = 7,
                               technology: TechnologyLibrary = TECH_28NM
                               ) -> np.ndarray:
    """APXPERF-style verification: netlist simulation vs functional model.

    Returns the boolean per-sample agreement mask.  Only meaningful for the
    operators whose netlists are built bit-exactly: the exact adder, RCAApx,
    ETAII / ETAIV, the exact and truncated multipliers and AAM.  The
    data-sized adders are charged as narrow datapath adders (their netlist
    operands are already-quantised values), ACA's netlist models the shared
    speculative implementation, and ABM's netlist is a cost model — none of
    those three claim bit-equivalence, and the characterisation never relies
    on it.
    """
    from ..operators.bitops import to_unsigned

    netlist = build_netlist(operator, registered=False, technology=technology)
    rng = np.random.default_rng(seed)
    a, b = operator.random_inputs(samples, rng)

    port_widths = {name: len(wires) for name, wires in netlist.input_ports.items()}
    if port_widths["a"] != operator.input_width:
        raise ValueError(
            f"{operator.name} is charged as a narrower datapath operator; "
            "its netlist is not bit-comparable with the 16-bit functional view"
        )
    stimulus = {
        "a": np.asarray(to_unsigned(a, port_widths["a"]), dtype=np.int64),
        "b": np.asarray(to_unsigned(b, port_widths["b"]), dtype=np.int64),
    }
    simulated = netlist.evaluate_signed(stimulus, port="y")
    expected = operator.compute(a, b)
    return np.asarray(simulated == expected)
