"""Hardware characterisation results."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class HardwareReport:
    """Area / delay / power characterisation of one operator configuration.

    This is the hardware half of an APXPERF characterisation run (the error
    half lives in :class:`repro.metrics.error.ErrorReport`).
    """

    operator: str
    family: str
    area_um2: float
    delay_ns: float
    power_mw: float
    leakage_mw: float
    frequency_hz: float
    gate_histogram: Dict[str, int] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    #: Whether the calibration anchors were applied.
    calibrated: bool = True

    @property
    def pdp_pj(self) -> float:
        """Power-delay product in picojoules (the paper's energy-per-operation)."""
        return self.power_mw * self.delay_ns

    @property
    def energy_per_op_pj(self) -> float:
        """Energy charged per operation in the datapath model (same as PDP)."""
        return self.pdp_pj

    @property
    def energy_per_cycle_pj(self) -> float:
        """Average energy drawn per clock cycle (power / frequency)."""
        if self.frequency_hz <= 0:
            return 0.0
        return self.power_mw * 1e-3 / self.frequency_hz * 1e12

    @property
    def gate_count(self) -> int:
        """Total number of cells (registers included)."""
        return int(sum(self.gate_histogram.values()))

    def scaled(self, area: float = 1.0, delay: float = 1.0,
               power: float = 1.0) -> "HardwareReport":
        """Return a copy with the headline metrics scaled (calibration)."""
        return HardwareReport(
            operator=self.operator,
            family=self.family,
            area_um2=self.area_um2 * area,
            delay_ns=self.delay_ns * delay,
            power_mw=self.power_mw * power,
            leakage_mw=self.leakage_mw * power,
            frequency_hz=self.frequency_hz,
            gate_histogram=dict(self.gate_histogram),
            params=dict(self.params),
            calibrated=True,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialisable summary (used by the experiment result files).

        Together with :meth:`from_dict` this round-trips the full report,
        which is how the persistent result store rehydrates hardware
        characterisations across sessions.
        """
        return {
            "operator": self.operator,
            "family": self.family,
            "area_um2": self.area_um2,
            "delay_ns": self.delay_ns,
            "power_mw": self.power_mw,
            "pdp_pj": self.pdp_pj,
            "leakage_mw": self.leakage_mw,
            "frequency_hz": self.frequency_hz,
            "gate_count": self.gate_count,
            "gate_histogram": dict(self.gate_histogram),
            "params": dict(self.params),
            "calibrated": self.calibrated,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> Optional["HardwareReport"]:
        """Rehydrate a report from :meth:`to_dict` output.

        Returns ``None`` (a cache miss, never an exception) when the
        payload is structurally unusable — e.g. a truncated or hand-edited
        store record.
        """
        try:
            return cls(
                operator=str(data["operator"]),
                family=str(data["family"]),
                area_um2=float(data["area_um2"]),          # type: ignore[arg-type]
                delay_ns=float(data["delay_ns"]),          # type: ignore[arg-type]
                power_mw=float(data["power_mw"]),          # type: ignore[arg-type]
                leakage_mw=float(data["leakage_mw"]),      # type: ignore[arg-type]
                frequency_hz=float(data["frequency_hz"]),  # type: ignore[arg-type]
                gate_histogram={str(gate): int(count)      # type: ignore[arg-type]
                                for gate, count
                                in dict(data.get("gate_histogram", {})).items()},
                params=dict(data.get("params", {})),       # type: ignore[arg-type]
                calibrated=bool(data.get("calibrated", True)),
            )
        except (KeyError, TypeError, ValueError):
            return None
