"""Generic standard-cell technology description.

The paper characterises every operator with a commercial 28nm FDSOI library
through Design Compiler / ModelSim / PrimeTime.  That flow is not available
here, so the hardware model uses a small generic cell library whose per-gate
area, delay, switching energy and leakage are of the right order of magnitude
for a 28nm node.  Absolute accuracy is *not* claimed at this level; the
calibration layer (:mod:`repro.hardware.calibration`) anchors the final
operator-level numbers to the values published in the paper, and the
structural netlists provide the relative differences between operators.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict


class GateKind(str, Enum):
    """Primitive cells used by the structural netlists."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND2 = "and2"
    OR2 = "or2"
    NAND2 = "nand2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    MUX2 = "mux2"
    MAJ3 = "maj3"
    AOI21 = "aoi21"
    DFF = "dff"


@dataclass(frozen=True)
class CellParameters:
    """Physical characteristics of one primitive cell."""

    area_um2: float
    delay_ns: float
    switch_energy_fj: float
    leakage_nw: float


@dataclass(frozen=True)
class TechnologyLibrary:
    """A complete cell library plus global operating assumptions."""

    name: str
    cells: Dict[GateKind, CellParameters] = field(default_factory=dict)
    #: Nominal supply voltage (V); kept for documentation and scaling studies.
    vdd: float = 1.0
    #: Default clock frequency (Hz) used for power figures, as in the paper.
    default_frequency_hz: float = 100e6

    def cell(self, kind: GateKind) -> CellParameters:
        """Parameters of a cell kind (INPUT/CONST pseudo-cells are free)."""
        if kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
            return CellParameters(0.0, 0.0, 0.0, 0.0)
        if kind not in self.cells:
            raise KeyError(f"technology {self.name!r} has no cell {kind.value!r}")
        return self.cells[kind]

    def area(self, kind: GateKind) -> float:
        return self.cell(kind).area_um2

    def delay(self, kind: GateKind) -> float:
        return self.cell(kind).delay_ns

    def switch_energy(self, kind: GateKind) -> float:
        return self.cell(kind).switch_energy_fj

    def leakage(self, kind: GateKind) -> float:
        return self.cell(kind).leakage_nw

    def scaled(self, area: float = 1.0, delay: float = 1.0, energy: float = 1.0,
               leakage: float = 1.0, name: str | None = None) -> "TechnologyLibrary":
        """Return a copy with every cell parameter scaled (what-if studies)."""
        cells = {
            kind: CellParameters(
                area_um2=p.area_um2 * area,
                delay_ns=p.delay_ns * delay,
                switch_energy_fj=p.switch_energy_fj * energy,
                leakage_nw=p.leakage_nw * leakage,
            )
            for kind, p in self.cells.items()
        }
        return TechnologyLibrary(name=name or f"{self.name}-scaled", cells=cells,
                                 vdd=self.vdd,
                                 default_frequency_hz=self.default_frequency_hz)


def _default_cells() -> Dict[GateKind, CellParameters]:
    """A 28nm-flavoured generic library.

    Areas are in the 0.3-2 um^2 range typical of a 28nm standard-cell library,
    delays in tens of picoseconds, switching energies of a fraction of a
    femtojoule per output transition, and leakage of a few nanowatts.
    """
    return {
        GateKind.BUF: CellParameters(0.33, 0.016, 0.35, 1.2),
        GateKind.NOT: CellParameters(0.26, 0.010, 0.28, 1.0),
        GateKind.AND2: CellParameters(0.46, 0.022, 0.55, 1.6),
        GateKind.OR2: CellParameters(0.46, 0.022, 0.55, 1.6),
        GateKind.NAND2: CellParameters(0.39, 0.014, 0.42, 1.4),
        GateKind.NOR2: CellParameters(0.39, 0.016, 0.42, 1.4),
        GateKind.XOR2: CellParameters(0.72, 0.030, 0.90, 2.4),
        GateKind.XNOR2: CellParameters(0.72, 0.030, 0.90, 2.4),
        GateKind.MUX2: CellParameters(0.66, 0.026, 0.75, 2.0),
        GateKind.MAJ3: CellParameters(0.79, 0.028, 0.85, 2.4),
        GateKind.AOI21: CellParameters(0.52, 0.020, 0.55, 1.7),
        GateKind.DFF: CellParameters(1.70, 0.060, 1.60, 4.5),
    }


#: Default library used by every experiment (28nm-flavoured generic cells).
TECH_28NM = TechnologyLibrary(name="generic-28nm", cells=_default_cells(),
                              vdd=1.0, default_frequency_hz=100e6)
