"""Calibration of the structural cost model against the paper's anchors.

The structural netlists capture the *relative* differences between operator
architectures (cell counts, carry-chain lengths, tree depths, register
widths), but the absolute scale of a generic gate library cannot match a
commercial 28nm FDSOI flow.  The calibration layer fixes that by computing,
once per technology/frequency, a per-family scale factor for area, delay and
power such that the reference operators land exactly on the values published
in the paper:

* the accurate 16-bit adder — read off Figure 3 of the paper
  (approximately 215 um^2, 0.45 ns, 0.047 mW at 100 MHz);
* the truncated fixed-width 16x16 multiplier ``MULt(16,16)`` — Table I
  (805.2 um^2, 0.91 ns, 0.273 mW at 100 MHz).

Every other operator of the same family is scaled by the same factors, so the
comparisons (which operator wins, by roughly what factor) are produced by the
structural model, not by the calibration.
"""
from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from .report import HardwareReport
from .technology import TechnologyLibrary, TECH_28NM


@dataclass(frozen=True)
class ReferencePoint:
    """Published characterisation of a reference operator."""

    area_um2: float
    delay_ns: float
    power_mw: float


#: Anchors taken from the paper (DATE 2017, Table I and Figure 3).
PAPER_REFERENCES: Dict[str, ReferencePoint] = {
    "adder": ReferencePoint(area_um2=215.0, delay_ns=0.45, power_mw=0.047),
    "multiplier": ReferencePoint(area_um2=805.2, delay_ns=0.91, power_mw=0.273),
}


@dataclass(frozen=True)
class FamilyScale:
    """Multiplicative correction applied to one operator family."""

    area: float
    delay: float
    power: float


@dataclass(frozen=True)
class Calibration:
    """Set of per-family scale factors."""

    scales: Dict[str, FamilyScale]

    def scale_for(self, family: str) -> FamilyScale:
        if family not in self.scales:
            raise KeyError(f"no calibration available for family {family!r}")
        return self.scales[family]

    def apply(self, report: HardwareReport) -> HardwareReport:
        """Return a calibrated copy of a raw hardware report."""
        scale = self.scale_for(report.family)
        return report.scaled(area=scale.area, delay=scale.delay, power=scale.power)


def compute_calibration(technology: TechnologyLibrary = TECH_28NM,
                        frequency_hz: float = 100e6, samples: int = 1500,
                        seed: int = 2017) -> Calibration:
    """Characterise the reference operators and derive the family scales."""
    from ..operators.adders import ExactAdder
    from ..operators.multipliers import TruncatedMultiplier
    from .synthesis import characterize_hardware

    references = {
        "adder": ExactAdder(16),
        "multiplier": TruncatedMultiplier(16, 16),
    }
    scales: Dict[str, FamilyScale] = {}
    for family, operator in references.items():
        raw = characterize_hardware(operator, frequency_hz=frequency_hz,
                                    samples=samples, calibrated=False,
                                    technology=technology, seed=seed)
        target = PAPER_REFERENCES[family]
        scales[family] = FamilyScale(
            area=target.area_um2 / raw.area_um2,
            delay=target.delay_ns / raw.delay_ns,
            power=target.power_mw / raw.power_mw,
        )
    return Calibration(scales=scales)


@lru_cache(maxsize=8)
def _cached_calibration(technology_name: str, frequency_hz: float, samples: int,
                        seed: int) -> Calibration:
    technology = TECH_28NM if technology_name == TECH_28NM.name else None
    if technology is None:
        raise ValueError(
            "calibration caching only supports the default technology; "
            "call compute_calibration() directly for custom libraries"
        )
    return compute_calibration(technology, frequency_hz, samples, seed)


def get_calibration(technology: TechnologyLibrary = TECH_28NM,
                    frequency_hz: float = 100e6, samples: int = 1500,
                    seed: int = 2017) -> Calibration:
    """Cached calibration lookup (the default technology is memoised)."""
    if technology.name == TECH_28NM.name:
        return _cached_calibration(technology.name, frequency_hz, samples, seed)
    return compute_calibration(technology, frequency_hz, samples, seed)
