"""Hardware cost model (the synthesis / simulation / power side of APXPERF).

This package substitutes for the paper's Design Compiler + ModelSim +
PrimeTime flow: structural gate-level netlists are built for every operator,
area and critical path are extracted from the netlist, switching activity is
obtained by simulating the netlist on random vectors, and the resulting power
is calibrated against the reference points published in the paper.
"""
from .builders import (
    aam_multiplier,
    abm_multiplier,
    aca_adder,
    eta_adder,
    exact_multiplier,
    quantized_output_adder,
    rca_approximate_adder,
    ripple_carry_adder,
)
from .calibration import (
    Calibration,
    FamilyScale,
    PAPER_REFERENCES,
    ReferencePoint,
    compute_calibration,
    get_calibration,
)
from .netlist import Gate, Netlist
from .power import (
    MonteCarloPowerEstimator,
    PowerBreakdown,
    ProbabilisticPowerEstimator,
)
from .report import HardwareReport
from .synthesis import build_netlist, characterize_hardware, verify_netlist_equivalence
from .technology import CellParameters, GateKind, TECH_28NM, TechnologyLibrary

__all__ = [
    "GateKind",
    "CellParameters",
    "TechnologyLibrary",
    "TECH_28NM",
    "Gate",
    "Netlist",
    "HardwareReport",
    "PowerBreakdown",
    "MonteCarloPowerEstimator",
    "ProbabilisticPowerEstimator",
    "ripple_carry_adder",
    "quantized_output_adder",
    "rca_approximate_adder",
    "eta_adder",
    "aca_adder",
    "exact_multiplier",
    "aam_multiplier",
    "abm_multiplier",
    "build_netlist",
    "characterize_hardware",
    "verify_netlist_equivalence",
    "ReferencePoint",
    "FamilyScale",
    "Calibration",
    "PAPER_REFERENCES",
    "compute_calibration",
    "get_calibration",
]
