"""Gate-level netlist builders for the multiplier operators.

The signed partial-product grid uses the Baugh-Wooley formulation, so the
exact multiplier, the truncated fixed-width multiplier and AAM are built
bit-exactly and verified against the functional models in the test-suite.

Two reduction strategies are provided:

* ``wallace`` — column-wise Dadda/Wallace 3:2 reduction followed by a final
  carry-propagate adder.  This stands in for the optimised (DesignWare-like)
  multiplier a synthesis tool produces for the plain ``a * b`` description,
  i.e. the hardware behind ``MULt`` / ``MULr``.
* ``array`` — sequential row-by-row ripple accumulation, the structure of the
  classical array multiplier that AAM is derived from.  It is deeper and
  glitchier, which is part of why AAM ends up costing more energy than the
  truncated multiplier despite having fewer cells.

The ABM builder is a *cost* model (cell inventory and critical path follow
the pruned modified-Booth architecture with its encoders and the approximate
redundant-to-binary conversion); bit-equivalence with the functional ABM
model is not claimed and not used anywhere.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

from ..netlist import Netlist
from ..technology import GateKind, TechnologyLibrary, TECH_28NM

Columns = Dict[int, List[int]]


def _register_io(netlist: Netlist, input_bits: int, output_bits: int) -> None:
    netlist.add_register_bits(input_bits + output_bits)


# --------------------------------------------------------------------------- #
# Partial-product generation (Baugh-Wooley, signed)
# --------------------------------------------------------------------------- #
def _baugh_wooley_columns(netlist: Netlist, a: List[int], b: List[int],
                          width: int, min_column: int = 0) -> Columns:
    """Signed partial-product grid as a column -> wire-list mapping.

    Columns below ``min_column`` are not generated at all (pruned designs).
    The returned grid, once summed with the column weights, equals the
    two's-complement product modulo ``2**(2 * width)``.
    """
    n = width
    columns: Columns = {c: [] for c in range(2 * n)}

    def put(column: int, wire: int) -> None:
        if column >= min_column:
            columns[column].append(wire)

    for i in range(n - 1):
        for j in range(n - 1):
            if i + j < min_column:
                continue
            put(i + j, netlist.add_gate(GateKind.AND2, a[i], b[j]))
    for j in range(n - 1):
        if n - 1 + j >= min_column:
            cell = netlist.add_gate(GateKind.NAND2, a[n - 1], b[j])
            put(n - 1 + j, cell)
    for i in range(n - 1):
        if n - 1 + i >= min_column:
            cell = netlist.add_gate(GateKind.NAND2, a[i], b[n - 1])
            put(n - 1 + i, cell)
    put(2 * n - 2, netlist.add_gate(GateKind.AND2, a[n - 1], b[n - 1]))
    # Correction constants of the Baugh-Wooley decomposition.
    put(n, netlist.const(1))
    put(2 * n - 1, netlist.const(1))
    return columns


# --------------------------------------------------------------------------- #
# Column reduction strategies
# --------------------------------------------------------------------------- #
def _reduce_columns_wallace(netlist: Netlist, columns: Columns,
                            total_width: int) -> List[int]:
    """Dadda-style 3:2 reduction, then a final ripple carry-propagate adder."""
    cols = {c: list(wires) for c, wires in columns.items()}
    while any(len(wires) > 2 for wires in cols.values()):
        next_cols: Columns = {c: [] for c in range(total_width)}
        for c in range(total_width):
            wires = cols.get(c, [])
            index = 0
            while len(wires) - index >= 3:
                s, carry = netlist.full_adder(wires[index], wires[index + 1],
                                              wires[index + 2])
                next_cols[c].append(s)
                if c + 1 < total_width:
                    next_cols[c + 1].append(carry)
                index += 3
            if len(wires) - index == 2:
                s, carry = netlist.half_adder(wires[index], wires[index + 1])
                next_cols[c].append(s)
                if c + 1 < total_width:
                    next_cols[c + 1].append(carry)
                index += 2
            next_cols[c].extend(wires[index:])
        cols = next_cols
    return _final_adder_prefix(netlist, cols, total_width)


def _reduce_columns_array(netlist: Netlist, columns: Columns,
                          total_width: int) -> List[int]:
    """Sequential (ripple) accumulation, the structure of an array multiplier."""
    cols = {c: list(wires) for c, wires in columns.items()}
    while any(len(wires) > 2 for wires in cols.values()):
        next_cols: Columns = {c: [] for c in range(total_width)}
        for c in range(total_width):
            wires = cols.get(c, [])
            if len(wires) >= 3:
                s, carry = netlist.full_adder(wires[0], wires[1], wires[2])
                next_cols[c].append(s)
                if c + 1 < total_width:
                    next_cols[c + 1].append(carry)
                next_cols[c].extend(wires[3:])
            else:
                next_cols[c].extend(wires)
        cols = next_cols
    return _final_adder(netlist, cols, total_width)


def _two_rows(netlist: Netlist, cols: Columns,
              total_width: int) -> Tuple[List[int], List[int]]:
    """Pad the two remaining rows of a reduced grid with constant zeros."""
    row_x: List[int] = []
    row_y: List[int] = []
    for c in range(total_width):
        wires = cols.get(c, [])
        row_x.append(wires[0] if len(wires) >= 1 else netlist.const(0))
        row_y.append(wires[1] if len(wires) >= 2 else netlist.const(0))
    return row_x, row_y


def _final_adder(netlist: Netlist, cols: Columns, total_width: int) -> List[int]:
    """Ripple carry-propagate addition of the two remaining rows."""
    row_x, row_y = _two_rows(netlist, cols, total_width)
    outputs: List[int] = []
    carry = netlist.const(0)
    for x, y in zip(row_x, row_y):
        s, carry = netlist.full_adder(x, y, carry)
        outputs.append(s)
    return outputs


def _final_adder_prefix(netlist: Netlist, cols: Columns,
                        total_width: int) -> List[int]:
    """Sklansky parallel-prefix addition of the two remaining rows.

    This is what a synthesis tool produces for the final carry-propagate
    adder of an optimised multiplier: logarithmic depth and well balanced
    arrival times (hence little glitching), at the price of extra prefix
    cells.
    """
    import math

    row_x, row_y = _two_rows(netlist, cols, total_width)
    generate = [netlist.add_gate(GateKind.AND2, x, y) for x, y in zip(row_x, row_y)]
    propagate = [netlist.add_gate(GateKind.XOR2, x, y) for x, y in zip(row_x, row_y)]

    g = list(generate)
    p = list(propagate)
    levels = max(1, math.ceil(math.log2(max(total_width, 2))))
    for level in range(levels):
        span = 1 << level
        new_g = list(g)
        new_p = list(p)
        for i in range(span, total_width):
            j = i - span
            and_term = netlist.add_gate(GateKind.AND2, p[i], g[j])
            new_g[i] = netlist.add_gate(GateKind.OR2, g[i], and_term)
            new_p[i] = netlist.add_gate(GateKind.AND2, p[i], p[j])
        g, p = new_g, new_p

    outputs: List[int] = [propagate[0]]
    for i in range(1, total_width):
        outputs.append(netlist.add_gate(GateKind.XOR2, propagate[i], g[i - 1]))
    return outputs


# --------------------------------------------------------------------------- #
# Complete multipliers
# --------------------------------------------------------------------------- #
def exact_multiplier(width: int, output_width: int | None = None,
                     strategy: str = "wallace", registered: bool = True,
                     technology: TechnologyLibrary = TECH_28NM,
                     name: str | None = None) -> Netlist:
    """Signed ``width`` x ``width`` multiplier keeping the top ``output_width`` bits.

    With ``output_width`` below ``2 * width`` the result is the truncated
    fixed-width multiplier (``MULt``): the full grid is still generated —
    the dropped LSBs need their carries — but the logic cone feeding only the
    removed outputs is swept away, exactly as a synthesis tool would.
    """
    total = 2 * width
    out = total if output_width is None else int(output_width)
    if not 2 <= out <= total:
        raise ValueError("output width must lie in [2, 2 * width]")
    netlist = Netlist(name or f"mul{strategy}_{width}_{out}", technology)
    a = netlist.add_input_port("a", width)
    b = netlist.add_input_port("b", width)
    columns = _baugh_wooley_columns(netlist, a, b, width)
    if strategy == "wallace":
        product = _reduce_columns_wallace(netlist, columns, total)
    elif strategy == "array":
        product = _reduce_columns_array(netlist, columns, total)
    else:
        raise ValueError(f"unknown reduction strategy {strategy!r}")
    netlist.set_output_port("y", product[total - out:])
    pruned = netlist.prune_unused()
    if registered:
        _register_io(pruned, 2 * width, out)
    return pruned


def aam_multiplier(width: int, compensation: bool = True, registered: bool = True,
                   technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """AAM: pruned Baugh-Wooley array with diagonal carry compensation.

    The grid below column ``width - 1`` is never generated; the diagonal AND
    terms feed a small counter whose halved value (plus the grid-pruning
    correction constant) is injected at column ``width``.  The reduction uses
    the array (ripple) strategy of the original design.
    """
    n = width
    netlist = Netlist(f"aam_{n}" + ("" if compensation else "_nocomp"), technology)
    a = netlist.add_input_port("a", n)
    b = netlist.add_input_port("b", n)

    # Kept half of the grid, re-indexed so local column 0 is product column n.
    full_columns = _baugh_wooley_columns(netlist, a, b, n, min_column=n)
    columns: Columns = {c: [] for c in range(n)}
    for column, wires in full_columns.items():
        local = column - n
        if 0 <= local < n:
            columns[local].extend(wires)

    if compensation:
        # Diagonal AND terms a_i & b_{n-1-i}; their count, halved (rounded up),
        # estimates the carries the pruned triangle would have produced.
        diagonal = [netlist.add_gate(GateKind.AND2, a[i], b[n - 1 - i]) for i in range(n)]
        count_wires = _popcount(netlist, diagonal)
        # ceil(count / 2) == (count + 1) >> 1: add one then drop the LSB.
        incremented = _increment(netlist, count_wires)
        for offset, wire in enumerate(incremented[1:]):
            if offset < n:
                columns[offset].append(wire)
    # Pruning the two complemented column-(n-1) cells removes an extra
    # (2 - ...) * 2^(n-1) with respect to the signed cell decomposition; the
    # net correction is one unit at column n (local column 0).
    columns[0].append(netlist.const(1))

    product = _reduce_columns_array(netlist, columns, n)
    netlist.set_output_port("y", product)
    pruned = netlist.prune_unused()
    if registered:
        _register_io(pruned, 2 * n, n)
    return pruned


def _popcount(netlist: Netlist, wires: List[int]) -> List[int]:
    """Counter tree summing single-bit wires; returns the count, LSB first."""
    columns: Columns = {0: list(wires)}
    width = max(1, len(wires)).bit_length()
    for c in range(width + 1):
        columns.setdefault(c, [])
    result = _reduce_columns_wallace(netlist, columns, width + 1)
    return result


def _increment(netlist: Netlist, wires: List[int]) -> List[int]:
    """Add one to a small unsigned value (half-adder chain)."""
    carry = netlist.const(1)
    outputs = []
    for wire in wires:
        s, carry = netlist.half_adder(wire, carry)
        outputs.append(s)
    outputs.append(carry)
    return outputs


def abm_multiplier(width: int, compensation: bool = True, carry_window: int = 4,
                   registered: bool = True,
                   technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """ABM cost model: pruned radix-4 modified-Booth fixed-width multiplier.

    Cell inventory per the published architecture: one Booth encoder per pair
    of multiplier bits, one selector cell (mux + conditional inversion) per
    kept partial-product bit, a 3:2 compressor tree over the kept columns,
    the column compensation and a limited-carry final conversion.  The
    structure is wired so the critical path is representative (encoder →
    selector → log-depth tree → windowed conversion); the netlist is used for
    area / delay / power only.
    """
    n = width
    rows = (n + 1) // 2
    netlist = Netlist(f"abm_{n}" + ("" if compensation else "_nocomp"), technology)
    a = netlist.add_input_port("a", n)
    b = netlist.add_input_port("b", n)

    columns: Columns = {c: [] for c in range(n + 1)}
    for k in range(rows):
        low = 2 * k
        mid = min(2 * k + 1, n - 1)
        prev = 2 * k - 1
        prev_wire = b[prev] if prev >= 0 else netlist.const(0)
        # Booth encoder: produces the one/two/negate controls for the row.
        one = netlist.add_gate(GateKind.XOR2, b[low], prev_wire)
        two_a = netlist.add_gate(GateKind.XNOR2, b[mid], b[low])
        two = netlist.add_gate(GateKind.NOR2, two_a, one)
        neg = netlist.add_gate(GateKind.AND2, b[mid], one)

        # Selector cells for the kept columns of this row.  Row k spans
        # product columns 2k .. 2k + n; only columns >= n - 1 are kept.
        first_kept = max(n - 1, 2 * k)
        for column in range(first_kept, n + 1 + 2 * k):
            src = min(max(column - 2 * k, 0), n - 1)
            shifted = a[src - 1] if src >= 1 else netlist.const(0)
            selected = netlist.add_gate(GateKind.MUX2, two, a[src], shifted)
            cell = netlist.add_gate(GateKind.XOR2, selected, neg)
            local = column - n
            if 0 <= local <= n:
                columns[local].append(cell)
        # Compensation input: the most significant bit of the dropped part.
        if compensation and 2 * k < n - 1:
            src = min(n - 1 - 2 * k, n - 1)
            comp_cell = netlist.add_gate(GateKind.AND2, a[src], one)
            columns[0].append(comp_cell)

        # Sign-extension handling of the row inside the kept grid (the Booth
        # rows are signed) and the two's-complement "+1" correction of
        # negated rows: constant-weight overhead cells of the architecture.
        sign = netlist.add_gate(GateKind.XOR2, a[n - 1], neg)
        ext1 = netlist.add_gate(GateKind.NOT, sign)
        ext2 = netlist.add_gate(GateKind.XNOR2, sign, two)
        columns[n].append(ext1)
        columns[min(n, n - 1)].append(ext2)
        correction = netlist.add_gate(GateKind.AND2, neg, one)
        columns[0].append(correction)

    reduced = _reduce_columns_wallace(netlist, columns, n + 1)

    # Redundant-binary decoder stage (carried in the design even though its
    # latency can be hidden downstream): one XOR + one AND per output bit.
    decoded: List[int] = []
    for i in range(n + 1):
        borrow = netlist.add_gate(GateKind.AND2, reduced[i],
                                  reduced[max(i - 1, 0)])
        decoded.append(netlist.add_gate(GateKind.XOR2, reduced[i], borrow))
    reduced = decoded

    # Approximate redundant-to-binary conversion: the two final vectors are
    # combined with a bounded carry window instead of a full carry chain.
    outputs: List[int] = []
    for i in range(n):
        carry = netlist.const(0)
        for j in range(max(0, i - carry_window), i):
            other = reduced[j - 1] if j > 0 else netlist.const(0)
            carry = netlist.add_gate(GateKind.MAJ3, reduced[j], other, carry)
        outputs.append(netlist.add_gate(GateKind.XOR2, reduced[i], carry))
    netlist.set_output_port("y", outputs)
    pruned = netlist.prune_unused()
    if registered:
        _register_io(pruned, 2 * n, n)
    return pruned
