"""Gate-level netlist builders for the adder operators.

Each builder returns a :class:`~repro.hardware.netlist.Netlist` whose
structure follows the published architecture of the corresponding operator.
The ripple-carry family (accurate, truncated, rounded adders) and RCAApx and
the error-tolerant adders (ETAII / ETAIV) are built bit-exactly — the netlist
simulation reproduces the functional model and is cross-checked in the
test-suite, mirroring APXPERF's VHDL-vs-C verification step.  The ACA netlist
models the *shared* speculative-carry implementation of Verma et al. (a
windowed prefix structure); its cost and critical path follow that
architecture but bit-equivalence with the per-bit functional window is not
claimed (the sharing slightly widens some speculation windows).

Every builder optionally wraps the combinational core with input and output
registers (``registered=True``), which is how the paper characterises the
operators: the operands always arrive on full-width registers, while the
output register is only as wide as the operator's output — this is precisely
where careful data sizing starts saving energy.
"""
from __future__ import annotations

from typing import List, Tuple

from ...operators.adders.rcaapx import EXACT_FA, FullAdderTruthTable
from ..netlist import Netlist
from ..technology import GateKind, TechnologyLibrary, TECH_28NM


def _register_io(netlist: Netlist, input_bits: int, output_bits: int) -> None:
    netlist.add_register_bits(input_bits + output_bits)


def ripple_carry_adder(width: int, registered: bool = True,
                       registered_input_width: int | None = None,
                       technology: TechnologyLibrary = TECH_28NM,
                       name: str | None = None) -> Netlist:
    """Accurate ``width``-bit ripple-carry adder (modular sum, no carry out).

    ``registered_input_width`` allows charging full-width input registers even
    when the adder core is narrower (the truncated/rounded operators), which
    reflects the paper's characterisation harness.
    """
    netlist = Netlist(name or f"rca{width}", technology)
    a = netlist.add_input_port("a", width)
    b = netlist.add_input_port("b", width)
    carry = netlist.const(0)
    sums: List[int] = []
    for i in range(width):
        s, carry = netlist.full_adder(a[i], b[i], carry)
        sums.append(s)
    netlist.set_output_port("y", sums)
    if registered:
        in_width = registered_input_width if registered_input_width is not None else width
        _register_io(netlist, 2 * in_width, width)
    return netlist


def quantized_output_adder(input_width: int, output_width: int,
                           rounded: bool = False, registered: bool = True,
                           technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """Hardware model of ``ADDt`` / ``ADDr``.

    In a carefully sized datapath the LSBs are eliminated at the producer's
    output, so the physical adder is ``output_width`` bits wide.  The rounded
    variant additionally carries the half-LSB increment, modelled as a
    half-adder chain on the result.
    """
    suffix = "r" if rounded else "t"
    core_width = output_width
    netlist = Netlist(f"add{suffix}_{input_width}_{output_width}", technology)
    a = netlist.add_input_port("a", core_width)
    b = netlist.add_input_port("b", core_width)
    carry = netlist.const(1) if rounded else netlist.const(0)
    sums: List[int] = []
    for i in range(core_width):
        s, carry = netlist.full_adder(a[i], b[i], carry)
        sums.append(s)
    netlist.set_output_port("y", sums)
    if registered:
        _register_io(netlist, 2 * input_width, output_width)
    return netlist


def rca_approximate_adder(input_width: int, accurate_bits: int,
                          cell: FullAdderTruthTable,
                          registered: bool = True,
                          technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """RCAApx: approximate full-adder cells on the LSBs, accurate MSB part.

    The approximate cells are mapped to simple gate realisations of their
    truth tables; the three supported types cost at most a couple of gates
    each, which is what makes the LSB part cheap.
    """
    approximate_bits = input_width - accurate_bits
    netlist = Netlist(f"rcaapx_{input_width}_{accurate_bits}_{cell.name}", technology)
    a = netlist.add_input_port("a", input_width)
    b = netlist.add_input_port("b", input_width)
    carry = netlist.const(0)
    sums: List[int] = []
    for i in range(input_width):
        if i < approximate_bits:
            s, carry = _approximate_cell(netlist, cell, a[i], b[i], carry)
        else:
            s, carry = netlist.full_adder(a[i], b[i], carry)
        sums.append(s)
    netlist.set_output_port("y", sums)
    if registered:
        _register_io(netlist, 2 * input_width, input_width)
    return netlist


def _approximate_cell(netlist: Netlist, cell: FullAdderTruthTable,
                      a: int, b: int, cin: int) -> Tuple[int, int]:
    """Gate realisation of the supported approximate full-adder cells."""
    if cell.name == "ApproxFA1":
        # Exact carry; sum simplified to mux(a, b | cin, b & cin), which is
        # the gate form of the type-1 truth table (wrong only for 011 / 100).
        carry = netlist.add_gate(GateKind.MAJ3, a, b, cin)
        any_low = netlist.add_gate(GateKind.OR2, b, cin)
        both_low = netlist.add_gate(GateKind.AND2, b, cin)
        s = netlist.add_gate(GateKind.MUX2, a, any_low, both_low)
        return s, carry
    if cell.name == "ApproxFA2":
        # Carry = a OR b, sum = NOT carry.
        carry = netlist.add_gate(GateKind.OR2, a, b)
        s = netlist.add_gate(GateKind.NOT, carry)
        return s, carry
    if cell.name == "ApproxFA3":
        # Carry chain cut: carry = a, sum = b (wiring only).
        s = netlist.add_gate(GateKind.BUF, b)
        carry = netlist.add_gate(GateKind.BUF, a)
        return s, carry
    if cell.name == EXACT_FA.name:
        return netlist.full_adder(a, b, cin)
    raise ValueError(f"no gate mapping for approximate cell {cell.name!r}")


def eta_adder(input_width: int, block_size: int, speculation_blocks: int = 2,
              registered: bool = True,
              technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """ETAII (``speculation_blocks=1``) / ETAIV (``speculation_blocks=2``).

    Structure: one ``block_size``-bit ripple adder per block for the local
    sums, plus one carry generator per non-LSB block spanning the previous
    ``speculation_blocks`` blocks (a carry chain without sum outputs).
    """
    if input_width % block_size != 0:
        raise ValueError("input width must be a multiple of the block size")
    blocks = input_width // block_size
    kind = "etaiv" if speculation_blocks == 2 else "etaii"
    netlist = Netlist(f"{kind}_{input_width}_{block_size}", technology)
    a = netlist.add_input_port("a", input_width)
    b = netlist.add_input_port("b", input_width)

    sums: List[int] = [0] * input_width
    for k in range(blocks):
        if k == 0:
            carry = netlist.const(0)
        else:
            first = max(0, k - speculation_blocks)
            carry = netlist.const(0)
            for pos in range(first * block_size, k * block_size):
                # Carry generator cell: only the carry output of a full adder.
                carry = netlist.add_gate(GateKind.MAJ3, a[pos], b[pos], carry)
        for i in range(block_size):
            pos = k * block_size + i
            s, carry = netlist.full_adder(a[pos], b[pos], carry)
            sums[pos] = s
    netlist.set_output_port("y", sums)
    if registered:
        _register_io(netlist, 2 * input_width, input_width)
    return netlist


def aca_adder(input_width: int, prediction_bits: int, registered: bool = True,
              technology: TechnologyLibrary = TECH_28NM) -> Netlist:
    """ACA cost model: shared windowed-speculation implementation.

    The Verma et al. implementation shares the speculative carry logic between
    neighbouring output bits through a truncated prefix structure.  The model
    instantiates, per bit: a propagate/generate pair, ``ceil(log2(P + 1))``
    prefix-merge levels (one AOI cell plus one AND cell each), and the final
    sum XOR.  The critical path therefore grows with ``log2(P)`` instead of
    the operand width, which is the whole point of the design.
    """
    import math

    netlist = Netlist(f"aca_{input_width}_{prediction_bits}", technology)
    a = netlist.add_input_port("a", input_width)
    b = netlist.add_input_port("b", input_width)

    generate = [netlist.add_gate(GateKind.AND2, a[i], b[i]) for i in range(input_width)]
    propagate = [netlist.add_gate(GateKind.XOR2, a[i], b[i]) for i in range(input_width)]

    levels = max(1, math.ceil(math.log2(prediction_bits + 1)))
    carries: List[int] = list(generate)
    for level in range(levels):
        span = 1 << level
        next_carries: List[int] = []
        for i in range(input_width):
            if i >= span:
                merged_and = netlist.add_gate(GateKind.AND2, propagate[i], carries[i - span])
                merged = netlist.add_gate(GateKind.OR2, carries[i], merged_and)
                next_carries.append(merged)
            else:
                next_carries.append(carries[i])
        carries = next_carries

    sums: List[int] = []
    zero = netlist.const(0)
    for i in range(input_width):
        cin = carries[i - 1] if i > 0 else zero
        sums.append(netlist.add_gate(GateKind.XOR2, propagate[i], cin))
    netlist.set_output_port("y", sums)
    if registered:
        _register_io(netlist, 2 * input_width, input_width)
    return netlist
