"""Structural netlist builders for the operator families."""
from .adders import (
    aca_adder,
    eta_adder,
    quantized_output_adder,
    rca_approximate_adder,
    ripple_carry_adder,
)
from .multipliers import aam_multiplier, abm_multiplier, exact_multiplier

__all__ = [
    "ripple_carry_adder",
    "quantized_output_adder",
    "rca_approximate_adder",
    "eta_adder",
    "aca_adder",
    "exact_multiplier",
    "aam_multiplier",
    "abm_multiplier",
]
