"""Activity-based power estimation on gate-level netlists.

Two estimators are provided, mirroring the two classical EDA approaches:

* :class:`MonteCarloPowerEstimator` — simulate the netlist on a stream of
  random vectors, count output toggles per gate, and convert the switching
  activity into dynamic power.  This is the equivalent of the paper's
  gate-level simulation (ModelSim activity file) feeding PrimeTime.
* :class:`ProbabilisticPowerEstimator` — propagate static signal
  probabilities through the netlist assuming spatial/temporal independence
  and derive the transition density analytically.  Cheaper, used as a
  cross-check and for very large sweeps.

Both include a glitch estimate driven by the *arrival-time skew* of each
gate's inputs: a gate whose inputs settle at very different times produces
spurious transitions before reaching its final value.  Ripple/array
structures (long unbalanced carry chains, e.g. the array multiplier AAM is
built from) therefore draw substantially more switching energy than balanced
tree structures of similar cell count — which is one of the reasons the
paper's AAM burns more energy than the synthesised truncated multiplier
despite having fewer cells.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .netlist import Netlist
from .technology import GateKind


#: Fraction of the flip-flop switching energy drawn every cycle by the clock
#: pin regardless of data activity.
_DFF_CLOCK_FRACTION = 0.6
#: Average data-induced activity assumed on registered bits.
_DFF_DATA_ACTIVITY = 0.5


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic / leakage decomposition of an estimated power figure."""

    dynamic_mw: float
    leakage_mw: float
    register_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw + self.register_mw


def _input_skews(netlist: Netlist) -> np.ndarray:
    """Arrival-time skew (in gate levels) between each gate's inputs.

    The skew of a gate is the difference between the logic depths of its
    latest and earliest arriving inputs; it is the number of evaluation waves
    during which the gate may glitch before settling.
    """
    depths = netlist.wire_logic_depths()
    skews = np.zeros(len(depths), dtype=np.float64)
    for gate in netlist.gates:
        if gate.kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
            continue
        if not gate.inputs:
            continue
        input_depths = [depths[w] for w in gate.inputs]
        skews[gate.output] = float(max(input_depths) - min(input_depths))
    return skews


class MonteCarloPowerEstimator:
    """Toggle-counting power estimation from random-vector simulation."""

    def __init__(self, frequency_hz: float = 100e6, glitch_factor: float = 0.25,
                 samples: int = 2000, seed: int = 2017) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if samples < 2:
            raise ValueError("at least two samples are needed to observe toggles")
        self.frequency_hz = frequency_hz
        self.glitch_factor = glitch_factor
        self.samples = samples
        self.seed = seed

    def _random_stimulus(self, netlist: Netlist) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        stimulus = {}
        for port, wires in netlist.input_ports.items():
            width = len(wires)
            stimulus[port] = rng.integers(0, 1 << width, size=self.samples,
                                          dtype=np.int64)
        return stimulus

    def estimate(self, netlist: Netlist,
                 stimulus: Optional[Dict[str, np.ndarray]] = None) -> PowerBreakdown:
        """Estimate the average power of the netlist in milliwatts."""
        if stimulus is None:
            stimulus = self._random_stimulus(netlist)
        _, wire_values = netlist.evaluate(stimulus, return_wires=True)
        toggles = np.abs(np.diff(wire_values.astype(np.int8), axis=0)).sum(axis=0)
        cycles = wire_values.shape[0] - 1
        activity = toggles.astype(np.float64) / max(cycles, 1)

        skews = _input_skews(netlist)
        tech = netlist.technology

        dynamic_fj_per_cycle = 0.0
        for gate in netlist.gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
                continue
            glitch = 1.0 + self.glitch_factor * skews[gate.output]
            dynamic_fj_per_cycle += (activity[gate.output] * glitch
                                     * tech.switch_energy(gate.kind))

        register_fj_per_cycle = netlist.register_bits * tech.switch_energy(GateKind.DFF) \
            * (_DFF_CLOCK_FRACTION + _DFF_DATA_ACTIVITY * 0.5)

        dynamic_mw = dynamic_fj_per_cycle * 1e-15 * self.frequency_hz * 1e3
        register_mw = register_fj_per_cycle * 1e-15 * self.frequency_hz * 1e3
        leakage_mw = netlist.leakage_nw() * 1e-6
        return PowerBreakdown(dynamic_mw=dynamic_mw, leakage_mw=leakage_mw,
                              register_mw=register_mw)


class ProbabilisticPowerEstimator:
    """Signal-probability / transition-density power estimation.

    Signal probabilities are propagated through the netlist assuming
    independent inputs with probability 0.5; the per-gate switching activity
    under the temporal-independence assumption is ``2 p (1 - p)`` transitions
    per cycle.
    """

    def __init__(self, frequency_hz: float = 100e6, glitch_factor: float = 0.25,
                 input_probability: float = 0.5) -> None:
        if not 0.0 < input_probability < 1.0:
            raise ValueError("input probability must lie in (0, 1)")
        self.frequency_hz = frequency_hz
        self.glitch_factor = glitch_factor
        self.input_probability = input_probability

    def signal_probabilities(self, netlist: Netlist) -> np.ndarray:
        """Probability of each wire being 1 under independent random inputs."""
        prob = np.zeros(len(netlist.wire_logic_depths()), dtype=np.float64)
        for gate in netlist.gates:
            kind = gate.kind
            ins = [prob[w] for w in gate.inputs]
            if kind is GateKind.INPUT:
                prob[gate.output] = self.input_probability
            elif kind is GateKind.CONST0:
                prob[gate.output] = 0.0
            elif kind is GateKind.CONST1:
                prob[gate.output] = 1.0
            elif kind in (GateKind.BUF,):
                prob[gate.output] = ins[0]
            elif kind is GateKind.NOT:
                prob[gate.output] = 1.0 - ins[0]
            elif kind is GateKind.AND2:
                prob[gate.output] = ins[0] * ins[1]
            elif kind is GateKind.NAND2:
                prob[gate.output] = 1.0 - ins[0] * ins[1]
            elif kind is GateKind.OR2:
                prob[gate.output] = 1.0 - (1.0 - ins[0]) * (1.0 - ins[1])
            elif kind is GateKind.NOR2:
                prob[gate.output] = (1.0 - ins[0]) * (1.0 - ins[1])
            elif kind is GateKind.XOR2:
                prob[gate.output] = ins[0] + ins[1] - 2.0 * ins[0] * ins[1]
            elif kind is GateKind.XNOR2:
                prob[gate.output] = 1.0 - (ins[0] + ins[1] - 2.0 * ins[0] * ins[1])
            elif kind is GateKind.MUX2:
                s, a, b = ins
                prob[gate.output] = (1.0 - s) * a + s * b
            elif kind is GateKind.MAJ3:
                a, b, c = ins
                prob[gate.output] = (a * b + a * c + b * c - 2.0 * a * b * c)
            elif kind is GateKind.AOI21:
                a, b, c = ins
                prob[gate.output] = (1.0 - a * b) * (1.0 - c)
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unsupported gate kind {kind}")
        return prob

    def estimate(self, netlist: Netlist) -> PowerBreakdown:
        """Estimate the average power of the netlist in milliwatts."""
        prob = self.signal_probabilities(netlist)
        skews = _input_skews(netlist)
        tech = netlist.technology

        dynamic_fj_per_cycle = 0.0
        for gate in netlist.gates:
            if gate.kind in (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1):
                continue
            p = prob[gate.output]
            activity = 2.0 * p * (1.0 - p)
            glitch = 1.0 + self.glitch_factor * skews[gate.output]
            dynamic_fj_per_cycle += activity * glitch * tech.switch_energy(gate.kind)

        register_fj_per_cycle = netlist.register_bits * tech.switch_energy(GateKind.DFF) \
            * (_DFF_CLOCK_FRACTION + _DFF_DATA_ACTIVITY * 0.5)

        dynamic_mw = dynamic_fj_per_cycle * 1e-15 * self.frequency_hz * 1e3
        register_mw = register_fj_per_cycle * 1e-15 * self.frequency_hz * 1e3
        leakage_mw = netlist.leakage_nw() * 1e-6
        return PowerBreakdown(dynamic_mw=dynamic_mw, leakage_mw=leakage_mw,
                              register_mw=register_mw)
