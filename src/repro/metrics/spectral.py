"""Error distribution (PDF) and power spectral density (PSD).

APXPERF reports the full shape of the error, not only its moments: the
probability density function tells fail-small errors (narrow, centred) apart
from fail-rare ones (heavy tails), and the PSD shows whether the error is
white — the assumption behind the classical quantisation-noise model — or
correlated with the data.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorPdf:
    """Histogram estimate of the error probability density."""

    bin_edges: np.ndarray
    density: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0

    def probability_in(self, low: float, high: float) -> float:
        """Integrated probability mass over ``[low, high]``."""
        widths = np.diff(self.bin_edges)
        centers = self.bin_centers
        mask = (centers >= low) & (centers <= high)
        return float(np.sum(self.density[mask] * widths[mask]))


def error_pdf(error: np.ndarray, bins: int = 101) -> ErrorPdf:
    """Estimate the error PDF with a normalised histogram."""
    err = np.asarray(error, dtype=np.float64)
    if err.size == 0:
        raise ValueError("error array is empty")
    density, edges = np.histogram(err, bins=bins, density=True)
    return ErrorPdf(bin_edges=edges, density=density)


@dataclass(frozen=True)
class ErrorPsd:
    """Periodogram estimate of the error power spectral density."""

    frequencies: np.ndarray
    power: np.ndarray

    @property
    def total_power(self) -> float:
        return float(np.sum(self.power))

    def flatness(self) -> float:
        """Spectral flatness (geometric / arithmetic mean); 1.0 = white."""
        power = np.clip(self.power, 1e-30, None)
        geometric = float(np.exp(np.mean(np.log(power))))
        arithmetic = float(np.mean(power))
        if arithmetic == 0.0:
            return 1.0
        return geometric / arithmetic


def error_psd(error: np.ndarray, segment: int = 1024) -> ErrorPsd:
    """Averaged-periodogram (Bartlett) PSD estimate of the error sequence."""
    err = np.asarray(error, dtype=np.float64)
    if err.size < 2:
        raise ValueError("at least two samples are required")
    segment = int(min(segment, err.size))
    count = err.size // segment
    if count == 0:
        raise ValueError("segment longer than the error sequence")
    trimmed = err[: count * segment].reshape(count, segment)
    spectrum = np.fft.rfft(trimmed, axis=1)
    power = np.mean(np.abs(spectrum) ** 2, axis=0) / segment
    frequencies = np.fft.rfftfreq(segment, d=1.0)
    return ErrorPsd(frequencies=frequencies, power=power)
