"""Operator-level error metrics (the functional half of APXPERF).

All metrics are computed from the integer error ``e = x - x_hat`` between the
reference and approximate results on the reference grid, plus the raw output
codes for the bit-level metrics (BER, positional BER).  The normalisation
conventions follow the paper: values are interpreted as fractions of full
scale (Q1.15 for 16-bit adder data, Q2.30 for 16x16 products), so the MSE in
dB of a 16-bit adder that drops one LSB lands near -90 dB as in Figure 3.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..operators.base import Operator
from ..operators.bitops import bit_matrix, to_unsigned


@dataclass(frozen=True)
class ErrorReport:
    """Complete error characterisation of one operator configuration."""

    operator: str
    family: str
    samples: int
    #: Mean squared error of the normalised (fraction-of-full-scale) error.
    mse: float
    #: Mean absolute error (normalised).
    mae: float
    #: Mean error, i.e. the bias (normalised).
    bias: float
    #: Largest and smallest signed error (normalised).
    max_error: float
    min_error: float
    #: Probability that the result differs from the reference at all.
    error_rate: float
    #: Mean relative error E[(x - x_hat) / x] over non-zero references.
    mean_relative_error: float
    #: Bit error rate over the reference-width output bits.
    ber: float
    #: Per-bit-position error probability, LSB first (reference grid).
    positional_ber: np.ndarray = field(repr=False)
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def mse_db(self) -> float:
        """MSE in decibels; ``-inf`` for an exact operator."""
        if self.mse <= 0.0:
            return float("-inf")
        return 10.0 * math.log10(self.mse)

    @property
    def rmse(self) -> float:
        return math.sqrt(self.mse)

    @property
    def is_exact(self) -> bool:
        return self.error_rate == 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "family": self.family,
            "samples": self.samples,
            "mse": self.mse,
            "mse_db": self.mse_db,
            "mae": self.mae,
            "bias": self.bias,
            "max_error": self.max_error,
            "min_error": self.min_error,
            "error_rate": self.error_rate,
            "mean_relative_error": self.mean_relative_error,
            "ber": self.ber,
            "positional_ber": [float(v) for v in self.positional_ber],
            "params": dict(self.params),
        }


def mse(error: np.ndarray) -> float:
    """Mean squared error of an error array."""
    err = np.asarray(error, dtype=np.float64)
    if err.size == 0:
        raise ValueError("error array is empty")
    return float(np.mean(err ** 2))


def mse_db(error: np.ndarray) -> float:
    """Mean squared error in dB (``-inf`` when every error is zero)."""
    value = mse(error)
    if value <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(value)


def mean_absolute_error(error: np.ndarray) -> float:
    return float(np.mean(np.abs(np.asarray(error, dtype=np.float64))))


def bias(error: np.ndarray) -> float:
    return float(np.mean(np.asarray(error, dtype=np.float64)))


def error_rate(error: np.ndarray) -> float:
    """Probability of any deviation from the reference."""
    err = np.asarray(error)
    if err.size == 0:
        raise ValueError("error array is empty")
    return float(np.mean(err != 0))


def mean_relative_error(reference: np.ndarray, error: np.ndarray) -> float:
    """Mean of ``e / x`` over samples whose reference is non-zero."""
    ref = np.asarray(reference, dtype=np.float64)
    err = np.asarray(error, dtype=np.float64)
    nonzero = ref != 0
    if not np.any(nonzero):
        return 0.0
    return float(np.mean(err[nonzero] / ref[nonzero]))


def bit_error_metrics(reference: np.ndarray, approximate: np.ndarray,
                      width: int) -> Tuple[float, np.ndarray]:
    """BER and positional BER from one shared XOR diff and bit expansion.

    The two metrics are views of the same ``samples x width`` bit matrix —
    computing the matrix once halves the dominant cost of the bit-level
    characterisation.  Returns ``(ber, positional_ber)`` where the scalar
    equals ``np.mean`` of the matrix and the vector is its per-column mean
    (LSB first), exactly as the separate functions compute them.
    """
    diff = to_unsigned(reference, width) ^ to_unsigned(approximate, width)
    bits = bit_matrix(diff, width)
    positional = np.asarray(np.mean(bits, axis=0), dtype=np.float64)
    return float(np.mean(bits)), positional


def bit_error_rate(reference: np.ndarray, approximate: np.ndarray,
                   width: int) -> float:
    """Average fraction of differing bits over ``width``-bit outputs."""
    return bit_error_metrics(reference, approximate, width)[0]


def positional_bit_error_rate(reference: np.ndarray, approximate: np.ndarray,
                              width: int) -> np.ndarray:
    """Per-bit-position error probability (LSB first)."""
    return bit_error_metrics(reference, approximate, width)[1]


def characterize_error(operator: Operator, samples: int = 100_000,
                       rng: Optional[np.random.Generator] = None,
                       a: Optional[np.ndarray] = None,
                       b: Optional[np.ndarray] = None) -> ErrorReport:
    """Run the functional characterisation of one operator.

    By default ``samples`` uniform random operand pairs are drawn (APXPERF
    uses random stimulus too); explicit operand arrays can be supplied to
    characterise an operator under an application-specific input
    distribution.
    """
    if a is None or b is None:
        if rng is None:
            rng = np.random.default_rng(12345)
        a, b = operator.random_inputs(samples, rng)
    else:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        samples = int(a.size)

    reference = np.asarray(operator.reference(a, b), dtype=np.int64)
    aligned = operator.aligned(a, b)
    error = reference - aligned
    normalized = error.astype(np.float64) * operator.result_lsb_weight
    width = operator.reference_width
    ber, positional_ber = bit_error_metrics(reference, aligned, width)

    return ErrorReport(
        operator=operator.name,
        family=operator.family,
        samples=samples,
        mse=mse(normalized),
        mae=mean_absolute_error(normalized),
        bias=bias(normalized),
        max_error=float(np.max(normalized)),
        min_error=float(np.min(normalized)),
        error_rate=error_rate(error),
        mean_relative_error=mean_relative_error(reference, error),
        ber=ber,
        positional_ber=positional_ber,
        params=dict(operator.params),
    )
