"""Signal-level quality metrics (SNR, PSNR).

The FFT experiment of the paper reports the Peak Signal-to-Noise Ratio of the
approximate transform output against the exact one:

    PSNR [dB] = 10 log10( max(x^2) / MSE(x) )

where ``x`` is the reference signal and the MSE is taken between reference
and approximate outputs.
"""
from __future__ import annotations

import math
from typing import Optional

import numpy as np


def signal_mse(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Mean squared error between two signals (flattened)."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    approx = np.asarray(approximate, dtype=np.float64).ravel()
    if ref.shape != approx.shape:
        raise ValueError("signals must have the same length")
    if ref.size == 0:
        raise ValueError("signals are empty")
    return float(np.mean((ref - approx) ** 2))


def snr_db(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Signal-to-noise ratio: signal power over error power, in dB."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    noise = signal_mse(reference, approximate)
    power = float(np.mean(ref ** 2))
    if noise == 0.0:
        return float("inf")
    if power == 0.0:
        return float("-inf")
    return 10.0 * math.log10(power / noise)


def psnr_db(reference: np.ndarray, approximate: np.ndarray,
            peak: Optional[float] = None) -> float:
    """Peak signal-to-noise ratio in dB, following the paper's definition.

    ``peak`` defaults to ``max(reference**2)``; pass an explicit full-scale
    value (e.g. ``255.0`` for 8-bit images) to use the conventional image
    PSNR instead.
    """
    noise = signal_mse(reference, approximate)
    ref = np.asarray(reference, dtype=np.float64)
    peak_power = float(np.max(ref ** 2)) if peak is None else float(peak) ** 2
    if noise == 0.0:
        return float("inf")
    if peak_power == 0.0:
        return float("-inf")
    return 10.0 * math.log10(peak_power / noise)
