"""Clustering quality metrics for the K-means experiment.

The paper's accuracy metric is the *success rate*: the proportion of points
assigned to the correct cluster.  Because cluster labels are arbitrary, the
approximate clustering's labels are first matched to the reference labels by
solving the assignment problem on the label co-occurrence matrix (Hungarian
algorithm when SciPy is available, greedy matching otherwise).
"""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised through the public function
    from scipy.optimize import linear_sum_assignment as _hungarian
except Exception:  # pragma: no cover - scipy is an optional dependency
    _hungarian = None


def confusion_matrix(reference_labels: np.ndarray, labels: np.ndarray,
                     clusters: Optional[int] = None) -> np.ndarray:
    """Co-occurrence counts between reference and candidate labels."""
    ref = np.asarray(reference_labels, dtype=np.int64)
    cand = np.asarray(labels, dtype=np.int64)
    if ref.shape != cand.shape:
        raise ValueError("label arrays must have the same shape")
    if clusters is None:
        clusters = int(max(ref.max(initial=0), cand.max(initial=0))) + 1
    matrix = np.zeros((clusters, clusters), dtype=np.int64)
    np.add.at(matrix, (ref, cand), 1)
    return matrix


def _greedy_assignment(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy maximum matching on the co-occurrence matrix."""
    remaining = matrix.astype(np.float64).copy()
    rows = []
    cols = []
    for _ in range(matrix.shape[0]):
        index = int(np.argmax(remaining))
        row, col = divmod(index, matrix.shape[1])
        if remaining[row, col] < 0:
            break
        rows.append(row)
        cols.append(col)
        remaining[row, :] = -1.0
        remaining[:, col] = -1.0
    return np.asarray(rows), np.asarray(cols)


def match_labels(reference_labels: np.ndarray, labels: np.ndarray,
                 clusters: Optional[int] = None) -> np.ndarray:
    """Relabel ``labels`` to best match ``reference_labels``."""
    matrix = confusion_matrix(reference_labels, labels, clusters)
    if _hungarian is not None:
        rows, cols = _hungarian(-matrix)
    else:
        rows, cols = _greedy_assignment(matrix)
    mapping = {int(col): int(row) for row, col in zip(rows, cols)}
    cand = np.asarray(labels, dtype=np.int64)
    remapped = np.array([mapping.get(int(label), int(label)) for label in cand],
                        dtype=np.int64)
    return remapped


def success_rate(reference_labels: np.ndarray, labels: np.ndarray,
                 clusters: Optional[int] = None,
                 already_matched: bool = False) -> float:
    """Fraction of points assigned to the correct (matched) cluster."""
    ref = np.asarray(reference_labels, dtype=np.int64)
    cand = np.asarray(labels, dtype=np.int64)
    if not already_matched:
        cand = match_labels(ref, cand, clusters)
    if ref.size == 0:
        raise ValueError("label arrays are empty")
    return float(np.mean(ref == cand))
