"""Acceptance probability versus minimum acceptable accuracy (AP / MAA).

Zhu et al. characterise error-tolerant adders by the probability that a
result is "acceptable", where acceptability means the relative accuracy of
the result exceeds a Minimum Acceptable Accuracy threshold.  APXPERF exposes
the same metric; it is mostly useful for the fail-rare operators whose plain
error rate is misleading.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


def result_accuracy(reference: np.ndarray, approximate: np.ndarray) -> np.ndarray:
    """Per-sample accuracy ``1 - |e| / max(|x|, 1)`` clipped to ``[0, 1]``."""
    ref = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approximate, dtype=np.float64)
    magnitude = np.maximum(np.abs(ref), 1.0)
    accuracy = 1.0 - np.abs(ref - approx) / magnitude
    return np.clip(accuracy, 0.0, 1.0)


def acceptance_probability(reference: np.ndarray, approximate: np.ndarray,
                           minimum_acceptable_accuracy: float) -> float:
    """Fraction of results whose accuracy reaches the MAA threshold."""
    if not 0.0 <= minimum_acceptable_accuracy <= 1.0:
        raise ValueError("MAA must lie in [0, 1]")
    accuracy = result_accuracy(reference, approximate)
    return float(np.mean(accuracy >= minimum_acceptable_accuracy))


@dataclass(frozen=True)
class AcceptanceCurve:
    """Acceptance probability evaluated over a set of MAA thresholds."""

    thresholds: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.thresholds, self.probabilities))

    def probability_at(self, threshold: float) -> float:
        """Acceptance probability at an exact threshold present in the curve."""
        mapping = self.as_dict()
        if threshold not in mapping:
            raise KeyError(f"threshold {threshold} was not evaluated")
        return mapping[threshold]


DEFAULT_MAA_THRESHOLDS: Tuple[float, ...] = (0.90, 0.95, 0.98, 0.99, 0.999)


def acceptance_curve(reference: np.ndarray, approximate: np.ndarray,
                     maa_grid: Optional[Sequence[float]] = None,
                     thresholds: Optional[Sequence[float]] = None
                     ) -> AcceptanceCurve:
    """Acceptance probability over a whole grid of MAA thresholds, in one pass.

    The per-sample accuracies are computed once and sorted; each
    threshold's acceptance probability is then a single binary search
    (``count(accuracy >= t) / n``), so a dense MAA grid — e.g. the quality
    axis of a design-space Pareto front — costs one pass over the error
    array instead of one pass per threshold.  Results are exactly
    :func:`acceptance_probability` evaluated per threshold.

    ``maa_grid`` is the threshold grid (``thresholds`` is accepted as an
    alias; defaults to :data:`DEFAULT_MAA_THRESHOLDS`).
    """
    if maa_grid is not None and thresholds is not None:
        raise TypeError("pass either maa_grid or thresholds, not both")
    grid = maa_grid if maa_grid is not None else thresholds
    if grid is None:
        grid = DEFAULT_MAA_THRESHOLDS
    grid_array = np.asarray(list(grid), dtype=np.float64)
    # NaN fails the inclusive check too, matching acceptance_probability.
    if grid_array.size and not bool(
            np.all((grid_array >= 0.0) & (grid_array <= 1.0))):
        raise ValueError("MAA must lie in [0, 1]")
    accuracy = np.sort(result_accuracy(reference, approximate), axis=None)
    total = accuracy.size
    if total == 0:
        probabilities = np.zeros(grid_array.shape)
    else:
        # count(accuracy >= t) via the left insertion point of t.
        probabilities = (total - np.searchsorted(accuracy, grid_array,
                                                 side="left")) / total
    return AcceptanceCurve(thresholds=tuple(float(t) for t in grid_array),
                           probabilities=tuple(float(p) for p in probabilities))
