"""Acceptance probability versus minimum acceptable accuracy (AP / MAA).

Zhu et al. characterise error-tolerant adders by the probability that a
result is "acceptable", where acceptability means the relative accuracy of
the result exceeds a Minimum Acceptable Accuracy threshold.  APXPERF exposes
the same metric; it is mostly useful for the fail-rare operators whose plain
error rate is misleading.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


def result_accuracy(reference: np.ndarray, approximate: np.ndarray) -> np.ndarray:
    """Per-sample accuracy ``1 - |e| / max(|x|, 1)`` clipped to ``[0, 1]``."""
    ref = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approximate, dtype=np.float64)
    magnitude = np.maximum(np.abs(ref), 1.0)
    accuracy = 1.0 - np.abs(ref - approx) / magnitude
    return np.clip(accuracy, 0.0, 1.0)


def acceptance_probability(reference: np.ndarray, approximate: np.ndarray,
                           minimum_acceptable_accuracy: float) -> float:
    """Fraction of results whose accuracy reaches the MAA threshold."""
    if not 0.0 <= minimum_acceptable_accuracy <= 1.0:
        raise ValueError("MAA must lie in [0, 1]")
    accuracy = result_accuracy(reference, approximate)
    return float(np.mean(accuracy >= minimum_acceptable_accuracy))


@dataclass(frozen=True)
class AcceptanceCurve:
    """Acceptance probability evaluated over a set of MAA thresholds."""

    thresholds: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.thresholds, self.probabilities))

    def probability_at(self, threshold: float) -> float:
        """Acceptance probability at an exact threshold present in the curve."""
        mapping = self.as_dict()
        if threshold not in mapping:
            raise KeyError(f"threshold {threshold} was not evaluated")
        return mapping[threshold]


DEFAULT_MAA_THRESHOLDS: Tuple[float, ...] = (0.90, 0.95, 0.98, 0.99, 0.999)


def acceptance_curve(reference: np.ndarray, approximate: np.ndarray,
                     thresholds: Sequence[float] = DEFAULT_MAA_THRESHOLDS
                     ) -> AcceptanceCurve:
    """Acceptance probability for each MAA threshold."""
    probabilities = tuple(
        acceptance_probability(reference, approximate, threshold)
        for threshold in thresholds
    )
    return AcceptanceCurve(thresholds=tuple(thresholds), probabilities=probabilities)
