"""Error and quality metrics used throughout the study."""
from .acceptance import (
    DEFAULT_MAA_THRESHOLDS,
    AcceptanceCurve,
    acceptance_curve,
    acceptance_probability,
    result_accuracy,
)
from .clustering import confusion_matrix, match_labels, success_rate
from .error import (
    ErrorReport,
    bias,
    bit_error_metrics,
    bit_error_rate,
    characterize_error,
    error_rate,
    mean_absolute_error,
    mean_relative_error,
    mse,
    mse_db,
    positional_bit_error_rate,
)
from .image import SsimResult, gaussian_window, mssim, ssim
from .signal import psnr_db, signal_mse, snr_db
from .spectral import ErrorPdf, ErrorPsd, error_pdf, error_psd

__all__ = [
    "ErrorReport",
    "characterize_error",
    "mse",
    "mse_db",
    "mean_absolute_error",
    "bias",
    "error_rate",
    "mean_relative_error",
    "bit_error_metrics",
    "bit_error_rate",
    "positional_bit_error_rate",
    "AcceptanceCurve",
    "acceptance_curve",
    "acceptance_probability",
    "result_accuracy",
    "DEFAULT_MAA_THRESHOLDS",
    "ErrorPdf",
    "ErrorPsd",
    "error_pdf",
    "error_psd",
    "psnr_db",
    "snr_db",
    "signal_mse",
    "SsimResult",
    "ssim",
    "mssim",
    "gaussian_window",
    "confusion_matrix",
    "match_labels",
    "success_rate",
]
