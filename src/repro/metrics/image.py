"""Structural similarity (SSIM / MSSIM) — Wang et al., 2004.

The JPEG and HEVC experiments of the paper use the Mean Structural SIMilarity
index between the exactly-processed and approximately-processed images.  The
implementation below follows the reference formulation: an 11x11 circular
Gaussian window (sigma = 1.5), the (K1, K2) = (0.01, 0.03) stabilisation
constants and a dynamic range of 255 for 8-bit images; MSSIM is the average
of the local SSIM map.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def gaussian_window(size: int = 11, sigma: float = 1.5) -> np.ndarray:
    """Normalised 2-D Gaussian weighting window."""
    if size < 1 or size % 2 == 0:
        raise ValueError("window size must be a positive odd number")
    half = size // 2
    coords = np.arange(-half, half + 1, dtype=np.float64)
    one_d = np.exp(-(coords ** 2) / (2.0 * sigma ** 2))
    window = np.outer(one_d, one_d)
    return window / np.sum(window)


def _filter1_valid(image: np.ndarray, weights: np.ndarray,
                   axis: int) -> np.ndarray:
    """1-D correlation along one axis with 'valid' boundary handling."""
    size = weights.shape[0]
    span = image.shape[axis] - size + 1
    if span <= 0:
        raise ValueError("image smaller than the SSIM window")
    if axis == 0:
        result = weights[0] * image[0:span, :]
        for i in range(1, size):
            result += weights[i] * image[i:i + span, :]
    else:
        result = weights[0] * image[:, 0:span]
        for i in range(1, size):
            result += weights[i] * image[:, i:i + span]
    return result


def _filter2_valid(image: np.ndarray, window: np.ndarray) -> np.ndarray:
    """2-D correlation with 'valid' boundary handling (no padding bias).

    The SSIM window is a normalised outer product of one 1-D Gaussian with
    itself, so the correlation runs as two separable 1-D passes (22 shifted
    accumulations instead of 121 for the 11x11 window).
    """
    weights = np.sqrt(np.diag(window))
    return _filter1_valid(_filter1_valid(image, weights, axis=0),
                          weights, axis=1)


@dataclass(frozen=True)
class SsimResult:
    """MSSIM value together with the local SSIM map."""

    mssim: float
    ssim_map: np.ndarray


def ssim(reference: np.ndarray, distorted: np.ndarray, data_range: float = 255.0,
         window_size: int = 11, sigma: float = 1.5,
         k1: float = 0.01, k2: float = 0.03) -> SsimResult:
    """Structural similarity between two grayscale images."""
    ref = np.asarray(reference, dtype=np.float64)
    dist = np.asarray(distorted, dtype=np.float64)
    if ref.shape != dist.shape:
        raise ValueError("images must have identical shapes")
    if ref.ndim != 2:
        raise ValueError("ssim expects 2-D grayscale images")

    window = gaussian_window(window_size, sigma)
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_x = _filter2_valid(ref, window)
    mu_y = _filter2_valid(dist, window)
    mu_x_sq = mu_x ** 2
    mu_y_sq = mu_y ** 2
    mu_xy = mu_x * mu_y

    sigma_x_sq = _filter2_valid(ref * ref, window) - mu_x_sq
    sigma_y_sq = _filter2_valid(dist * dist, window) - mu_y_sq
    sigma_xy = _filter2_valid(ref * dist, window) - mu_xy

    numerator = (2.0 * mu_xy + c1) * (2.0 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x_sq + sigma_y_sq + c2)
    ssim_map = numerator / denominator
    return SsimResult(mssim=float(np.mean(ssim_map)), ssim_map=ssim_map)


def mssim(reference: np.ndarray, distorted: np.ndarray,
          data_range: float = 255.0) -> float:
    """Mean SSIM score in ``[0, 1]`` (1 means identical structure)."""
    return ssim(reference, distorted, data_range=data_range).mssim
