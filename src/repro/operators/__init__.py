"""Bit-accurate operator models.

This package contains every arithmetic operator compared in the paper:

* data-sized fixed-point operators (truncated / rounded adders and
  multipliers), whose only inaccuracy is bit-width reduction;
* the approximate adders ACA, ETAII, ETAIV and RCAApx;
* the approximate multipliers AAM and ABM;
* the accurate reference operators.

All models are vectorised over NumPy ``int64`` arrays and share the
:class:`~repro.operators.base.Operator` interface, so the characterisation
harness, the applications and the hardware model treat them uniformly.
"""
from . import bitops
from .adders import (
    ACAAdder,
    ETAIIAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from .base import AdderOperator, MultiplierOperator, Operator
from .multipliers import (
    AAMMultiplier,
    ABMMultiplier,
    BoothMultiplier,
    ExactMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)

__all__ = [
    "bitops",
    "Operator",
    "AdderOperator",
    "MultiplierOperator",
    "ExactAdder",
    "TruncatedAdder",
    "RoundedAdder",
    "RoundToNearestEvenAdder",
    "ACAAdder",
    "ETAIIAdder",
    "ETAIVAdder",
    "RCAApxAdder",
    "ExactMultiplier",
    "TruncatedMultiplier",
    "RoundedMultiplier",
    "BoothMultiplier",
    "AAMMultiplier",
    "ABMMultiplier",
]
