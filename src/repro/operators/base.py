"""Operator model base classes.

Every arithmetic operator studied in the paper — accurate, truncated, rounded
or functionally approximate — is modelled as an :class:`Operator` with a
bit-accurate, vectorised ``compute`` method operating on two's-complement
integer codes (NumPy ``int64``).

Two families exist:

* :class:`AdderOperator` — ``N``-bit + ``N``-bit additions.  The paper uses
  the accurate ``N``-bit (modular) sum as the error reference, with data
  interpreted as Q1.(N-1) fractions for MSE normalisation.
* :class:`MultiplierOperator` — ``N`` x ``N`` multiplications.  The error
  reference is the exact ``2N``-bit product, interpreted as a Q2.(2N-2)
  fraction.

The ``output_shift`` property records how many reference-grid LSBs one output
LSB is worth; truncated operators have a non-zero shift because their narrow
output implicitly forces the dropped LSBs to zero.  ``aligned`` re-expands the
output onto the reference grid so errors from different operators are directly
comparable, exactly as APXPERF does.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..fxp.quantize import restore_lsbs, wrap_to_width

#: Seed of the generator used when no rng is supplied to stimulus helpers.
#: A fixed default keeps *every* characterisation reproducible end-to-end
#: (the Study pipeline routes its own seed through explicitly).
DEFAULT_STIMULUS_SEED = 2017

#: Widths above this would enumerate more than ~4^13 (67M) operand pairs;
#: :meth:`Operator.exhaustive_inputs` refuses instead of attempting the
#: allocation.
MAX_EXHAUSTIVE_WIDTH = 13


class Operator(ABC):
    """Base class of every bit-accurate operator model."""

    #: Operator family, either ``"adder"`` or ``"multiplier"``.
    family: str = "generic"

    #: True when ``compute(a, b)`` depends on the operands only through their
    #: exact integer sum ``a + b``.  Execution backends may then evaluate the
    #: operator through a one-dimensional table indexed by the sum (see
    #: :class:`repro.core.backends.LutBackend`); the data-sized adders qualify
    #: because they quantise the wrapped accurate sum, while functionally
    #: approximate adders (ACA, ETAII, ...) inspect individual operand bits
    #: and do not.
    sum_addressable: bool = False

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def name(self) -> str:
        """Short name, e.g. ``"ADDt(16,10)"`` or ``"AAM(16)"``."""

    @property
    @abstractmethod
    def input_width(self) -> int:
        """Width in bits of each operand."""

    @property
    @abstractmethod
    def output_width(self) -> int:
        """Width in bits of the produced result."""

    @property
    @abstractmethod
    def output_shift(self) -> int:
        """Number of reference-grid LSBs represented by one output LSB."""

    @property
    @abstractmethod
    def params(self) -> Dict[str, object]:
        """Configuration parameters (for reporting and sweeps)."""

    @abstractmethod
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bit-accurate result as signed codes of ``output_width`` bits."""

    @abstractmethod
    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact result on the reference grid (``output_shift`` of zero)."""

    @property
    @abstractmethod
    def reference_width(self) -> int:
        """Width in bits of the reference result."""

    @property
    @abstractmethod
    def result_frac_bits(self) -> int:
        """Fractional bits of the reference result (for normalised metrics)."""

    # ------------------------------------------------------------------ #
    # Derived behaviour shared by all operators
    # ------------------------------------------------------------------ #
    @property
    def result_lsb_weight(self) -> float:
        """Real weight of one reference-grid LSB."""
        return 2.0 ** (-self.result_frac_bits)

    def aligned(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Result re-expanded onto the reference grid (dropped LSBs are zero)."""
        out = np.asarray(self.compute(a, b), dtype=np.int64)
        return np.asarray(restore_lsbs(out, self.output_shift), dtype=np.int64)

    def error(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Integer error ``reference - aligned`` on the reference grid."""
        return np.asarray(self.reference(a, b), dtype=np.int64) - self.aligned(a, b)

    def normalized_error(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Error scaled to the fractional interpretation (full scale ~ 1)."""
        return self.error(a, b).astype(np.float64) * self.result_lsb_weight

    def is_exact(self) -> bool:
        """Whether the operator never deviates from the reference."""
        return self.output_shift == 0 and self.output_width >= self.reference_width

    # ------------------------------------------------------------------ #
    # Stimulus generation
    # ------------------------------------------------------------------ #
    def input_range(self) -> Tuple[int, int]:
        """Inclusive signed range of each operand."""
        width = self.input_width
        return -(1 << (width - 1)), (1 << (width - 1)) - 1

    def random_inputs(self, count: int,
                      rng: Optional[Union[np.random.Generator, int]] = None,
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform random operand pairs, as used by APXPERF's characterisation.

        ``rng`` may be a generator, an integer seed, or ``None`` — the latter
        selects a generator seeded with :data:`DEFAULT_STIMULUS_SEED` so that
        two characterisation runs without an explicit rng still draw the same
        stimulus (an unseeded default would silently break end-to-end
        reproducibility).
        """
        if rng is None:
            rng = np.random.default_rng(DEFAULT_STIMULUS_SEED)
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        lo, hi = self.input_range()
        a = rng.integers(lo, hi + 1, size=count, dtype=np.int64)
        b = rng.integers(lo, hi + 1, size=count, dtype=np.int64)
        return a, b

    def exhaustive_inputs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Every operand pair (only sensible for small widths, used in tests).

        Raises :class:`ValueError` above :data:`MAX_EXHAUSTIVE_WIDTH` bits
        instead of attempting the ``4**N``-element meshgrid allocation.
        """
        width = self.input_width
        if width > MAX_EXHAUSTIVE_WIDTH:
            raise ValueError(
                f"exhaustive enumeration of {self.name} would materialise "
                f"{4 ** width:,} operand pairs ({width}-bit operands); only "
                f"widths up to {MAX_EXHAUSTIVE_WIDTH} bits are enumerable — "
                f"use random_inputs for wider operators")
        lo, hi = self.input_range()
        values = np.arange(lo, hi + 1, dtype=np.int64)
        a, b = np.meshgrid(values, values, indexing="ij")
        return a.ravel(), b.ravel()

    # ------------------------------------------------------------------ #
    # Cosmetics
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} {self.name}>"


class AdderOperator(Operator):
    """Base class for ``N``-bit adders.

    The accurate reference is the modular ``N``-bit sum — the paper treats the
    16-bit-output adder as "the correct adder" — and data are interpreted as
    Q1.(N-1) fractions when normalising errors.
    """

    family = "adder"

    def __init__(self, input_width: int) -> None:
        if input_width < 2:
            raise ValueError("adders need at least 2-bit operands")
        self._input_width = int(input_width)

    @property
    def input_width(self) -> int:
        return self._input_width

    @property
    def reference_width(self) -> int:
        return self._input_width

    @property
    def result_frac_bits(self) -> int:
        return self._input_width - 1

    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return np.asarray(wrap_to_width(total, self._input_width), dtype=np.int64)


class MultiplierOperator(Operator):
    """Base class for ``N`` x ``N`` multipliers.

    The accurate reference is the exact ``2N``-bit product, interpreted as a
    Q2.(2N-2) fraction of the Q1.(N-1) inputs.
    """

    family = "multiplier"

    def __init__(self, input_width: int) -> None:
        if input_width < 2:
            raise ValueError("multipliers need at least 2-bit operands")
        if input_width > 31:
            raise ValueError("input widths above 31 bits overflow the int64 product model")
        self._input_width = int(input_width)

    @property
    def input_width(self) -> int:
        return self._input_width

    @property
    def reference_width(self) -> int:
        return 2 * self._input_width

    @property
    def result_frac_bits(self) -> int:
        return 2 * (self._input_width - 1)

    def reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
