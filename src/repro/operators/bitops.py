"""Bit-level helpers shared by the operator models.

All operator models work on NumPy ``int64`` arrays holding two's-complement
codes.  These helpers extract bit fields, build masks and convert between
signed and unsigned views, which keeps the operator implementations short and
bit-accurate.
"""
from __future__ import annotations

from typing import Union

import numpy as np

IntLike = Union[int, np.ndarray]


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError("width must be non-negative")
    return (1 << width) - 1


def to_unsigned(value: IntLike, width: int) -> np.ndarray:
    """Reinterpret two's-complement codes as unsigned ``width``-bit integers."""
    return np.asarray(value, dtype=np.int64) & mask(width)


def to_signed(value: IntLike, width: int) -> np.ndarray:
    """Reinterpret unsigned ``width``-bit integers as two's-complement codes."""
    arr = np.asarray(value, dtype=np.int64) & mask(width)
    sign_bit = 1 << (width - 1)
    return (arr ^ sign_bit) - sign_bit


def get_bit(value: IntLike, position: int) -> np.ndarray:
    """Extract the bit at ``position`` (LSB = 0) as 0/1."""
    return (np.asarray(value, dtype=np.int64) >> position) & 1


def get_bits(value: IntLike, low: int, high: int) -> np.ndarray:
    """Extract the bit field ``[low, high]`` inclusive, aligned to bit 0."""
    if high < low:
        raise ValueError("high must be >= low")
    width = high - low + 1
    return (np.asarray(value, dtype=np.int64) >> low) & mask(width)


def set_bit(value: IntLike, position: int, bit: IntLike) -> np.ndarray:
    """Return ``value`` with the bit at ``position`` forced to ``bit``."""
    arr = np.asarray(value, dtype=np.int64)
    bit_arr = np.asarray(bit, dtype=np.int64) & 1
    cleared = arr & ~(1 << position)
    return cleared | (bit_arr << position)


def bit_matrix(value: IntLike, width: int) -> np.ndarray:
    """Expand codes into a ``(..., width)`` matrix of bits, LSB first."""
    arr = to_unsigned(value, width)
    shifts = np.arange(width, dtype=np.int64)
    return (arr[..., np.newaxis] >> shifts) & 1


def from_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Recombine an LSB-first bit matrix into unsigned integer codes."""
    bits = np.asarray(bits, dtype=np.int64)
    width = bits.shape[-1]
    weights = (np.int64(1) << np.arange(width, dtype=np.int64))
    return np.sum(bits * weights, axis=-1)


def popcount(value: IntLike, width: int) -> np.ndarray:
    """Number of set bits in the lowest ``width`` bits."""
    return np.sum(bit_matrix(value, width), axis=-1)


def hamming_distance(a: IntLike, b: IntLike, width: int) -> np.ndarray:
    """Bitwise Hamming distance over ``width`` bits."""
    diff = to_unsigned(a, width) ^ to_unsigned(b, width)
    return popcount(diff, width)


def sign_extend(value: IntLike, from_width: int, to_width: int) -> np.ndarray:
    """Sign-extend a ``from_width``-bit code to ``to_width`` bits (still int64).

    The returned array holds the signed value; callers that need the raw
    unsigned view can apply :func:`to_unsigned` with ``to_width``.
    """
    if to_width < from_width:
        raise ValueError("to_width must be >= from_width")
    return to_signed(value, from_width)
