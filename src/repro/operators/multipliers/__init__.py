"""Multiplier operator models (accurate, data-sized, approximate)."""
from .aam import AAMMultiplier
from .abm import ABMMultiplier
from .accurate import (
    ExactMultiplier,
    QuantizedOutputMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)
from .booth import (
    BoothMultiplier,
    booth_decode,
    booth_digit_count,
    booth_encode,
    booth_partial_products,
)

__all__ = [
    "ExactMultiplier",
    "QuantizedOutputMultiplier",
    "TruncatedMultiplier",
    "RoundedMultiplier",
    "BoothMultiplier",
    "booth_encode",
    "booth_decode",
    "booth_digit_count",
    "booth_partial_products",
    "AAMMultiplier",
    "ABMMultiplier",
]
