"""Approximate Array Multiplier (AAM) — Van, Wang, Feng, 2000.

AAM is a *fixed-width* array multiplier: ``N`` x ``N`` input bits produce an
``N``-bit output (the most significant half of the product).  Compared with a
full array, the cells below the main anti-diagonal of the partial-product
array are pruned, and a compensation term — derived with simple AND/OR logic
from the cells sitting on that diagonal — estimates the carries the pruned
triangle would have injected into the kept half.

The functional model works on the signed partial-product decomposition of the
two's-complement product (the Baugh-Wooley signs are carried by the cell
values), keeps the cells of weight ``>= 2**N``, and adds the compensation
estimated from the ``i + j = N - 1`` diagonal.  The result is the upper-half
product, bit-accurate with respect to this structural description.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ...fxp.quantize import wrap_to_width
from ..base import MultiplierOperator
from ..bitops import get_bit, to_unsigned


class AAMMultiplier(MultiplierOperator):
    """Approximate (fixed-width, pruned, compensated) array multiplier ``AAM(N)``.

    Parameters
    ----------
    input_width:
        Operand width ``N``; the output is also ``N`` bits wide.
    compensation:
        Whether the diagonal-based carry compensation is applied.  Disabling
        it degenerates into a plainly pruned array (ablation target).
    """

    def __init__(self, input_width: int = 16, compensation: bool = True) -> None:
        super().__init__(input_width)
        self._compensation = bool(compensation)

    # ------------------------------------------------------------------ #
    # Descriptors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        suffix = "" if self._compensation else ",nocomp"
        return f"AAM({self.input_width}{suffix})"

    @property
    def compensation(self) -> bool:
        return self._compensation

    @property
    def output_width(self) -> int:
        return self.input_width

    @property
    def output_shift(self) -> int:
        return self.input_width

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "compensation": self._compensation,
        }

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def _cell_sign(self, i: int, j: int) -> int:
        """Sign of partial-product cell ``(i, j)`` for two's-complement operands.

        Writing ``a = -a_{N-1} 2^{N-1} + sum a_i 2^i`` (same for ``b``), the
        cross terms involving exactly one sign bit are negative.
        """
        n = self.input_width
        negatives = (i == n - 1) ^ (j == n - 1)
        return -1 if negatives else 1

    def _dropped_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Signed value of every pruned cell (columns ``i + j <= N - 2``) plus
        the diagonal cells (column ``N - 1``), which are also removed from the
        array and only contribute through the compensation estimate."""
        n = self.input_width
        ua = to_unsigned(a, n)
        ub = to_unsigned(b, n)
        total = np.zeros_like(ua)
        for i in range(n):
            for j in range(0, n - i):
                cell = get_bit(ua, i) & get_bit(ub, j)
                weight = self._cell_sign(i, j) * (1 << (i + j))
                total = total + cell * weight
        return total

    def _diagonal_ones(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Number of asserted AND terms on the ``i + j = N - 1`` diagonal."""
        n = self.input_width
        ua = to_unsigned(a, n)
        ub = to_unsigned(b, n)
        count = np.zeros_like(ua)
        for i in range(n):
            count = count + (get_bit(ua, i) & get_bit(ub, n - 1 - i))
        return count

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.input_width
        product = self.reference(a, b)
        kept = product - self._dropped_sum(a, b)
        if self._compensation:
            # Each asserted diagonal AND term statistically contributes half a
            # carry into column N; the AND/OR compensation circuit realises
            # ceil(count / 2), which is what the functional model uses.
            comp = (self._diagonal_ones(a, b) + 1) >> 1
            kept = kept + (comp << n)
        result = kept >> n
        return np.asarray(wrap_to_width(result, n), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def pruned_cell_count(self) -> int:
        """Number of AND cells removed from the full array (incl. diagonal)."""
        n = self.input_width
        return n * (n + 1) // 2

    def kept_cell_count(self) -> int:
        """Number of AND cells remaining in the array."""
        n = self.input_width
        return n * n - self.pruned_cell_count()
