"""Radix-4 modified-Booth encoding and the exact Booth multiplier.

The modified-Booth (MB) recoding turns one operand into ``ceil(N / 2)`` signed
digits in ``{-2, -1, 0, +1, +2}``, halving the number of partial-product rows
of the multiplier — the property the paper refers to when describing ABM
("allowing a division by 2 of its size").  The exact Booth multiplier here is
used both as a building block of :class:`~repro.operators.multipliers.abm.ABMMultiplier`
and as an independent check that the recoding is correct (it must reproduce
the exact product for every operand pair).
"""
from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..base import MultiplierOperator
from ..bitops import get_bit, to_unsigned


def booth_digit_count(width: int) -> int:
    """Number of radix-4 Booth digits for a ``width``-bit operand."""
    return (width + 1) // 2


def booth_encode(value: np.ndarray, width: int) -> List[np.ndarray]:
    """Radix-4 modified-Booth recoding of two's-complement codes.

    Returns a list of digit arrays (LSB digit first); each digit lies in
    ``{-2, -1, 0, 1, 2}`` and the recoded value satisfies
    ``value == sum(d_k * 4**k)``.
    """
    arr = np.asarray(value, dtype=np.int64)
    unsigned = to_unsigned(arr, width)
    digits: List[np.ndarray] = []
    for k in range(booth_digit_count(width)):
        low = 2 * k - 1
        b_low = get_bit(unsigned, low) if low >= 0 else np.zeros_like(unsigned)
        b_mid = get_bit(unsigned, 2 * k) if 2 * k < width else _sign_bit(arr)
        b_high = get_bit(unsigned, 2 * k + 1) if 2 * k + 1 < width else _sign_bit(arr)
        digit = -2 * b_high + b_mid + b_low
        digits.append(digit.astype(np.int64))
    return digits


def _sign_bit(value: np.ndarray) -> np.ndarray:
    return (np.asarray(value, dtype=np.int64) < 0).astype(np.int64)


def booth_decode(digits: List[np.ndarray]) -> np.ndarray:
    """Reconstruct the integer value from its radix-4 Booth digits."""
    if not digits:
        raise ValueError("at least one digit is required")
    total = np.zeros_like(np.asarray(digits[0], dtype=np.int64))
    for k, digit in enumerate(digits):
        total = total + (np.asarray(digit, dtype=np.int64) << (2 * k))
    return total


def booth_partial_products(a: np.ndarray, b: np.ndarray,
                           width: int) -> List[np.ndarray]:
    """Partial-product rows ``d_k * a * 4**k`` of the Booth multiplication."""
    digits = booth_encode(b, width)
    a_arr = np.asarray(a, dtype=np.int64)
    return [(digit * a_arr) << (2 * k) for k, digit in enumerate(digits)]


class BoothMultiplier(MultiplierOperator):
    """Exact radix-4 modified-Booth multiplier (``N`` x ``N`` -> ``2N``).

    Functionally identical to :class:`ExactMultiplier`; the different internal
    structure only matters for the hardware model (fewer rows, encoder and
    decoder overhead) and for building ABM on top of it.
    """

    def __init__(self, input_width: int = 16) -> None:
        super().__init__(input_width)

    @property
    def name(self) -> str:
        return f"BOOTH({self.input_width})"

    @property
    def output_width(self) -> int:
        return 2 * self.input_width

    @property
    def output_shift(self) -> int:
        return 0

    @property
    def params(self) -> Dict[str, object]:
        return {"input_width": self.input_width}

    @property
    def row_count(self) -> int:
        """Number of partial-product rows after Booth recoding."""
        return booth_digit_count(self.input_width)

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        rows = booth_partial_products(a, b, self.input_width)
        total = rows[0]
        for row in rows[1:]:
            total = total + row
        return np.asarray(total, dtype=np.int64)
