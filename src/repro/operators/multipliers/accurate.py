"""Accurate and carefully-sized (truncated / rounded) fixed-point multipliers.

* :class:`ExactMultiplier` — full ``2N``-bit product, the accuracy reference
  ("the 16 to 32 integer multiplier is considered as the correct multiplier").
* :class:`TruncatedMultiplier` (``MULt``) — fixed-width multiplier keeping the
  ``k`` most-significant bits of the product by truncation.  ``MULt(16, 16)``
  is the paper's data-sized competitor to AAM and ABM.
* :class:`RoundedMultiplier` (``MULr``) — same with round-half-up.

As with the adders, the energy benefit of data sizing comes from the narrower
output: fewer partial-product columns have to be summed, and everything
downstream of the multiplier shrinks accordingly.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ...fxp.quantize import RoundingMode, drop_lsbs, wrap_to_width
from ..base import MultiplierOperator


class ExactMultiplier(MultiplierOperator):
    """Accurate ``N`` x ``N`` -> ``2N`` multiplier."""

    def __init__(self, input_width: int = 16) -> None:
        super().__init__(input_width)

    @property
    def name(self) -> str:
        return f"MUL({self.input_width},{2 * self.input_width})"

    @property
    def output_width(self) -> int:
        return 2 * self.input_width

    @property
    def output_shift(self) -> int:
        return 0

    @property
    def params(self) -> Dict[str, object]:
        return {"input_width": self.input_width}

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.reference(a, b)


class QuantizedOutputMultiplier(MultiplierOperator):
    """Shared implementation of the data-sized (``MULt`` / ``MULr``) multipliers.

    The exact product is computed and the ``2N - k`` least significant bits
    are eliminated with the configured rounding mode, keeping a ``k``-bit
    output.  ``MULt(16, 16)`` is the classical fixed-width multiplier.
    """

    rounding_mode: RoundingMode = RoundingMode.TRUNCATE
    mnemonic: str = "MULt"

    def __init__(self, input_width: int = 16, output_width: int = 16) -> None:
        super().__init__(input_width)
        if not 2 <= output_width <= 2 * input_width:
            raise ValueError("output width must lie in [2, 2 * input_width]")
        self._output_width = int(output_width)

    @property
    def name(self) -> str:
        return f"{self.mnemonic}({self.input_width},{self._output_width})"

    @property
    def output_width(self) -> int:
        return self._output_width

    @property
    def dropped_bits(self) -> int:
        """Number of product LSBs eliminated."""
        return 2 * self.input_width - self._output_width

    @property
    def output_shift(self) -> int:
        return self.dropped_bits

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "output_width": self._output_width,
            "rounding": self.rounding_mode.value,
        }

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        product = self.reference(a, b)
        reduced = np.asarray(drop_lsbs(product, self.dropped_bits, self.rounding_mode))
        return np.asarray(wrap_to_width(reduced, self._output_width), dtype=np.int64)


class TruncatedMultiplier(QuantizedOutputMultiplier):
    """``MULt(N, k)``: keep the ``k`` MSBs of the product by truncation."""

    rounding_mode = RoundingMode.TRUNCATE
    mnemonic = "MULt"


class RoundedMultiplier(QuantizedOutputMultiplier):
    """``MULr(N, k)``: keep the ``k`` MSBs of the product by rounding."""

    rounding_mode = RoundingMode.ROUND
    mnemonic = "MULr"
