"""Approximate Booth Multiplier (ABM) — Juang, Hsiao, 2005.

ABM is a *fixed-width*, radix-4 modified-Booth multiplier whose summand grid
is pruned: the columns belonging to the least-significant half of the product
are removed, and a compensation circuit built from the most significant bits
of the dropped part estimates the missing carries.  Because the Booth
recoding already halves the number of partial-product rows, the remaining
accumulation is shallow and fast — the paper reports ABM as the fastest
16-bit multiplier — but the error behaviour differs sharply from AAM.

Following the paper's description ("redundant representation can be
advantageously used to perform further calculation, hence the overhead of the
decoder can be neglected"), this model keeps the final conversion from the
carry-save (redundant) accumulation to two's complement *approximate*: the
last carry-propagate addition uses a limited carry window instead of a full
carry chain.  Long carries that cross the window produce large-amplitude
errors in the most significant bits, which is what makes ABM "fail moderate"
— moderate bit-error rate, catastrophic MSE — exactly the asymmetry Table I
of the paper reports.  The window length and the compensation circuit are
both configurable so their contributions can be ablated.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ...fxp.quantize import wrap_to_width
from ..base import MultiplierOperator
from ..bitops import mask, to_unsigned
from .booth import booth_digit_count, booth_partial_products


class ABMMultiplier(MultiplierOperator):
    """Approximate (fixed-width, pruned, compensated) Booth multiplier ``ABM(N)``.

    Parameters
    ----------
    input_width:
        Operand width ``N``; the output is ``N`` bits wide (upper product half).
    compensation:
        Whether the dropped-column compensation is applied (ablation target).
    carry_window:
        Carry-propagation window of the approximate redundant-to-binary
        conversion.  ``None`` performs a full (exact) conversion, which is the
        "with decoder" variant of the design.
    """

    def __init__(self, input_width: int = 16, compensation: bool = True,
                 carry_window: int | None = 4) -> None:
        super().__init__(input_width)
        if carry_window is not None and carry_window < 1:
            raise ValueError("carry_window must be >= 1 or None")
        self._compensation = bool(compensation)
        self._carry_window = carry_window

    # ------------------------------------------------------------------ #
    # Descriptors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        suffix = ""
        if not self._compensation:
            suffix += ",nocomp"
        if self._carry_window is None:
            suffix += ",exactconv"
        return f"ABM({self.input_width}{suffix})"

    @property
    def compensation(self) -> bool:
        return self._compensation

    @property
    def carry_window(self) -> int | None:
        return self._carry_window

    @property
    def output_width(self) -> int:
        return self.input_width

    @property
    def output_shift(self) -> int:
        return self.input_width

    @property
    def row_count(self) -> int:
        """Number of Booth partial-product rows."""
        return booth_digit_count(self.input_width)

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "compensation": self._compensation,
            "carry_window": self._carry_window,
        }

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def _limited_carry_add(self, x: np.ndarray, y: np.ndarray,
                           width: int) -> np.ndarray:
        """ACA-style addition with a bounded carry-propagation window."""
        if self._carry_window is None:
            return (x + y) & mask(width)
        window = self._carry_window
        ux = to_unsigned(x, width)
        uy = to_unsigned(y, width)
        result = np.zeros_like(ux)
        for i in range(width):
            low = max(0, i - window)
            wa = (ux >> low) & mask(i - low + 1)
            wb = (uy >> low) & mask(i - low + 1)
            bit = ((wa + wb) >> (i - low)) & 1
            result |= bit << i
        return result

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.input_width
        rows = booth_partial_products(a, b, n)

        # Prune each row below column N (fixed-width grid) and collect the
        # column N-1 bits that feed the compensation circuit.
        kept_rows = []
        comp_bits = np.zeros_like(np.asarray(a, dtype=np.int64))
        for row in rows:
            kept_rows.append(np.asarray(row, dtype=np.int64) >> n)
            comp_bits = comp_bits + ((np.asarray(row, dtype=np.int64) >> (n - 1)) & 1)

        # Carry-save accumulation of the kept rows: all rows but the last are
        # reduced exactly (the compressor tree), leaving two redundant vectors
        # that the (approximate) final conversion combines.
        partial = kept_rows[0]
        for row in kept_rows[1:-1]:
            partial = partial + row
        last = kept_rows[-1] if len(kept_rows) > 1 else np.zeros_like(partial)

        if self._compensation:
            # Each asserted column-(N-1) bit statistically carries half an LSB
            # into the kept half; the compensation adds ceil(count / 2).
            partial = partial + ((comp_bits + 1) >> 1)

        combined = self._limited_carry_add(partial, last, n)
        return np.asarray(wrap_to_width(combined, n), dtype=np.int64)
