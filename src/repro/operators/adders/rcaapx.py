"""Approximate ripple-carry adder (RCAApx) with approximate full adders.

RCAApx — based on the IMPACT approximate mirror adders (Gupta et al.,
ISLPED 2011) — splits the adder into an accurate most-significant part and an
approximate least-significant part built from simplified full-adder cells.
The operator is configured by the operand width ``N``, the number of
*accurate* MSB result bits ``M`` and the approximate full-adder type
(1, 2 or 3, sorted by decreasing accuracy as in the paper).

The three approximate full-adder cells are modelled as truth tables.  They
are behavioural stand-ins for the transistor-level IMPACT cells: type 1 keeps
the carry exact and mis-computes the sum in two of the eight input
combinations; type 2 additionally approximates the carry; type 3 cuts the
carry chain entirely (carry = A, sum = B).  The "decreasing accuracy"
ordering stated in the paper is enforced by construction and verified in the
test-suite.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..base import AdderOperator
from ..bitops import get_bit, to_signed, to_unsigned


@dataclass(frozen=True)
class FullAdderTruthTable:
    """A (possibly approximate) full-adder cell described by truth tables.

    ``sum_table`` and ``carry_table`` are 8-entry tuples indexed by the input
    combination ``(a << 2) | (b << 1) | cin``.
    """

    name: str
    sum_table: Tuple[int, ...]
    carry_table: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.sum_table) != 8 or len(self.carry_table) != 8:
            raise ValueError("full-adder truth tables must have 8 entries")
        if any(v not in (0, 1) for v in self.sum_table + self.carry_table):
            raise ValueError("truth-table entries must be 0 or 1")

    def evaluate(self, a: np.ndarray, b: np.ndarray,
                 cin: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised cell evaluation; returns ``(sum, carry_out)``."""
        index = (np.asarray(a, dtype=np.int64) << 2) \
            | (np.asarray(b, dtype=np.int64) << 1) \
            | np.asarray(cin, dtype=np.int64)
        sum_lut = np.asarray(self.sum_table, dtype=np.int64)
        carry_lut = np.asarray(self.carry_table, dtype=np.int64)
        return sum_lut[index], carry_lut[index]

    def sum_error_count(self) -> int:
        """Number of input combinations whose sum output is wrong."""
        return sum(1 for i in range(8) if self.sum_table[i] != EXACT_FA.sum_table[i])

    def carry_error_count(self) -> int:
        """Number of input combinations whose carry output is wrong."""
        return sum(1 for i in range(8) if self.carry_table[i] != EXACT_FA.carry_table[i])


def _exact_tables() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    sums = []
    carries = []
    for index in range(8):
        a, b, cin = (index >> 2) & 1, (index >> 1) & 1, index & 1
        sums.append(a ^ b ^ cin)
        carries.append((a & b) | (a & cin) | (b & cin))
    return tuple(sums), tuple(carries)


_EXACT_SUM, _EXACT_CARRY = _exact_tables()

#: The accurate full adder (reference cell).
EXACT_FA = FullAdderTruthTable("FA", _EXACT_SUM, _EXACT_CARRY)

#: Type 1 — exact carry, sum wrong for (a, b, cin) in {(0,1,1), (1,0,0)}.
APPROX_FA_TYPE1 = FullAdderTruthTable(
    "ApproxFA1",
    sum_table=(0, 1, 1, 1, 0, 0, 0, 1),
    carry_table=_EXACT_CARRY,
)

#: Type 2 — carry approximated as ``a | b``, sum as the complement of that carry.
APPROX_FA_TYPE2 = FullAdderTruthTable(
    "ApproxFA2",
    sum_table=(1, 1, 0, 0, 0, 0, 0, 0),
    carry_table=(0, 0, 1, 1, 1, 1, 1, 1),
)

#: Type 3 — carry chain cut: carry = a, sum = b.
APPROX_FA_TYPE3 = FullAdderTruthTable(
    "ApproxFA3",
    sum_table=(0, 0, 1, 1, 0, 0, 1, 1),
    carry_table=(0, 0, 0, 0, 1, 1, 1, 1),
)

APPROX_FA_TYPES = {
    1: APPROX_FA_TYPE1,
    2: APPROX_FA_TYPE2,
    3: APPROX_FA_TYPE3,
}


class RCAApxAdder(AdderOperator):
    """Approximate ripple-carry adder ``RCAApx(N, M, type)``.

    Parameters
    ----------
    input_width:
        Operand width ``N``.
    approximate_lsbs:
        Number of LSB result bits ``M`` produced by approximate cells; the
        remaining ``N - M`` MSBs use accurate full adders.  The paper's text
        is ambiguous about whether ``M`` counts the accurate or the
        approximate part, but its application tables (III and V) only make
        sense with ``RCAApx(16, 6, 3)`` having *six approximate LSBs* — it
        outperforms every other approximate adder there — so that is the
        interpretation implemented here (and recorded in EXPERIMENTS.md).
    fa_type:
        Approximate full-adder type used in the LSB part (1, 2 or 3, sorted by
        decreasing accuracy).
    """

    def __init__(self, input_width: int = 16, approximate_lsbs: int = 8,
                 fa_type: int = 1) -> None:
        super().__init__(input_width)
        if not 0 <= approximate_lsbs <= input_width:
            raise ValueError("approximate_lsbs must lie in [0, input_width]")
        if fa_type not in APPROX_FA_TYPES:
            raise ValueError(f"fa_type must be one of {sorted(APPROX_FA_TYPES)}")
        self._approximate_bits = int(approximate_lsbs)
        self._fa_type = int(fa_type)

    # ------------------------------------------------------------------ #
    # Descriptors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"RCAApx({self.input_width},{self._approximate_bits},{self._fa_type})"

    @property
    def accurate_bits(self) -> int:
        """Number of MSB result bits produced by accurate full adders."""
        return self.input_width - self._approximate_bits

    @property
    def approximate_bits(self) -> int:
        """Number of LSB result bits produced by approximate cells."""
        return self._approximate_bits

    @property
    def fa_type(self) -> int:
        return self._fa_type

    @property
    def approximate_cell(self) -> FullAdderTruthTable:
        return APPROX_FA_TYPES[self._fa_type]

    @property
    def output_width(self) -> int:
        return self.input_width

    @property
    def output_shift(self) -> int:
        return 0

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "approximate_lsbs": self._approximate_bits,
            "fa_type": self._fa_type,
        }

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.input_width
        approx = self.approximate_bits
        cell = self.approximate_cell
        ua = to_unsigned(a, n)
        ub = to_unsigned(b, n)

        result = np.zeros_like(ua)
        carry = np.zeros_like(ua)
        for i in range(n):
            bit_a = get_bit(ua, i)
            bit_b = get_bit(ub, i)
            if i < approx:
                s, carry = cell.evaluate(bit_a, bit_b, carry)
            else:
                total = bit_a + bit_b + carry
                s = total & 1
                carry = total >> 1
            result |= s << i
        return to_signed(result, n)
