"""Accurate and carefully-sized (truncated / rounded) fixed-point adders.

These are the "careful data sizing" operators of the paper:

* :class:`ExactAdder` — the full-width accurate adder used as reference.
* :class:`TruncatedAdder` (``ADDt``) — operands lose their LSBs by truncation
  and a *narrower* accurate adder performs the sum.
* :class:`RoundedAdder` (``ADDr``) — same, with round-half-up quantisation.
* :class:`RoundToNearestEvenAdder` — convergent-rounding extension (not in
  the paper's plots, kept for the rounding-mode ablation).

The energy advantage of these operators comes from the reduced bit-width: the
physical adder really is ``output_width`` bits wide, and everything downstream
(transfers, storage, subsequent operators) shrinks with it.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ...fxp.quantize import RoundingMode, drop_lsbs, saturate_to_width
from ..base import AdderOperator


class ExactAdder(AdderOperator):
    """Accurate ``N``-bit adder (modular two's-complement sum)."""

    #: The result is the wrapped accurate sum — a pure function of ``a + b``
    #: — so LUT backends may evaluate it through a sum-indexed table.
    sum_addressable = True

    def __init__(self, input_width: int = 16) -> None:
        super().__init__(input_width)

    @property
    def name(self) -> str:
        return f"ADD({self.input_width})"

    @property
    def output_width(self) -> int:
        return self.input_width

    @property
    def output_shift(self) -> int:
        return 0

    @property
    def params(self) -> Dict[str, object]:
        return {"input_width": self.input_width}

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.reference(a, b)


class QuantizedOutputAdder(AdderOperator):
    """Shared implementation of the data-sized (``ADDt`` / ``ADDr``) adders.

    The accurate ``N``-bit sum is computed and its ``N - output_width`` LSBs
    are eliminated with the configured rounding mode, so the output LSB weighs
    ``2**dropped_bits`` reference LSBs.  This matches the paper's
    ``ADDt(16, k)`` naming — 16-bit inputs, ``k``-bit output — and avoids the
    overflow artefacts a pre-quantised narrow adder would exhibit under
    full-range random stimulus.

    The *hardware* cost charged for these operators (see
    ``repro.hardware``) is that of a ``output_width``-bit adder: in a sized
    datapath the quantisation happens once at the producing operator's output,
    and every consumer physically works on the narrow data.  Rounding may push
    the result one code past full scale; that single overflow case is
    saturated, as a real rounding stage would.
    """

    #: Rounding mode applied when eliminating the LSBs.
    rounding_mode: RoundingMode = RoundingMode.TRUNCATE
    #: Short mnemonic used in the operator name.
    mnemonic: str = "ADDt"
    #: Quantising the wrapped accurate sum is a pure function of ``a + b``,
    #: so LUT backends may evaluate these adders via a sum-indexed table.
    sum_addressable = True

    def __init__(self, input_width: int = 16, output_width: int = 16) -> None:
        super().__init__(input_width)
        if not 2 <= output_width <= input_width:
            raise ValueError("output width must lie in [2, input_width]")
        self._output_width = int(output_width)

    @property
    def name(self) -> str:
        return f"{self.mnemonic}({self.input_width},{self.output_width})"

    @property
    def output_width(self) -> int:
        return self._output_width

    @property
    def dropped_bits(self) -> int:
        """Number of LSBs removed from each operand."""
        return self.input_width - self._output_width

    @property
    def output_shift(self) -> int:
        return self.dropped_bits

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "output_width": self._output_width,
            "rounding": self.rounding_mode.value,
        }

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        total = self.reference(a, b)
        reduced = np.asarray(drop_lsbs(total, self.dropped_bits, self.rounding_mode))
        return np.asarray(
            saturate_to_width(reduced, self._output_width), dtype=np.int64
        )


class TruncatedAdder(QuantizedOutputAdder):
    """``ADDt(N, k)``: accurate sum truncated to its ``k`` most significant bits."""

    rounding_mode = RoundingMode.TRUNCATE
    mnemonic = "ADDt"


class RoundedAdder(QuantizedOutputAdder):
    """``ADDr(N, k)``: accurate sum rounded to its ``k`` most significant bits."""

    rounding_mode = RoundingMode.ROUND
    mnemonic = "ADDr"


class RoundToNearestEvenAdder(QuantizedOutputAdder):
    """Convergent-rounding variant (ablation extension, unbiased quantisation)."""

    rounding_mode = RoundingMode.ROUND_TO_NEAREST_EVEN
    mnemonic = "ADDrne"
