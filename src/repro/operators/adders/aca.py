"""Almost Correct Adder (ACA) — Verma, Brisk, Ienne, DATE 2008.

ACA is a speculative adder: each output bit ``i`` is produced by an accurate
sub-adder that only looks at the ``P + 1`` operand bits ``i .. i-P`` instead
of the full carry chain.  The speculation fails whenever a carry chain longer
than ``P`` crosses position ``i - P``, which is rare for random operands but
produces a large-amplitude ("fail rare / fail moderate") error.

The functional model below is bit-accurate with respect to this definition and
vectorised over NumPy arrays; the matching hardware structure (one small
sub-adder per output bit, heavily shared in practice) is modelled in
``repro.hardware.builders``.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ..base import AdderOperator
from ..bitops import mask, to_signed, to_unsigned


class ACAAdder(AdderOperator):
    """Almost Correct Adder ``ACA(N, P)``.

    Parameters
    ----------
    input_width:
        Operand width ``N``.
    prediction_bits:
        Carry-prediction depth ``P``: each output bit uses the accurate sum of
        the ``P + 1`` operand bits at and below its own position.
    """

    def __init__(self, input_width: int = 16, prediction_bits: int = 4) -> None:
        super().__init__(input_width)
        if not 1 <= prediction_bits <= input_width:
            raise ValueError("prediction_bits must lie in [1, input_width]")
        self._prediction_bits = int(prediction_bits)

    # ------------------------------------------------------------------ #
    # Descriptors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"ACA({self.input_width},{self._prediction_bits})"

    @property
    def prediction_bits(self) -> int:
        return self._prediction_bits

    @property
    def output_width(self) -> int:
        return self.input_width

    @property
    def output_shift(self) -> int:
        return 0

    @property
    def params(self) -> Dict[str, object]:
        return {
            "input_width": self.input_width,
            "prediction_bits": self._prediction_bits,
        }

    # ------------------------------------------------------------------ #
    # Functional model
    # ------------------------------------------------------------------ #
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.input_width
        p = self._prediction_bits
        ua = to_unsigned(a, n)
        ub = to_unsigned(b, n)

        result = np.zeros_like(ua)
        for i in range(n):
            low = max(0, i - p)
            window = i - low  # index of the wanted bit inside the window sum
            wa = (ua >> low) & mask(i - low + 1)
            wb = (ub >> low) & mask(i - low + 1)
            window_sum = wa + wb
            bit = (window_sum >> window) & 1
            result |= bit << i
        return to_signed(result, n)

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #
    def speculation_failed(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Boolean mask of operand pairs for which the speculation is wrong."""
        return self.error(a, b) != 0

    def worst_case_error_magnitude(self) -> int:
        """Upper bound of the absolute integer error (reference-grid LSBs).

        A failed speculation flips output bits at positions ``>= P``; the
        error magnitude is bounded by the weight of the affected bits.
        """
        n = self.input_width
        p = self._prediction_bits
        return (1 << n) - (1 << p)
