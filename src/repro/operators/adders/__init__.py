"""Adder operator models (accurate, data-sized, approximate)."""
from .accurate import (
    ExactAdder,
    QuantizedOutputAdder,
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from .aca import ACAAdder
from .etaiv import ETAIIAdder, ETAIVAdder
from .rcaapx import (
    APPROX_FA_TYPE1,
    APPROX_FA_TYPE2,
    APPROX_FA_TYPE3,
    APPROX_FA_TYPES,
    EXACT_FA,
    FullAdderTruthTable,
    RCAApxAdder,
)

__all__ = [
    "ExactAdder",
    "QuantizedOutputAdder",
    "TruncatedAdder",
    "RoundedAdder",
    "RoundToNearestEvenAdder",
    "ACAAdder",
    "ETAIIAdder",
    "ETAIVAdder",
    "RCAApxAdder",
    "FullAdderTruthTable",
    "EXACT_FA",
    "APPROX_FA_TYPE1",
    "APPROX_FA_TYPE2",
    "APPROX_FA_TYPE3",
    "APPROX_FA_TYPES",
]
