"""APXPERF core: registry, characterisation, exploration, datapath energy,
the :class:`ApproxContext` / execution-backend layer consumed by the
application kernels, and the fluent :class:`Study` pipeline tying them
together."""
from .backends import (
    DirectBackend,
    ExecutionBackend,
    LutBackend,
    clear_table_cache,
    create_backend,
    parse_backend,
    register_backend,
    registered_backends,
    table_cache_size,
)
from .characterization import Apxperf, OperatorCharacterization
from .context import ApproxContext
from .datapath import (
    DatapathEnergyBreakdown,
    DatapathEnergyModel,
    OperationCounter,
    OperationCounts,
    effective_data_width,
    minimal_adder_for,
    minimal_multiplier_for,
)
from .exploration import (
    default_adder_sweep,
    unique_by_name,
    default_multiplier_set,
    dominates,
    pareto_filter,
    pareto_front,
    sweep_aca_adders,
    sweep_etaii_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_rounded_multipliers,
    sweep_truncated_adders,
    sweep_truncated_multipliers,
)
from .registry import (
    create_operator,
    parse_operator,
    parse_operators,
    parse_spec,
    register_operator,
    registered_mnemonics,
)
from .results import ExperimentResult, ResultBundle

# Imported last: the Study pipeline builds on the registries, the energy
# model and the workload plugin package.
from .study import Study, SweepOutcome  # noqa: E402  (import order is load-bearing)

__all__ = [
    "ApproxContext",
    "ExecutionBackend",
    "DirectBackend",
    "LutBackend",
    "register_backend",
    "registered_backends",
    "create_backend",
    "parse_backend",
    "clear_table_cache",
    "table_cache_size",
    "Apxperf",
    "OperatorCharacterization",
    "OperationCounts",
    "OperationCounter",
    "DatapathEnergyModel",
    "DatapathEnergyBreakdown",
    "effective_data_width",
    "minimal_multiplier_for",
    "minimal_adder_for",
    "create_operator",
    "parse_operator",
    "parse_operators",
    "parse_spec",
    "register_operator",
    "registered_mnemonics",
    "Study",
    "SweepOutcome",
    "unique_by_name",
    "sweep_truncated_adders",
    "sweep_rounded_adders",
    "sweep_aca_adders",
    "sweep_etaii_adders",
    "sweep_etaiv_adders",
    "sweep_rcaapx_adders",
    "default_adder_sweep",
    "default_multiplier_set",
    "sweep_truncated_multipliers",
    "sweep_rounded_multipliers",
    "pareto_front",
    "pareto_filter",
    "dominates",
    "ExperimentResult",
    "ResultBundle",
]
