"""Design-space sweeps and Pareto analysis.

These helpers generate exactly the operator configuration sets swept in the
paper — truncated/rounded adders from 15 down to 2 output bits, every ACA
prediction depth, every ETAIV block size, every RCAApx (accurate-bits, cell
type) pair — and extract accuracy-versus-cost Pareto fronts from the
resulting characterisations.
"""
from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from ..operators.adders import (
    ACAAdder,
    ETAIIAdder,
    ETAIVAdder,
    RCAApxAdder,
    RoundedAdder,
    TruncatedAdder,
)
from ..operators.base import Operator
from ..operators.multipliers import (
    AAMMultiplier,
    ABMMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)


# --------------------------------------------------------------------------- #
# Adder sweeps (Figures 3, 4 and 5/6 of the paper)
# --------------------------------------------------------------------------- #
def sweep_truncated_adders(input_width: int = 16,
                           output_widths: Sequence[int] | None = None
                           ) -> List[Operator]:
    """``ADDt(N, k)`` for ``k`` from ``N - 1`` down to 2 (or a custom list)."""
    if output_widths is None:
        output_widths = range(input_width - 1, 1, -1)
    return [TruncatedAdder(input_width, k) for k in output_widths]


def sweep_rounded_adders(input_width: int = 16,
                         output_widths: Sequence[int] | None = None
                         ) -> List[Operator]:
    """``ADDr(N, k)`` for ``k`` from ``N - 1`` down to 2 (or a custom list)."""
    if output_widths is None:
        output_widths = range(input_width - 1, 1, -1)
    return [RoundedAdder(input_width, k) for k in output_widths]


def sweep_aca_adders(input_width: int = 16,
                     prediction_bits: Sequence[int] | None = None
                     ) -> List[Operator]:
    """``ACA(N, P)`` over every speculation depth."""
    if prediction_bits is None:
        prediction_bits = range(2, input_width)
    return [ACAAdder(input_width, p) for p in prediction_bits]


def sweep_etaiv_adders(input_width: int = 16,
                       block_sizes: Sequence[int] | None = None
                       ) -> List[Operator]:
    """``ETAIV(N, X)`` for every block size dividing the operand width."""
    if block_sizes is None:
        block_sizes = [x for x in range(1, input_width) if input_width % x == 0]
    return [ETAIVAdder(input_width, x) for x in block_sizes]


def sweep_etaii_adders(input_width: int = 16,
                       block_sizes: Sequence[int] | None = None
                       ) -> List[Operator]:
    """``ETAII(N, X)`` sweep (predecessor design, kept for comparison)."""
    if block_sizes is None:
        block_sizes = [x for x in range(1, input_width) if input_width % x == 0]
    return [ETAIIAdder(input_width, x) for x in block_sizes]


def sweep_rcaapx_adders(input_width: int = 16,
                        approximate_lsbs: Sequence[int] | None = None,
                        fa_types: Sequence[int] = (1, 2, 3)) -> List[Operator]:
    """``RCAApx(N, M, type)`` over approximate-LSB counts and cell types."""
    if approximate_lsbs is None:
        approximate_lsbs = range(2, input_width)
    return [RCAApxAdder(input_width, m, t) for t in fa_types for m in approximate_lsbs]


def unique_by_name(operators: Iterable[Operator]) -> List[Operator]:
    """Drop duplicate configurations (same ``name``), keeping first occurrence.

    Sweep helpers can be composed freely; deduplicating by name guarantees a
    sweep never evaluates — or charges the shared hardware-characterisation
    cache for — the same configuration twice.
    """
    seen = set()
    unique: List[Operator] = []
    for operator in operators:
        if operator.name not in seen:
            seen.add(operator.name)
            unique.append(operator)
    return unique


def default_adder_sweep(input_width: int = 16) -> List[Operator]:
    """The full 16-bit adder comparison set of Figures 3 and 4."""
    operators: List[Operator] = []
    operators.extend(sweep_truncated_adders(input_width))
    operators.extend(sweep_rounded_adders(input_width))
    operators.extend(sweep_aca_adders(input_width, range(2, input_width, 2)))
    operators.extend(sweep_etaiv_adders(input_width))
    operators.extend(sweep_rcaapx_adders(input_width, range(2, input_width, 2)))
    return unique_by_name(operators)


# --------------------------------------------------------------------------- #
# Multiplier sets (Table I)
# --------------------------------------------------------------------------- #
def default_multiplier_set(input_width: int = 16) -> List[Operator]:
    """The fixed-width multiplier comparison set of Table I."""
    return [
        TruncatedMultiplier(input_width, input_width),
        AAMMultiplier(input_width),
        ABMMultiplier(input_width),
    ]


def sweep_truncated_multipliers(input_width: int = 16,
                                output_widths: Sequence[int] | None = None
                                ) -> List[Operator]:
    """``MULt(N, k)`` over output widths (2 to 2N as in the paper's sweep)."""
    if output_widths is None:
        output_widths = range(2, 2 * input_width + 1, 2)
    return [TruncatedMultiplier(input_width, k) for k in output_widths]


def sweep_rounded_multipliers(input_width: int = 16,
                              output_widths: Sequence[int] | None = None
                              ) -> List[Operator]:
    """``MULr(N, k)`` over output widths."""
    if output_widths is None:
        output_widths = range(2, 2 * input_width + 1, 2)
    return [RoundedMultiplier(input_width, k) for k in output_widths]


# --------------------------------------------------------------------------- #
# Pareto analysis
# --------------------------------------------------------------------------- #
def pareto_front(points: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Two-objective Pareto front assuming both objectives are minimised."""
    items = sorted(points)
    front: List[Tuple[float, float]] = []
    best_second = float("inf")
    for first, second in items:
        if second < best_second:
            front.append((first, second))
            best_second = second
    return front


def pareto_filter(records: Sequence[object],
                  objectives: Tuple[Callable[[object], float],
                                    Callable[[object], float]]) -> List[object]:
    """Keep only the records lying on the (min, min) Pareto front."""
    first, second = objectives
    decorated = sorted(records, key=lambda r: (first(r), second(r)))
    front: List[object] = []
    best_second = float("inf")
    for record in decorated:
        if second(record) < best_second:
            front.append(record)
            best_second = second(record)
    return front


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """Whether point ``a`` Pareto-dominates point ``b`` (both minimised)."""
    return (a[0] <= b[0] and a[1] <= b[1]) and (a[0] < b[0] or a[1] < b[1])
