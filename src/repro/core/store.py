"""Persistent disk-backed store for characterisations and sweep records.

The in-process caches (the :class:`~repro.core.datapath.DatapathEnergyModel`
hardware cache, the LUT table cache) die with the interpreter, so every new
session re-synthesises and re-simulates the same operator configurations.
:class:`ResultStore` persists those records as one small JSON document per
key under a directory, so repeated explorations across sessions — and across
CI workflow steps, via ``actions/cache`` — skip the expensive work entirely.

Design constraints:

* **Corruption is a cache miss, never a crash.**  A truncated, garbled or
  concurrently-overwritten file simply fails validation and the caller
  recomputes; the store never propagates a decode error.
* **Writes are atomic and durable.**  Records are written to a
  same-directory temporary file, fsynced, and moved into place with
  ``os.replace``, so a reader can never see a partial document under the
  final name — and a machine crash right after the rename cannot leave an
  empty file behind it (the fleet queue leans on this: a SIGKILLed
  worker's store must contain only complete records).  Set
  ``REPRO_STORE_FSYNC=0`` to trade that durability back for speed on
  throwaway stores.
* **Keys are structural.**  A key is any JSON-able structure (dicts, lists,
  numbers, strings); NumPy arrays and dataclasses are canonicalised by
  content (:func:`canonical_key`), so e.g. a workload configuration holding
  a stimulus image fingerprints the pixels, not the object identity.  The
  stored envelope embeds the canonical key and is checked on load, making
  hash collisions harmless.
"""
from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..faults.inject import maybe_fault

#: Envelope schema version; bump when the on-disk layout changes.  Old
#: records then fail validation and are recomputed (never misread).
STORE_VERSION = 1

#: Subdirectory :meth:`ResultStore.scrub` moves corrupt records into.
#: Everything under it is invisible to loads, walks and absorbs.
QUARANTINE_DIR = "quarantine"

StoreLike = Union["ResultStore", str, Path, None]


def canonical_key(value: object) -> object:
    """Canonical JSON-able form of an arbitrary key structure.

    Dictionaries are sorted, tuples become lists, NumPy scalars unwrap and
    NumPy arrays are replaced by a content fingerprint (shape, dtype and a
    SHA-1 of the bytes).  Dataclass instances (e.g. a K-means point cloud)
    canonicalise field by field.  Anything else falls back to ``repr`` —
    stable for the value types used in workload configurations.
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(k): canonical_key(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonical_key(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {
            "__ndarray__": hashlib.sha1(data.tobytes()).hexdigest(),
            "shape": list(data.shape),
            "dtype": str(data.dtype),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: canonical_key(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return {"__repr__": repr(value)}


def key_digest(kind: str, key: object) -> str:
    """Stable hex digest naming the record file of ``key`` within ``kind``."""
    canonical = json.dumps({"kind": kind, "key": canonical_key(key)},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode()).hexdigest()


class ResultStore:
    """Directory of JSON records keyed by structural content.

    One record per ``(kind, key)`` pair, laid out as
    ``<directory>/<kind>/<digest>.json``.  ``kind`` partitions the namespace
    (``"hardware"`` for operator characterisations, ``"sweep"`` for workload
    sweep records, ``"result"`` for whole experiment results) so a cache of
    one kind can be inspected or purged without touching the others.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        # Writes are atomic (os.replace) and corruption reads as a miss, so
        # cross-process concurrency was always safe; this lock additionally
        # makes the *in-process* read-modify paths (absorb's check-then-copy,
        # the counters) coherent when many server threads share one store.
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._saves = 0
        self._absorbed = 0
        self._conflicts = 0

    @classmethod
    def of(cls, store: StoreLike) -> Optional["ResultStore"]:
        """Coerce a store, a directory path, or ``None``."""
        if store is None or isinstance(store, ResultStore):
            return store
        return cls(store)

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    def path_for(self, kind: str, key: object) -> Path:
        return self.directory / kind / f"{key_digest(kind, key)}.json"

    def load(self, kind: str, key: object) -> Optional[Dict[str, object]]:
        """Stored payload of ``(kind, key)``, or ``None`` on any miss.

        A missing file, malformed JSON, a wrong envelope version and a key
        mismatch (hash collision or hand-edited file) all read as a clean
        cache miss.
        """
        payload = self._load_validated(kind, key)
        with self._lock:
            if payload is None:
                self._misses += 1
            else:
                self._hits += 1
        return payload

    def _load_validated(self, kind: str, key: object
                        ) -> Optional[Dict[str, object]]:
        path = self.path_for(kind, key)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("store_version") != STORE_VERSION:
            return None
        if document.get("kind") != kind:
            return None
        if document.get("key") != canonical_key(key):
            return None
        payload = document.get("payload")
        return payload if isinstance(payload, dict) else None

    def save(self, kind: str, key: object,
             payload: Dict[str, object]) -> Optional[Path]:
        """Persist ``payload`` under ``(kind, key)``; atomic via rename.

        Returns the record path, or ``None`` when the payload cannot be
        serialised or the filesystem refuses the write — persistence is an
        optimisation, never a reason to fail the computation that produced
        the payload.
        """
        from .results import _jsonify

        path = self.path_for(kind, key)
        document = {
            "store_version": STORE_VERSION,
            "kind": kind,
            "key": canonical_key(key),
            "payload": payload,
        }
        try:
            text = json.dumps(document, default=_jsonify)
        except TypeError:
            return None
        temporary = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        fault = maybe_fault("store.save")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if fault is not None and fault.kind == "torn_write":
                # Injected: a crash mid-write on a non-atomic filesystem
                # leaves a prefix of the document under the final name.
                # load() reads it as a miss; `store scrub` quarantines it.
                keep = float(fault.params.get("keep_fraction", 0.5))
                path.write_text(text[:max(0, int(len(text) * keep))])
                return None
            if fault is not None and fault.kind == "fsync_error":
                raise OSError("injected fault: fsync failed")
            _write_durable(temporary, text)
            os.replace(temporary, path)
        except OSError:
            temporary.unlink(missing_ok=True)
            return None
        with self._lock:
            self._saves += 1
        return path

    def contains(self, kind: str, key: object) -> bool:
        """Whether a *valid* record exists for ``(kind, key)``."""
        return self.load(kind, key) is not None

    def absorb(self, other: StoreLike) -> int:
        """Fold another store's records into this one; returns the count.

        Record files are content-addressed (the filename is the digest of
        the structural key), so absorbing is a plain file copy: records
        already present here are left untouched, new ones are copied
        atomically (fsync + rename, like :meth:`save`).  This is the
        fan-in step of a sharded or fleet run — every shard's store folds
        into one, and a later resumed or unsharded run sees the union of
        everything any shard computed.  Absorbing the same source twice —
        or two overlapping sources, concurrently, from several threads —
        is idempotent: a record that already exists here is never
        rewritten, so the first copy wins and re-absorption counts zero.
        Unreadable source files are skipped (corruption is a miss, never a
        crash).

        Counters (see :meth:`stats`): ``absorbed`` accumulates records
        actually copied in; ``conflicts`` counts records skipped because
        this store already held a *byte-different* record under the same
        digest — the signature of a reclaimed fleet task whose two
        attempts recorded non-identical payloads (same structural key, so
        either copy is valid; byte-identical overlaps are silent).
        """
        source = ResultStore.of(other)
        if source is None or not source.directory.is_dir():
            return 0
        absorbed = 0
        conflicts = 0
        with self._lock:
            for record in source._record_files():
                relative = record.relative_to(source.directory)
                target = self.directory / relative
                try:
                    text = record.read_text()
                except OSError:
                    continue
                fault = maybe_fault("store.absorb")
                if fault is not None and fault.kind == "corrupt":
                    # Injected: the record is damaged in flight.  The
                    # copy lands corrupt, reads as a miss (recomputed on
                    # demand) and `store scrub` quarantines it.
                    drop = int(fault.params.get("drop_bytes", 16))
                    text = text[:-drop] if drop < len(text) else ""
                if target.exists():
                    try:
                        if target.read_text() != text:
                            conflicts += 1
                    except OSError:
                        pass
                    continue
                temporary = target.with_suffix(
                    f".{os.getpid()}.{threading.get_ident()}.tmp")
                try:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    _write_durable(temporary, text)
                    os.replace(temporary, target)
                except OSError:
                    temporary.unlink(missing_ok=True)
                    continue
                absorbed += 1
            self._absorbed += absorbed
            self._conflicts += conflicts
        return absorbed

    # ------------------------------------------------------------------ #
    # Scrub
    # ------------------------------------------------------------------ #
    def _record_files(self, kind: Optional[str] = None) -> Iterator[Path]:
        """Record files on disk, in sorted order, quarantine excluded."""
        base = self.directory if kind is None else self.directory / kind
        if not base.is_dir():
            return
        for record in sorted(base.rglob("*.json")):
            relative = record.relative_to(self.directory)
            if relative.parts and relative.parts[0] == QUARANTINE_DIR:
                continue
            yield record

    def _validate_record(self, kind: str, path: Path) -> Optional[str]:
        """Why the record at ``path`` is invalid, or ``None`` when sound.

        The checks mirror :meth:`_load_validated` plus one it cannot do
        without the lookup key: the filename must equal the digest of the
        *embedded* canonical key, so a record renamed, truncated or
        hand-edited under the wrong name is caught even though its body
        parses.
        """
        try:
            document = json.loads(path.read_text())
        except OSError:
            return "unreadable"
        except ValueError:
            return "invalid_json"
        if not isinstance(document, dict):
            return "not_an_object"
        if document.get("store_version") != STORE_VERSION:
            return "version_mismatch"
        if document.get("kind") != kind:
            return "kind_mismatch"
        if not isinstance(document.get("payload"), dict):
            return "bad_payload"
        if key_digest(kind, document.get("key")) != path.stem:
            return "digest_mismatch"
        return None

    def scrub(self, quarantine: bool = True) -> Dict[str, object]:
        """Detect corrupt/truncated records; quarantine and report them.

        Corruption was always a clean cache *miss* — this closes the
        loop by finding those misses proactively: every record file is
        validated, and invalid ones are moved (atomic ``os.replace``,
        directory structure preserved) into ``quarantine/`` where no
        load, walk or absorb will ever touch them again — so a torn
        write can never be re-absorbed into a healthy store, and the
        forensic bytes survive for inspection.  ``quarantine=False`` is
        a dry run: count and classify, move nothing.  Returns the
        ``repro store scrub`` JSON document.
        """
        scanned = valid = moved = 0
        reasons: Dict[str, int] = {}
        with self._lock:
            for record in list(self._record_files()):
                relative = record.relative_to(self.directory)
                kind = relative.parts[0] if len(relative.parts) > 1 else ""
                scanned += 1
                reason = self._validate_record(kind, record)
                if reason is None:
                    valid += 1
                    continue
                reasons[reason] = reasons.get(reason, 0) + 1
                if not quarantine:
                    continue
                target = self.directory / QUARANTINE_DIR / relative
                try:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(record, target)
                    moved += 1
                except OSError:
                    continue
        return {
            "directory": str(self.directory),
            "scanned": scanned,
            "valid": valid,
            "corrupt": sum(reasons.values()),
            "quarantined": moved,
            "reasons": dict(sorted(reasons.items())),
            "quarantine_dir": str(self.directory / QUARANTINE_DIR),
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entry_count(self, kind: Optional[str] = None) -> int:
        """Number of record files on disk (validity not checked)."""
        return sum(1 for _ in self._record_files(kind))

    def stats(self) -> Dict[str, object]:
        """On-disk footprint plus this instance's in-process counters.

        ``records`` / ``bytes`` walk the directory (validity not checked);
        ``hits`` / ``misses`` / ``saves`` count this instance's own
        :meth:`load` and :meth:`save` outcomes — the numbers the evaluation
        server's ``status`` action reports — and ``absorbed`` /
        ``conflicts`` its :meth:`absorb` outcomes (the numbers the fleet
        harvest reports).  Counters are per instance, not per directory:
        two stores opened on the same path count separately.
        ``quarantined`` counts the record files parked under
        ``quarantine/`` by :meth:`scrub`; they are excluded from
        ``records`` / ``bytes`` like from every other walk.
        """
        records = 0
        size = 0
        quarantined = 0
        for record in self._record_files():
            try:
                size += record.stat().st_size
            except OSError:
                continue
            records += 1
        quarantine = self.directory / QUARANTINE_DIR
        if quarantine.is_dir():
            quarantined = sum(1 for _ in quarantine.rglob("*.json"))
        with self._lock:
            return {
                "directory": str(self.directory),
                "records": records,
                "bytes": size,
                "quarantined": quarantined,
                "hits": self._hits,
                "misses": self._misses,
                "saves": self._saves,
                "absorbed": self._absorbed,
                "conflicts": self._conflicts,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultStore {self.directory}>"


def _write_durable(path: Path, text: str) -> None:
    """Write ``text`` and fsync it, so a post-rename crash keeps the bytes.

    ``REPRO_STORE_FSYNC=0`` skips the sync for throwaway stores (e.g. the
    tier-1 test suite's tmp dirs, where durability only costs time).
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if os.environ.get("REPRO_STORE_FSYNC", "1") not in ("", "0"):
            handle.flush()
            os.fsync(handle.fileno())
