"""ApproxContext: the one object every application kernel receives.

The seed kernels each hand-wired an ``(adder, multiplier, counter)`` triple
and dispatched every arithmetic operation straight at the operator models.
:class:`ApproxContext` bundles that plumbing — the adder, the multiplier, the
datapath word length, the operation counter and the energy charging — behind
three instrumented primitives (:meth:`add`, :meth:`sub`, :meth:`mul`) and
routes their evaluation through a pluggable
:class:`~repro.core.backends.ExecutionBackend`::

    from repro.core import ApproxContext

    ctx = ApproxContext(adder="ADDt(16,10)", backend="lut")
    fft = FixedPointFFT(32, context=ctx)
    result = fft.forward(signal)
    print(ctx.counts, ctx.energy_breakdown(DatapathEnergyModel()))

Operands may be arrays or plain scalars; scalars are broadcast (and let the
LUT backend use its constant-operand tables for DCT coefficients, FFT
twiddles, HEVC filter taps and K-means centroids).  Operation counts always
equal the broadcast element count, matching what the seed kernels recorded.

Stage-fused kernels additionally pass ``bank=True`` when the second operand
is a *coefficient bank* — a small set of constants broadcast over the data
(one FFT stage's twiddles, a DCT pass's cosine rows, all taps of an HEVC
phase, every K-means centroid) — which lets the LUT backend group the call
by unique constant and serve each group from its per-constant tables.  The
hint never changes results or counts; the direct backend evaluates the same
signature bit-exactly.

**Kernel contract:** every operand handed to :meth:`add` / :meth:`sub` /
:meth:`mul` must live on the context's ``data_width`` grid (route
intermediate values through :meth:`wrap`, as all application kernels do).
The context forwards that guarantee to the backend (``in_range=True``
whenever the operator's input width matches the datapath), which skips its
operand range scans on the hot path; a call whose operands may leave the
grid — the HEVC filter's second separable pass, whose first-pass
intermediates can exceed the pixel range — withdraws the guarantee with
``in_range=False``.  A wrong claim never corrupts the shared tables (writes
are guarded and overshooting reads fail closed onto the functional model),
but the violating call itself may receive values for aliased operands —
pass ``in_range=False`` whenever the grid invariant is not certain.
"""
from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..fxp.quantize import wrap_to_width
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator, Operator
from ..operators.multipliers import TruncatedMultiplier
from .backends import BackendLike, ExecutionBackend, parse_backend
from .datapath import (
    DatapathEnergyBreakdown,
    DatapathEnergyModel,
    OperationCounter,
    OperationCounts,
)
from .registry import parse_operator

OperatorLike = Union[Operator, str]
ArrayLike = Union[np.ndarray, int]


def _resolve(operator: Optional[OperatorLike], fallback: Operator) -> Operator:
    if operator is None:
        return fallback
    if isinstance(operator, str):
        return parse_operator(operator)
    return operator


def _broadcast_count(a: ArrayLike, b: ArrayLike) -> int:
    shape_a = np.shape(a)
    shape_b = np.shape(b)
    if shape_a == shape_b or not shape_b:
        shape = shape_a
    elif not shape_a:
        shape = shape_b
    else:
        shape = np.broadcast_shapes(shape_a, shape_b)
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


class ApproxContext:
    """Execution context binding operators, counting and a backend together.

    Parameters
    ----------
    adder / multiplier:
        Operator models (instances or paper-style spec strings such as
        ``"ADDt(16,10)"``).  ``None`` selects the exact adder and the
        fixed-width truncated multiplier — the exact fixed-point baseline,
        identical to the seed kernels' defaults.
    data_width:
        Word length of the datapath (16 bits in every paper experiment).
    backend:
        Execution backend — an instance, a registry spec such as ``"lut"``,
        or ``None`` for the bit-exact ``"direct"`` reference.
    counter:
        Operation counter to charge; a fresh one is created when omitted.
        Sharing one counter across kernels accumulates a whole pipeline's
        inventory; :meth:`counts_since` extracts per-run deltas.
    """

    def __init__(self, adder: Optional[OperatorLike] = None,
                 multiplier: Optional[OperatorLike] = None,
                 data_width: int = 16,
                 backend: BackendLike = None,
                 counter: Optional[OperationCounter] = None) -> None:
        if data_width < 2:
            raise ValueError("data_width must be at least 2 bits")
        self.data_width = int(data_width)
        self.frac_bits = self.data_width - 1
        resolved_adder = _resolve(adder, ExactAdder(self.data_width))
        resolved_multiplier = _resolve(
            multiplier, TruncatedMultiplier(self.data_width, self.data_width))
        if not isinstance(resolved_adder, AdderOperator):
            raise TypeError(f"{resolved_adder.name} is not an adder")
        if not isinstance(resolved_multiplier, MultiplierOperator):
            raise TypeError(f"{resolved_multiplier.name} is not a multiplier")
        self.adder: AdderOperator = resolved_adder
        self.multiplier: MultiplierOperator = resolved_multiplier
        self.backend: ExecutionBackend = parse_backend(backend)
        self.counter = counter if counter is not None else OperationCounter()
        self._wrap_mask = np.int64((1 << self.data_width) - 1)
        self._wrap_sign = np.int64(1 << (self.data_width - 1))
        # The kernel contract keeps operands on the data_width grid, so the
        # backend may skip range scans whenever the operator consumes that
        # exact width (see the module docstring).
        self._adder_in_range = self.adder.input_width == self.data_width
        self._multiplier_in_range = \
            self.multiplier.input_width == self.data_width

    # ------------------------------------------------------------------ #
    # Instrumented arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a: ArrayLike, b: ArrayLike, bank: bool = False,
            in_range: Optional[bool] = None) -> np.ndarray:
        """Aligned sum through the adder model; charges one add per element.

        ``bank=True`` flags ``b`` as a coefficient bank (a small constant
        set broadcast over ``a``); results and counts are unaffected.
        ``in_range=False`` withdraws the kernel-contract guarantee for this
        call (a kernel whose operands may leave the datapath grid, like the
        HEVC filter's second separable pass, must pass it).
        """
        self.counter.count_additions(_broadcast_count(a, b))
        return np.asarray(
            self.backend.execute(
                self.adder, a, b, bank=bank,
                in_range=self._adder_in_range if in_range is None
                else bool(in_range)),
            dtype=np.int64)

    def sub(self, a: ArrayLike, b: ArrayLike, bank: bool = False,
            in_range: Optional[bool] = None) -> np.ndarray:
        """Aligned difference: ``b`` is two's-complement negated, then added.

        Charged as one addition per element, exactly as the seed kernels
        counted their subtractions (negation is free in hardware).
        """
        if np.ndim(b) == 0:
            negated: ArrayLike = wrap_to_width(-int(b), self.data_width)
        else:
            negated = np.asarray(
                wrap_to_width(-np.asarray(b, dtype=np.int64), self.data_width),
                dtype=np.int64)
        return self.add(a, negated, bank=bank, in_range=in_range)

    def mul(self, a: ArrayLike, b: ArrayLike, bank: bool = False,
            in_range: Optional[bool] = None) -> np.ndarray:
        """Aligned product through the multiplier model; one mul per element.

        ``bank=True`` flags ``b`` as a coefficient bank (a small constant
        set broadcast over ``a``); results and counts are unaffected.
        ``in_range=False`` withdraws the kernel-contract guarantee for this
        call, restoring the backend's operand scans.
        """
        self.counter.count_multiplications(_broadcast_count(a, b))
        return np.asarray(
            self.backend.execute(
                self.multiplier, a, b, bank=bank,
                in_range=self._multiplier_in_range if in_range is None
                else bool(in_range)),
            dtype=np.int64)

    def wrap(self, value: ArrayLike) -> np.ndarray:
        """Wrap a value onto the context's datapath word length."""
        # Inline two's-complement wrap (hot path: one call per kernel MAC).
        masked = np.asarray(value, dtype=np.int64) & self._wrap_mask
        return (masked ^ self._wrap_sign) - self._wrap_sign

    # ------------------------------------------------------------------ #
    # Counting and energy
    # ------------------------------------------------------------------ #
    @property
    def counts(self) -> OperationCounts:
        """Snapshot of the operations charged so far."""
        return self.counter.snapshot()

    def counts_since(self, start: OperationCounts) -> OperationCounts:
        """Operations charged since an earlier :attr:`counts` snapshot."""
        return self.counts - start

    def reset_counts(self) -> None:
        """Zero the operation counter."""
        self.counter.reset()

    def energy_breakdown(self, model: Optional[DatapathEnergyModel] = None,
                         constant_coefficient_multiplications: bool = False
                         ) -> DatapathEnergyBreakdown:
        """Charge the accumulated counts with Equation 1 (paper's Eq. 1)."""
        model = model if model is not None else DatapathEnergyModel()
        return model.application_energy_pj(
            self.counts, self.adder, self.multiplier,
            constant_coefficient_multiplications=constant_coefficient_multiplications)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def exact_reference(self) -> "ApproxContext":
        """Fresh context with exact operators on the same width and backend.

        Application kernels use this for their bit-exact reference runs
        (e.g. the HEVC filter's reference interpolation); sharing the
        backend keeps any LUT tables for the exact operators warm.
        """
        return ApproxContext(data_width=self.data_width, backend=self.backend)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ApproxContext {self.adder.name} / {self.multiplier.name} "
                f"width={self.data_width} backend={self.backend.name!r}>")
