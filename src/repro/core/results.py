"""Result containers, serialisation and paper-style table rendering.

APXPERF stores its fused hardware + functional results as MAT files and
ships MATLAB scripts to browse them; here the equivalent is a JSON document
per experiment plus plain-text table rendering that mirrors the layout of the
paper's tables, so a run of the benchmark harness can be compared line by
line with the publication.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


@dataclass
class ExperimentResult:
    """One reproduced table or figure: named rows/series of numeric values."""

    experiment: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append a row; every declared column must be present."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"missing columns {missing} in row for {self.experiment}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        """Extract one column across every row."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key_value: object) -> Dict[str, object]:
        """First row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise KeyError(f"no row with {key_column} == {key_value!r}")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "metadata": dict(self.metadata),
        }

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the result as a JSON document and return the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, default=_jsonify))
        return target

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ExperimentResult":
        data = json.loads(Path(path).read_text())
        result = cls(
            experiment=data["experiment"],
            description=data["description"],
            columns=list(data["columns"]),
            metadata=dict(data.get("metadata", {})),
        )
        for row in data.get("rows", []):
            result.rows.append(dict(row))
        return result

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render a fixed-width text table resembling the paper's layout."""
        headers = list(self.columns)
        formatted_rows: List[List[str]] = []
        for row in self.rows:
            formatted_rows.append([_format_cell(row[c], float_format) for c in headers])
        widths = [len(h) for h in headers]
        for cells in formatted_rows:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines = [self.experiment + " — " + self.description]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for cells in formatted_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def _jsonify(value: object) -> object:
    """Best-effort conversion of NumPy scalars/arrays for JSON output."""
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    raise TypeError(f"cannot serialise {type(value).__name__}")


@dataclass
class ResultBundle:
    """Collection of experiment results (e.g. the whole evaluation section)."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def add(self, result: ExperimentResult) -> None:
        self.results[result.experiment] = result

    def get(self, experiment: str) -> ExperimentResult:
        return self.results[experiment]

    def save_all(self, directory: Union[str, Path]) -> List[Path]:
        """Save every result as ``<experiment>.json`` under ``directory``."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        return [result.save_json(base / f"{name}.json")
                for name, result in sorted(self.results.items())]

    def summary(self) -> str:
        """Short multi-line listing of the bundled experiments."""
        lines = []
        for name in sorted(self.results):
            result = self.results[name]
            lines.append(f"{name}: {len(result.rows)} rows — {result.description}")
        return "\n".join(lines)
