"""Result containers, serialisation and paper-style table rendering.

APXPERF stores its fused hardware + functional results as MAT files and
ships MATLAB scripts to browse them; here the equivalent is a JSON document
per experiment plus plain-text table rendering that mirrors the layout of the
paper's tables, so a run of the benchmark harness can be compared line by
line with the publication.
"""
from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


@dataclass(frozen=True)
class ParetoRecord:
    """One non-dominated sweep point: its objectives, row and sweep index."""

    index: int
    quality: float
    cost: float
    row: Dict[str, object]


class ParetoFront:
    """Incrementally maintained two-objective Pareto front.

    The front accepts sweep rows one at a time (:meth:`update`) — in *any*
    order, e.g. as parallel workers complete — and always converges to the
    same final front as a serial in-order pass: strict-dominance filtering
    of a fixed point set is order-independent, coordinate ties keep every
    tied record, and :attr:`records` is sorted deterministically by
    ``(cost, quality, sweep index)``.  That is the property the design-space
    engine relies on to stream results into the front while a process pool
    is still running.

    ``quality`` is maximised and ``cost`` minimised by default (PSNR / MSSIM
    versus energy); either sense can be flipped.
    """

    def __init__(self, quality: str, cost: str,
                 maximize_quality: bool = True,
                 minimize_cost: bool = True) -> None:
        self.quality_column = str(quality)
        self.cost_column = str(cost)
        self.maximize_quality = bool(maximize_quality)
        self.minimize_cost = bool(minimize_cost)
        self.evaluated = 0
        self._records: List[ParetoRecord] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, rows: Iterable[Dict[str, object]], quality: str,
                  cost: str, maximize_quality: bool = True,
                  minimize_cost: bool = True) -> "ParetoFront":
        """Front of an already-materialised row sequence (serial order)."""
        front = cls(quality, cost, maximize_quality=maximize_quality,
                    minimize_cost=minimize_cost)
        for index, row in enumerate(rows):
            front.update(row, index)
        return front

    @classmethod
    def from_result(cls, result: "ExperimentResult", quality: str, cost: str,
                    maximize_quality: bool = True,
                    minimize_cost: bool = True) -> "ParetoFront":
        """Extract a front from an experiment result after the fact."""
        return cls.from_rows(result.rows, quality, cost,
                             maximize_quality=maximize_quality,
                             minimize_cost=minimize_cost)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def _objectives(self, row: Dict[str, object]) -> Optional[tuple]:
        """(minimised quality, minimised cost) of a row, None if undefined."""
        try:
            quality = float(row[self.quality_column])  # type: ignore[arg-type]
            cost = float(row[self.cost_column])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return None
        if math.isnan(quality) or math.isnan(cost):
            return None
        return (-quality if self.maximize_quality else quality,
                cost if self.minimize_cost else -cost)

    def update(self, row: Dict[str, object], index: int) -> bool:
        """Offer one sweep row to the front; True if it is non-dominated.

        Dominated incumbents are evicted; records with identical objective
        coordinates all stay (which keeps the outcome independent of
        arrival order).  Rows with missing or NaN objectives never enter.
        """
        self.evaluated += 1
        objectives = self._objectives(row)
        if objectives is None:
            return False
        for record in self._records:
            held = self._held_objectives(record)
            if _strictly_dominates(held, objectives):
                return False
        self._records = [
            record for record in self._records
            if not _strictly_dominates(objectives,
                                       self._held_objectives(record))
        ]
        quality = float(row[self.quality_column])  # type: ignore[arg-type]
        cost = float(row[self.cost_column])  # type: ignore[arg-type]
        self._records.append(ParetoRecord(index=int(index), quality=quality,
                                          cost=cost, row=dict(row)))
        return True

    def _held_objectives(self, record: ParetoRecord) -> tuple:
        return (-record.quality if self.maximize_quality else record.quality,
                record.cost if self.minimize_cost else -record.cost)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def key(self) -> str:
        """Identifier of the front among a result's fronts."""
        return f"{self.quality_column}_vs_{self.cost_column}"

    @property
    def records(self) -> List[ParetoRecord]:
        """Front records in deterministic order (cost, quality, index)."""
        return sorted(self._records,
                      key=lambda r: (self._held_objectives(r)[1],
                                     self._held_objectives(r)[0], r.index))

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Front rows in deterministic order."""
        return [dict(record.row) for record in self.records]

    def __len__(self) -> int:
        return len(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParetoFront):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "quality": self.quality_column,
            "cost": self.cost_column,
            "maximize_quality": self.maximize_quality,
            "minimize_cost": self.minimize_cost,
            "evaluated": self.evaluated,
            "points": [
                {"index": record.index, "quality": record.quality,
                 "cost": record.cost, "row": dict(record.row)}
                for record in self.records
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ParetoFront":
        front = cls(str(data["quality"]), str(data["cost"]),
                    maximize_quality=bool(data.get("maximize_quality", True)),
                    minimize_cost=bool(data.get("minimize_cost", True)))
        for point in data.get("points", []):  # type: ignore[union-attr]
            front._records.append(ParetoRecord(
                index=int(point["index"]), quality=float(point["quality"]),
                cost=float(point["cost"]), row=dict(point["row"])))
        front.evaluated = int(data.get("evaluated", len(front._records)))
        return front

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the front as a standalone JSON document."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, default=_jsonify))
        return target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ParetoFront {self.key}: {len(self._records)} of "
                f"{self.evaluated} points>")


def _strictly_dominates(a: tuple, b: tuple) -> bool:
    """Whether ``a`` strictly dominates ``b`` (both objectives minimised)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


@dataclass
class ExperimentResult:
    """One reproduced table or figure: named rows/series of numeric values."""

    experiment: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Pareto fronts extracted from the rows, keyed by ``ParetoFront.key``
    #: (e.g. ``"psnr_db_vs_total_energy_pj"``).
    fronts: Dict[str, ParetoFront] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append a row; every declared column must be present."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"missing columns {missing} in row for {self.experiment}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        """Extract one column across every row."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key_value: object) -> Dict[str, object]:
        """First row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise KeyError(f"no row with {key_column} == {key_value!r}")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def front(self, quality: str, cost: str, maximize_quality: bool = True,
              minimize_cost: bool = True) -> ParetoFront:
        """The front over the given axes — attached if present, else derived."""
        key = f"{quality}_vs_{cost}"
        if key in self.fronts:
            return self.fronts[key]
        return ParetoFront.from_result(self, quality, cost,
                                       maximize_quality=maximize_quality,
                                       minimize_cost=minimize_cost)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "experiment": self.experiment,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "metadata": dict(self.metadata),
        }
        if self.fronts:
            data["fronts"] = {key: front.to_dict()
                              for key, front in sorted(self.fronts.items())}
        return data

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the result as a JSON document and return the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, default=_jsonify))
        return target

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        result = cls(
            experiment=data["experiment"],  # type: ignore[arg-type]
            description=data["description"],  # type: ignore[arg-type]
            columns=list(data["columns"]),  # type: ignore[call-overload]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )
        for row in data.get("rows", []):  # type: ignore[union-attr]
            result.rows.append(dict(row))
        for key, front in data.get("fronts", {}).items():  # type: ignore[union-attr]
            result.fronts[key] = ParetoFront.from_dict(front)
        return result

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------ #
    # Shard merging
    # ------------------------------------------------------------------ #
    @property
    def shard(self) -> Optional[Dict[str, object]]:
        """The shard annotation a sharded Study run left in the metadata."""
        shard = self.metadata.get("shard")
        return shard if isinstance(shard, dict) else None

    @classmethod
    def merge_shards(cls, parts: Sequence["ExperimentResult"]
                     ) -> "ExperimentResult":
        """Fold shard results of one experiment back into the whole.

        Every part carries the global sweep indices of its rows
        (``metadata["shard"]["sweep_indices"]``, written by
        ``Study.shard``); the merge validates that the parts are a
        *disjoint cover* of the full point set, places each row at its
        global index, and recomputes every attached Pareto front over the
        reassembled row list.  Rows, fronts and metadata are bit-identical
        to an unsharded run of the same sweep (``store_hits`` counters, an
        execution detail, are summed).  A single unsharded result passes
        through as a copy.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge_shards needs at least one result")
        first = parts[0]
        for part in parts[1:]:
            if part.experiment != first.experiment:
                raise ValueError(
                    f"cannot merge different experiments "
                    f"{first.experiment!r} and {part.experiment!r}")
            if part.columns != first.columns:
                raise ValueError(
                    f"{first.experiment}: shard column mismatch "
                    f"({first.columns} vs {part.columns})")
        if all(part.shard is None for part in parts):
            if len(parts) != 1:
                raise ValueError(
                    f"{first.experiment}: multiple unsharded results cannot "
                    f"be merged")
            return cls._copy_of(first)
        if any(part.shard is None for part in parts):
            raise ValueError(
                f"{first.experiment}: mixing sharded and unsharded results")

        totals = {int(part.shard["sweep_points"]) for part in parts}
        if len(totals) != 1:
            raise ValueError(
                f"{first.experiment}: shards disagree on the sweep size "
                f"({sorted(totals)})")
        total = totals.pop()
        rows: List[Optional[Dict[str, object]]] = [None] * total
        for part in parts:
            indices = [int(i) for i in part.shard["sweep_indices"]]
            if len(indices) != len(part.rows):
                raise ValueError(
                    f"{first.experiment}: shard "
                    f"{part.shard.get('index')}/{part.shard.get('count')} "
                    f"has {len(part.rows)} rows for {len(indices)} indices")
            for index, row in zip(indices, part.rows):
                if not 0 <= index < total:
                    raise ValueError(
                        f"{first.experiment}: sweep index {index} out of "
                        f"range for {total} points")
                if rows[index] is not None:
                    raise ValueError(
                        f"{first.experiment}: sweep index {index} covered "
                        f"by more than one shard")
                rows[index] = dict(row)
        missing = [index for index, row in enumerate(rows) if row is None]
        if missing:
            raise ValueError(
                f"{first.experiment}: shards do not cover the sweep — "
                f"missing indices {missing[:8]}"
                f"{'...' if len(missing) > 8 else ''}")

        metadata = {key: value for key, value in first.metadata.items()
                    if key != "shard"}
        if any("store_hits" in part.metadata for part in parts):
            metadata["store_hits"] = sum(
                int(part.metadata.get("store_hits", 0)) for part in parts)

        merged = cls(experiment=first.experiment,
                     description=first.description,
                     columns=list(first.columns), metadata=metadata)
        for row in rows:
            merged.rows.append(row)  # type: ignore[arg-type]
        front_keys = {key for part in parts for key in part.fronts}
        for key in sorted(front_keys):
            template = next(part.fronts[key] for part in parts
                            if key in part.fronts)
            merged.fronts[key] = ParetoFront.from_rows(
                merged.rows, template.quality_column, template.cost_column,
                maximize_quality=template.maximize_quality,
                minimize_cost=template.minimize_cost)
        return merged

    @classmethod
    def _copy_of(cls, result: "ExperimentResult") -> "ExperimentResult":
        copy = cls(experiment=result.experiment,
                   description=result.description,
                   columns=list(result.columns),
                   metadata=dict(result.metadata))
        copy.rows = [dict(row) for row in result.rows]
        copy.fronts = {key: ParetoFront.from_dict(front.to_dict())
                       for key, front in result.fronts.items()}
        return copy

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render a fixed-width text table resembling the paper's layout."""
        headers = list(self.columns)
        formatted_rows: List[List[str]] = []
        for row in self.rows:
            formatted_rows.append([_format_cell(row[c], float_format) for c in headers])
        widths = [len(h) for h in headers]
        for cells in formatted_rows:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines = [self.experiment + " — " + self.description]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for cells in formatted_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


def _format_cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def _jsonify(value: object) -> object:
    """Best-effort conversion of NumPy scalars/arrays for JSON output."""
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    raise TypeError(f"cannot serialise {type(value).__name__}")


@dataclass
class ResultBundle:
    """Collection of experiment results (e.g. the whole evaluation section)."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def add(self, result: ExperimentResult) -> None:
        self.results[result.experiment] = result

    def get(self, experiment: str) -> ExperimentResult:
        return self.results[experiment]

    def save_all(self, directory: Union[str, Path]) -> List[Path]:
        """Save every result as ``<experiment>.json`` under ``directory``."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        return [result.save_json(base / f"{name}.json")
                for name, result in sorted(self.results.items())]

    @classmethod
    def load_dir(cls, directory: Union[str, Path]) -> "ResultBundle":
        """Load every experiment JSON under ``directory`` into one bundle.

        Files that are not experiment documents (a run manifest, a stray
        artifact) are skipped, so a bundle can be rehydrated straight from
        a ``run_all`` / ``python -m repro run`` output directory.
        """
        bundle = cls()
        for path in sorted(Path(directory).glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(data, dict) or "experiment" not in data \
                    or "columns" not in data:
                continue
            bundle.add(ExperimentResult.from_dict(data))
        return bundle

    @classmethod
    def merge(cls, bundles: Iterable["ResultBundle"]) -> "ResultBundle":
        """Fold shard bundles into one, experiment by experiment.

        Results sharing an experiment name across the bundles are merged
        through :meth:`ExperimentResult.merge_shards` (which validates the
        disjoint-cover property and recomputes the Pareto fronts);
        experiments present in a single bundle pass through unchanged.
        Experiment order follows first appearance.
        """
        groups: Dict[str, List[ExperimentResult]] = {}
        for bundle in bundles:
            for name, result in bundle.results.items():
                groups.setdefault(name, []).append(result)
        merged = cls()
        for name, parts in groups.items():
            merged.add(ExperimentResult.merge_shards(parts))
        return merged

    def summary(self) -> str:
        """Short multi-line listing of the bundled experiments."""
        lines = []
        for name in sorted(self.results):
            result = self.results[name]
            lines.append(f"{name}: {len(result.rows)} rows — {result.description}")
        return "\n".join(lines)
