"""Fluent ``Study`` pipeline: the single entry point for every experiment.

A study binds one :class:`~repro.workloads.base.Workload` to an operator
sweep, charges every sweep point with the datapath energy of Equation 1
through one *shared* hardware-characterisation cache, and emits a tidy
:class:`~repro.core.results.ExperimentResult` /
:class:`~repro.core.results.ResultBundle`::

    from repro import Study
    result = (Study()
              .workload("jpeg(size=96)")
              .adders(default_adder_sweep())
              .energy(DatapathEnergyModel())
              .seed(7)
              .run(workers=4))

Execution is deterministic: the stimulus seed fixes every workload input, the
functional simulations of the sweep points are independent (and therefore
parallelisable over a process pool), and energy accounting always happens in
the parent process against the shared cache — so ``run(workers=4)`` yields
results identical to ``run(workers=1)``.
"""
from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator, Operator
from ..workloads.base import OperatorMap, Workload, WorkloadResult
from ..workloads.registry import parse_workload
from . import table_arena
from .backends import BackendLike, backend_spec
from .datapath import (
    DatapathEnergyBreakdown,
    DatapathEnergyModel,
    OperationCounts,
    minimal_multiplier_for,
)
from .designspace import DesignPoint, DesignSpace
from .registry import parse_operator
from .results import ExperimentResult, ParetoFront, ResultBundle
from .store import ResultStore, StoreLike


@dataclass
class SweepOutcome:
    """Everything one sweep point produced; handed to the row builder.

    ``swept`` is the operator under test.  ``adder`` / ``multiplier`` are the
    operators the energy model charged (for an adder sweep, ``multiplier`` is
    the energy-pairing partner, e.g. the minimal exact multiplier the adder's
    emitted data width allows).
    """

    index: int
    workload: str
    swept: Operator
    adder: Optional[AdderOperator]
    multiplier: Optional[MultiplierOperator]
    metrics: Dict[str, float]
    counts: OperationCounts
    details: Dict[str, object] = field(default_factory=dict)
    energy: Optional[DatapathEnergyBreakdown] = None
    energy_model: Optional[DatapathEnergyModel] = None
    #: Design point behind this outcome (design-space sweeps only).
    point: Optional[DesignPoint] = None


RowBuilder = Callable[[SweepOutcome], Dict[str, object]]
OperatorLike = Union[Operator, str, DesignPoint]


def _resolve_operator(operator: OperatorLike) -> Operator:
    if isinstance(operator, str):
        return parse_operator(operator)
    return operator


def _execute_point(task: Tuple[Workload, OperatorMap, Dict[str, object], int]
                   ) -> WorkloadResult:
    """Run one sweep point's functional simulation (process-pool safe)."""
    workload, operators, config, seed = task
    rng = np.random.default_rng(seed)
    return workload.run(operators, config, rng)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count for a sweep's process pool.

    A ``REPRO_WORKERS`` environment variable overrides the requested value
    verbatim (the operator knows the machine better than the caller); an
    unparsable override is ignored with a warning.  Requested values are
    otherwise capped at ``os.cpu_count()`` — oversubscribing a sweep of
    CPU-bound functional simulations only adds scheduling churn — and
    floored at one.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring unparsable REPRO_WORKERS={env!r} (not an integer)",
                RuntimeWarning, stacklevel=2)
    if workers is None:
        return 1
    return max(1, min(int(workers), os.cpu_count() or 1))


#: A shard specification: ``None`` (whole sweep), an ``"i/n"`` string, or an
#: ``(index, count)`` pair.
ShardLike = Union[str, Tuple[int, int], None]


def parse_shard(shard: ShardLike) -> Optional[Tuple[int, int]]:
    """Normalise an ``"i/n"`` string or ``(i, n)`` pair; ``None`` passes.

    ``i`` is the zero-based shard index, ``n`` the shard count; the pair is
    validated (``0 <= i < n``) so a typo fails loudly before any sweep runs.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        parts = shard.split("/")
        if len(parts) != 2:
            raise ValueError(f"shard spec {shard!r} is not of the form 'i/n'")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"shard spec {shard!r} is not of the form 'i/n'") from None
    else:
        index, count = int(shard[0]), int(shard[1])
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index {index} is out of range for {count} shards")
    return index, count


class Study:
    """Chainable builder for one workload-versus-operator-sweep experiment.

    The builder methods each return ``self``; :meth:`run` executes the sweep
    and returns an :class:`ExperimentResult` (:meth:`run_bundle` wraps it in
    a :class:`ResultBundle`).  See the module docstring for the canonical
    usage, and :mod:`repro.experiments` for the paper's studies expressed as
    thin declarative wrappers over this API.
    """

    def __init__(self) -> None:
        self._workload: Optional[Workload] = None
        self._config: Dict[str, object] = {}
        self._operators: List[OperatorLike] = []
        self._axis: str = "operator"
        self._pair: Optional[OperatorLike] = None
        self._pair_injected = False
        self._backend: BackendLike = "direct"
        self._energy_model: Optional[DatapathEnergyModel] = None
        self._seed: Optional[int] = None
        self._constant_coefficient = False
        self._experiment: Optional[str] = None
        self._description: str = ""
        self._columns: Optional[List[str]] = None
        self._metadata: Optional[Dict[str, object]] = None
        self._row_builder: Optional[RowBuilder] = None
        self._store: Optional[ResultStore] = None
        self._pareto_axes: Optional[Tuple[str, str, bool, bool]] = None
        self._shard: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ #
    # Builder surface
    # ------------------------------------------------------------------ #
    def workload(self, workload: Union[Workload, str],
                 **config: object) -> "Study":
        """Select the workload — an instance or a spec like ``"fft(1024)"``.

        Selecting a workload replaces any configuration overrides queued for
        a previously selected one.
        """
        self._workload = parse_workload(workload) \
            if isinstance(workload, str) else workload
        self._config = dict(config)
        return self

    def config(self, **overrides: object) -> "Study":
        """Override workload configuration keys (validated at run time)."""
        self._config.update(overrides)
        return self

    def adders(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep the adder slot; multiplications are charged to the pair."""
        self._operators = list(operators)
        self._axis = "adder"
        return self

    def multipliers(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep the multiplier slot; additions are charged to the pair."""
        self._operators = list(operators)
        self._axis = "multiplier"
        return self

    def operators(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep bare operators (operator-level characterisation studies)."""
        self._operators = list(operators)
        self._axis = "operator"
        return self

    def design_space(self, space: Union[DesignSpace, Iterable[DesignPoint]]
                     ) -> "Study":
        """Sweep a unified operator × word-length design space.

        Every :class:`~repro.core.designspace.DesignPoint` carries its own
        adder + multiplier pairing (sizing-propagated for the careful-sizing
        axis) and optional per-point workload configuration overrides, so a
        single sweep can mix functionally approximate operators and
        word-length-sized exact datapaths — the paper's joint comparison.
        """
        self._operators = list(DesignSpace.of(space))
        self._axis = "design"
        return self

    def pareto(self, quality: str, cost: str, maximize_quality: bool = True,
               minimize_cost: bool = True) -> "Study":
        """Extract the quality-versus-cost Pareto front while running.

        The front is updated *incrementally* as sweep points complete —
        including out-of-order completions from a process pool — and is
        attached to the emitted result under
        ``result.fronts[f"{quality}_vs_{cost}"]``; it is bit-identical to a
        serial in-order extraction.
        """
        self._pareto_axes = (str(quality), str(cost), bool(maximize_quality),
                             bool(minimize_cost))
        return self

    def store(self, store: StoreLike) -> "Study":
        """Persist and reuse sweep records through a disk-backed store.

        Accepts a :class:`~repro.core.store.ResultStore` or a directory
        path.  Sweep points whose exact computation (workload, merged
        configuration, operators, backend, seed, repro version) was
        recorded in an earlier session are served from disk and skip their
        functional simulation; fresh points are written back.  The store is
        also offered to the energy model (if it has none yet), so hardware
        characterisations persist alongside.
        """
        self._store = ResultStore.of(store)
        return self

    def shard(self, shard: Union[ShardLike, int] = None,
              count: Optional[int] = None) -> "Study":
        """Restrict the sweep to one deterministic shard of its points.

        Accepts ``shard(i, n)``, a spec string ``shard("i/n")``, a tuple,
        or ``None`` (a no-op, so callers can forward an optional shard
        argument unconditionally).

        The resolved sweep (the ordered, de-duplicated point list) is
        partitioned round-robin: point ``j`` belongs to shard ``index`` iff
        ``j % count == index``, so for any ``count`` the shards are a
        disjoint cover of the point set and the partition is stable across
        runs, processes and machines.  Row builders still see each point's
        *global* sweep index, store keys are shard-independent (a shard
        warms the same records an unsharded run would), and the emitted
        result records ``metadata["shard"]`` plus the global
        ``metadata["sweep_indices"]`` of its rows — which is what
        :meth:`~repro.core.results.ExperimentResult.merge_shards` uses to
        fold shard results back into one bit-identical whole.
        """
        if count is not None:
            shard = (int(shard), int(count))  # type: ignore[arg-type]
        self._shard = parse_shard(shard)  # type: ignore[arg-type]
        return self

    def pair_with(self, operator: OperatorLike,
                  inject: bool = False) -> "Study":
        """Fix the energy-pairing partner of every sweep point.

        By default the partner only enters the energy accounting (the paper's
        convention: an adder sweep still simulates with the exact multiplier
        but is charged for the data-sized one).  ``inject=True`` also feeds
        the partner into the functional simulation.
        """
        self._pair = operator
        self._pair_injected = inject
        return self

    def backend(self, backend: BackendLike) -> "Study":
        """Select the execution backend of every sweep point.

        ``"direct"`` (the default) evaluates each operator call through its
        functional model; ``"lut"`` serves the hot calls from precomputed
        truth tables (bit-identical records, substantially faster for
        application sweeps).  Spec strings accept parameters, e.g.
        ``"lut(max_pair_width=8)"``, and registered
        :class:`~repro.core.backends.ExecutionBackend` instances also work.
        """
        self._backend = backend
        return self

    def energy(self, model: Optional[DatapathEnergyModel] = None) -> "Study":
        """Charge sweep points with Equation 1 through one shared cache."""
        self._energy_model = model if model is not None else DatapathEnergyModel()
        return self

    def seed(self, seed: int) -> "Study":
        """Stimulus seed: same seed in, identical results out."""
        self._seed = int(seed)
        return self

    def constant_coefficient(self, enabled: bool = True) -> "Study":
        """Charge multiplications at the constant-coefficient rate."""
        self._constant_coefficient = bool(enabled)
        return self

    def experiment(self, name: str, description: str = "",
                   columns: Optional[Sequence[str]] = None,
                   metadata: Optional[Dict[str, object]] = None) -> "Study":
        """Name the emitted result and optionally pin its columns/metadata."""
        self._experiment = name
        self._description = description
        self._columns = list(columns) if columns is not None else None
        self._metadata = dict(metadata) if metadata is not None else None
        return self

    def rows(self, builder: RowBuilder) -> "Study":
        """Custom row shape: a callable mapping a SweepOutcome to a dict."""
        self._row_builder = builder
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, workers: int = 1) -> ExperimentResult:
        """Execute the sweep and emit the experiment result.

        ``workers > 1`` fans the functional simulations out over a process
        pool; energy charging, Pareto-front maintenance and row emission
        stay in the parent — rows are processed as workers complete (which
        is how the incremental front fills in) but always emitted in sweep
        order, so the result is bit-identical to a serial run.  With a
        configured :meth:`store`, recorded sweep points skip their
        simulation entirely and fresh ones are persisted.

        The requested ``workers`` is resolved through
        :func:`resolve_workers`: capped at the machine's CPU count and
        overridable via the ``REPRO_WORKERS`` environment variable.
        """
        requested = workers
        workers = resolve_workers(workers)
        # An auto-capped worker request with the shared table arena active
        # is a best-effort parallelism hint, not a contract: if the pool
        # then cannot start at all, the serial path still reads the same
        # warm shared tables, so the fallback is routine — not warning-worthy.
        quiet_fallback = (requested is not None
                          and workers < max(1, int(requested))
                          and table_arena.arena_enabled())
        if self._workload is None:
            raise ValueError("no workload selected; call .workload(...) first")
        if self._pair is not None and self._axis == "design":
            raise ValueError(
                "pair_with() does not apply to a design-space sweep: every "
                "DesignPoint already carries its own operator pairing — set "
                "the partner (and inject_pair) on the points instead")
        workload = self._workload
        config, seed = self._merged_config(workload)
        # Offer this study's store to a store-less energy model for the
        # duration of the run only: a model shared across studies must not
        # keep the first study's store directory (restored in the finally
        # below), while a model configured with its own store is never
        # touched.
        store_offered = (self._store is not None
                         and self._energy_model is not None
                         and self._energy_model.store is None)
        if store_offered:
            self._energy_model.store = self._store
        try:
            return self._run_resolved(workload, config, seed, workers,
                                      quiet_fallback)
        finally:
            if store_offered:
                self._energy_model.store = None

    def _merged_config(self, workload: Workload
                       ) -> Tuple[Dict[str, object], int]:
        """Fresh merged workload configuration plus the effective seed."""
        config = workload.merged_config(self._config)
        if self._seed is not None:
            config["seed"] = self._seed
        else:
            config.setdefault("seed", 0)
        return config, int(config["seed"])

    def _resolved_tasks(self, workload: Workload, config: Dict[str, object],
                        seed: int):
        """Resolve the sweep into ``(points, tasks)``.

        ``points`` covers the whole sweep; ``tasks`` pairs each *selected*
        (shard-filtered) global index with its executable task tuple.
        """
        points = [self._resolve_point(op) for op in self._operators]
        if self._shard is not None:
            shard_index, shard_count = self._shard
            selected = [index for index in range(len(points))
                        if index % shard_count == shard_index]
        else:
            selected = list(range(len(points)))
        tasks: List[Tuple[int, Tuple[Workload, OperatorMap,
                                     Dict[str, object], int]]] = []
        for index in selected:
            operator_map, _, _, design = points[index]
            point_config = config
            if design is not None and design.config:
                point_config = workload.merged_config(
                    {**self._config, **dict(design.config)})
                point_config["seed"] = seed
            tasks.append((index, (workload, operator_map, point_config, seed)))
        return points, selected, tasks

    def point_keys(self) -> List[Dict[str, object]]:
        """Structural store keys of the resolved sweep points, in sweep order.

        The keys are exactly what :meth:`run` would probe a configured
        :meth:`store` with, so a caller (the evaluation server, a scheduler)
        can test ``store.contains("sweep", key)`` to predict which points an
        upcoming run will serve warm — without executing anything.  A
        sharded study returns only its shard's keys.
        """
        if self._workload is None:
            raise ValueError("no workload selected; call .workload(...) first")
        workload = self._workload
        config, seed = self._merged_config(workload)
        _, _, tasks = self._resolved_tasks(workload, config, seed)
        return [self._sweep_key(task) for _, task in tasks]

    def _run_resolved(self, workload: Workload, config: Dict[str, object],
                      seed: int, workers: int,
                      quiet_fallback: bool = False) -> ExperimentResult:
        """Execute the configured sweep (see :meth:`run`)."""
        points, selected, tasks = self._resolved_tasks(workload, config, seed)

        front: Optional[ParetoFront] = None
        if self._pareto_axes is not None:
            quality, cost, maximize_quality, minimize_cost = self._pareto_axes
            front = ParetoFront(quality, cost,
                                maximize_quality=maximize_quality,
                                minimize_cost=minimize_cost)

        build_row = self._row_builder or _default_row
        rows: Dict[int, Dict[str, object]] = {}
        store_hits = 0
        for index, outcome, fresh in self._outcomes(tasks, workers,
                                                    quiet_fallback):
            operator_map, adder, multiplier, design = points[index]
            if not fresh:
                store_hits += 1
            energy = None
            if self._energy_model is not None and adder is not None:
                energy = self._energy_model.application_energy_pj(
                    outcome.counts, adder, multiplier,
                    constant_coefficient_multiplications=self._constant_coefficient)
            sweep_outcome = SweepOutcome(
                index=index,
                workload=workload.name,
                swept=operator_map.swept,
                adder=adder,
                multiplier=multiplier,
                metrics=dict(outcome.metrics),
                counts=outcome.counts,
                details=dict(outcome.details),
                energy=energy,
                energy_model=self._energy_model,
                point=design,
            )
            row = build_row(sweep_outcome)
            rows[index] = row
            if front is not None:
                front.update(row, index)

        metadata = self._metadata if self._metadata is not None \
            else {"workload": workload.name, "seed": seed,
                  "sweep_points": len(points),
                  "backend": backend_spec(self._backend)}
        if self._store is not None:
            # self._metadata is already a private copy (made in experiment()),
            # so annotating it never mutates caller state.
            metadata["store_hits"] = store_hits
        if self._shard is not None:
            # One key, stripped wholesale by ExperimentResult.merge_shards so
            # merged metadata matches an unsharded run's exactly.
            metadata["shard"] = {"index": self._shard[0],
                                 "count": self._shard[1],
                                 "sweep_points": len(points),
                                 "sweep_indices": list(selected)}
        experiment = ExperimentResult(
            experiment=self._experiment or f"{workload.name}_{self._axis}_sweep",
            description=self._description or (
                f"Study sweep of {len(points)} {self._axis} configurations "
                f"over the {workload.name!r} workload"),
            columns=list(self._columns) if self._columns is not None else [],
            metadata=metadata,
        )
        for index in selected:
            row = rows[index]  # every selected index is yielded exactly once
            if not experiment.columns:
                experiment.columns = list(row)
            experiment.add_row(**row)
        if front is not None:
            experiment.fronts[front.key] = front
        return experiment

    def run_bundle(self, workers: int = 1) -> ResultBundle:
        """Run and wrap the result in a :class:`ResultBundle`."""
        bundle = ResultBundle()
        bundle.add(self.run(workers=workers))
        return bundle

    def search(self, strategy, workers: int = 1):
        """Explore a design space adaptively instead of sweeping it.

        ``strategy`` is a :class:`~repro.search.strategy.SearchStrategy`
        (e.g. :class:`~repro.search.halving.SuccessiveHalving` or
        :class:`~repro.search.evolutionary.EvolutionarySearch`); it owns
        the space and proposes candidates, while this study supplies the
        workload, stimulus seed, backend, store and objective axes
        (:meth:`pareto` is required).  Every candidate evaluation flows
        through the study's configured :meth:`store` by structural key, so
        a search is resumable and — given one seed — bit-deterministic.
        Returns the strategy's
        :class:`~repro.search.strategy.SearchOutcome`.

        The study is consumed as the search's evaluator: its operator list
        is rewritten per candidate batch, so do not reuse it for a sweep
        afterwards.
        """
        from ..search.evaluator import SearchEvaluator

        evaluator = SearchEvaluator(self, workers=workers)
        return strategy.search(evaluator)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_point(self, operator: OperatorLike
                       ) -> Tuple[OperatorMap, Optional[AdderOperator],
                                  Optional[MultiplierOperator],
                                  Optional[DesignPoint]]:
        """Swept operator -> (functional map, energy adder, energy multiplier,
        design point)."""
        if isinstance(operator, DesignPoint):
            return self._resolve_design_point(operator)
        swept = _resolve_operator(operator)
        pair = _resolve_operator(self._pair) if self._pair is not None else None
        axis = self._axis
        if axis == "operator" and isinstance(swept, AdderOperator):
            axis = "adder"
        elif axis == "operator" and isinstance(swept, MultiplierOperator):
            axis = "multiplier"

        if axis == "adder":
            if not isinstance(swept, AdderOperator):
                raise TypeError(f"{swept.name} is not an adder; it cannot be "
                                f"swept on the adder axis")
            multiplier = pair if pair is not None else minimal_multiplier_for(swept)
            functional = OperatorMap(
                swept=swept, adder=swept,
                multiplier=multiplier if self._pair_injected else None,
                backend=self._backend)
            return functional, swept, multiplier, None
        if axis == "multiplier":
            if not isinstance(swept, MultiplierOperator):
                raise TypeError(f"{swept.name} is not a multiplier; it cannot "
                                f"be swept on the multiplier axis")
            adder = pair if pair is not None else ExactAdder(swept.input_width)
            functional = OperatorMap(
                swept=swept, multiplier=swept,
                adder=adder if self._pair_injected else None,
                backend=self._backend)
            return functional, adder, swept, None
        return OperatorMap(swept=swept, backend=self._backend), None, None, None

    def _resolve_design_point(self, point: DesignPoint
                              ) -> Tuple[OperatorMap, Optional[AdderOperator],
                                         Optional[MultiplierOperator],
                                         DesignPoint]:
        """Design point -> functional map plus the charged operator pair.

        The paper's convention carries over from the single-axis sweeps:
        the operator under test enters the functional simulation, its
        partner enters the energy accounting only (``inject_pair=True``
        feeds the partner into the simulation too).
        """
        if point.role == "adder":
            functional = OperatorMap(
                swept=point.adder, adder=point.adder,
                multiplier=point.multiplier if point.inject_pair else None,
                backend=self._backend)
            return functional, point.adder, point.multiplier, point
        if point.role == "multiplier":
            functional = OperatorMap(
                swept=point.multiplier, multiplier=point.multiplier,
                adder=point.adder if point.inject_pair else None,
                backend=self._backend)
            return functional, point.adder, point.multiplier, point
        return (OperatorMap(swept=point.swept, backend=self._backend),
                None, None, point)

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #
    def _outcomes(self, tasks: List[Tuple[int, Tuple[Workload, OperatorMap,
                                                     Dict[str, object], int]]],
                  workers: int, quiet_fallback: bool = False):
        """Yield ``(index, WorkloadResult, fresh)`` in completion order.

        ``tasks`` pairs each sweep point with its global sweep index (the
        two differ in a sharded run).  Store-recorded points short-circuit
        first (``fresh=False``); the remainder runs serially or streams out
        of a process pool as each future completes.  Fresh results are
        written back to the store.
        """
        pending: List[Tuple[int, Tuple[Workload, OperatorMap,
                                       Dict[str, object], int]]] = []
        keys: Dict[int, Dict[str, object]] = {}
        for index, task in tasks:
            key = self._sweep_key(task) if self._store is not None else None
            if key is not None:
                cached = _record_to_result(self._store.load("sweep", key))
                if cached is not None:
                    yield index, cached, False
                    continue
                keys[index] = key
            pending.append((index, task))

        for index, result in self._execute_stream(pending, workers,
                                                  quiet_fallback):
            if self._store is not None and index in keys:
                payload = _result_to_record(result)
                if payload is not None:
                    self._store.save("sweep", keys[index], payload)
            yield index, result, True

    def _sweep_key(self, task: Tuple[Workload, OperatorMap,
                                     Dict[str, object], int]
                   ) -> Dict[str, object]:
        """Identity of one sweep point's exact computation."""
        from .. import __version__

        workload, operator_map, config, seed = task
        return {
            "repro": __version__,
            "workload": workload.name,
            "config": config,
            "seed": seed,
            "backend": backend_spec(self._backend),
            "swept": operator_map.swept.name,
            "adder": operator_map.adder.name
            if operator_map.adder is not None else None,
            "multiplier": operator_map.multiplier.name
            if operator_map.multiplier is not None else None,
        }

    @staticmethod
    def _execute_stream(pending: List[Tuple[int, Tuple[Workload, OperatorMap,
                                                       Dict[str, object], int]]],
                        workers: int, quiet_fallback: bool = False):
        """Yield ``(index, WorkloadResult)`` as sweep points complete.

        ``workers > 1`` streams completions out of a process pool (in
        completion order, which is what feeds the incremental Pareto
        front); restricted environments (no process spawning / semaphores)
        fall back to the serial path, which is result-identical.
        """
        if workers <= 1 or len(pending) <= 1:
            for index, task in pending:
                yield index, _execute_point(task)
            return
        try:
            from concurrent.futures import (
                BrokenExecutor,
                ProcessPoolExecutor,
                as_completed,
            )
        except ImportError:
            warnings.warn(
                "concurrent.futures is unavailable; running the sweep "
                "serially instead of with a process pool", RuntimeWarning)
            for index, task in pending:
                yield index, _execute_point(task)
            return
        done: set = set()
        try:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending))) as pool:
                futures = {pool.submit(_execute_point, task): index
                           for index, task in pending}
                for future in as_completed(futures):
                    index = futures[future]
                    result = future.result()
                    done.add(index)
                    yield index, result
            return
        except (OSError, BrokenExecutor) as error:
            if not quiet_fallback:
                warnings.warn(
                    f"process pool unavailable ({error.__class__.__name__}: "
                    f"{error}); falling back to serial execution — results "
                    f"are identical, only slower", RuntimeWarning)
        for index, task in pending:
            if index not in done:
                yield index, _execute_point(task)


def _default_row(outcome: SweepOutcome) -> Dict[str, object]:
    """Tidy default row: identities, metrics, counts and energy split.

    Design-space outcomes additionally carry their point's frontier
    metadata (axis label and emitted word length), so a joint
    approximate-versus-sized sweep is Pareto-ready without a custom row
    builder.
    """
    row: Dict[str, object] = {"workload": outcome.workload,
                              "operator": outcome.swept.name}
    if outcome.point is not None:
        row.update(outcome.point.describe())
    if outcome.adder is not None:
        row["adder"] = outcome.adder.name
    if outcome.multiplier is not None:
        row["multiplier"] = outcome.multiplier.name
    row.update(outcome.metrics)
    row["additions"] = outcome.counts.additions
    row["multiplications"] = outcome.counts.multiplications
    if outcome.energy is not None:
        row["adder_energy_pj"] = outcome.energy.adder_energy_pj
        row["multiplier_energy_pj"] = outcome.energy.multiplier_energy_pj
        row["total_energy_pj"] = outcome.energy.total_energy_pj
    return row


# --------------------------------------------------------------------------- #
# Sweep-record (de)serialisation for the persistent store
# --------------------------------------------------------------------------- #
def _value_preserving_json(value: object) -> bool:
    """Whether a details value survives a JSON round trip unchanged.

    Strictly plain JSON values only: live objects, NumPy arrays and
    integer scalars, and tuples would all come back as something else
    (or not at all) on a warm load.  ``np.float64`` passes because it is
    a ``float`` subclass and round-trips to an equal value.
    """
    if value is None or isinstance(value, (bool, str, int, float)):
        return True
    if isinstance(value, list):
        return all(_value_preserving_json(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(key, str) and _value_preserving_json(item)
                   for key, item in value.items())
    return False


def _result_to_record(result: WorkloadResult) -> Optional[Dict[str, object]]:
    """JSON-safe payload of a workload result, or None when not storable.

    Results whose details hold anything that would not round-trip
    verbatim (live objects, NumPy arrays, tuples) are *not* persisted —
    storing a lossy rendition would change what warm runs observe, and
    fidelity beats hit rate.  Metrics are exempt from the strictness:
    they are contractually numeric and are coerced through ``float`` on
    load anyway.
    """
    import json

    from .results import _jsonify

    details = dict(result.details)
    if not _value_preserving_json(details):
        return None
    payload = {
        "metrics": dict(result.metrics),
        "counts": {"additions": result.counts.additions,
                   "multiplications": result.counts.multiplications},
        "details": details,
    }
    try:
        return json.loads(json.dumps(payload, default=_jsonify))
    except TypeError:
        return None


def _record_to_result(payload: Optional[Dict[str, object]]
                      ) -> Optional[WorkloadResult]:
    """Rehydrate a stored sweep record; malformed payloads are misses."""
    if payload is None:
        return None
    try:
        metrics = {str(name): float(value)
                   for name, value in dict(payload["metrics"]).items()}
        counts_data = dict(payload["counts"])
        counts = OperationCounts(
            additions=int(counts_data["additions"]),
            multiplications=int(counts_data["multiplications"]))
        details = dict(payload.get("details", {}))
    except (KeyError, TypeError, ValueError):
        return None
    return WorkloadResult(metrics=metrics, counts=counts, details=details)
