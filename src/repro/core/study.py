"""Fluent ``Study`` pipeline: the single entry point for every experiment.

A study binds one :class:`~repro.workloads.base.Workload` to an operator
sweep, charges every sweep point with the datapath energy of Equation 1
through one *shared* hardware-characterisation cache, and emits a tidy
:class:`~repro.core.results.ExperimentResult` /
:class:`~repro.core.results.ResultBundle`::

    from repro import Study
    result = (Study()
              .workload("jpeg(size=96)")
              .adders(default_adder_sweep())
              .energy(DatapathEnergyModel())
              .seed(7)
              .run(workers=4))

Execution is deterministic: the stimulus seed fixes every workload input, the
functional simulations of the sweep points are independent (and therefore
parallelisable over a process pool), and energy accounting always happens in
the parent process against the shared cache — so ``run(workers=4)`` yields
results identical to ``run(workers=1)``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator, Operator
from ..workloads.base import OperatorMap, Workload, WorkloadResult
from ..workloads.registry import parse_workload
from .backends import BackendLike, backend_spec
from .datapath import (
    DatapathEnergyBreakdown,
    DatapathEnergyModel,
    OperationCounts,
    minimal_multiplier_for,
)
from .registry import parse_operator
from .results import ExperimentResult, ResultBundle


@dataclass
class SweepOutcome:
    """Everything one sweep point produced; handed to the row builder.

    ``swept`` is the operator under test.  ``adder`` / ``multiplier`` are the
    operators the energy model charged (for an adder sweep, ``multiplier`` is
    the energy-pairing partner, e.g. the minimal exact multiplier the adder's
    emitted data width allows).
    """

    index: int
    workload: str
    swept: Operator
    adder: Optional[AdderOperator]
    multiplier: Optional[MultiplierOperator]
    metrics: Dict[str, float]
    counts: OperationCounts
    details: Dict[str, object] = field(default_factory=dict)
    energy: Optional[DatapathEnergyBreakdown] = None
    energy_model: Optional[DatapathEnergyModel] = None


RowBuilder = Callable[[SweepOutcome], Dict[str, object]]
OperatorLike = Union[Operator, str]


def _resolve_operator(operator: OperatorLike) -> Operator:
    if isinstance(operator, str):
        return parse_operator(operator)
    return operator


def _execute_point(task: Tuple[Workload, OperatorMap, Dict[str, object], int]
                   ) -> WorkloadResult:
    """Run one sweep point's functional simulation (process-pool safe)."""
    workload, operators, config, seed = task
    rng = np.random.default_rng(seed)
    return workload.run(operators, config, rng)


class Study:
    """Chainable builder for one workload-versus-operator-sweep experiment.

    The builder methods each return ``self``; :meth:`run` executes the sweep
    and returns an :class:`ExperimentResult` (:meth:`run_bundle` wraps it in
    a :class:`ResultBundle`).  See the module docstring for the canonical
    usage, and :mod:`repro.experiments` for the paper's studies expressed as
    thin declarative wrappers over this API.
    """

    def __init__(self) -> None:
        self._workload: Optional[Workload] = None
        self._config: Dict[str, object] = {}
        self._operators: List[OperatorLike] = []
        self._axis: str = "operator"
        self._pair: Optional[OperatorLike] = None
        self._pair_injected = False
        self._backend: BackendLike = "direct"
        self._energy_model: Optional[DatapathEnergyModel] = None
        self._seed: Optional[int] = None
        self._constant_coefficient = False
        self._experiment: Optional[str] = None
        self._description: str = ""
        self._columns: Optional[List[str]] = None
        self._metadata: Optional[Dict[str, object]] = None
        self._row_builder: Optional[RowBuilder] = None

    # ------------------------------------------------------------------ #
    # Builder surface
    # ------------------------------------------------------------------ #
    def workload(self, workload: Union[Workload, str],
                 **config: object) -> "Study":
        """Select the workload — an instance or a spec like ``"fft(1024)"``.

        Selecting a workload replaces any configuration overrides queued for
        a previously selected one.
        """
        self._workload = parse_workload(workload) \
            if isinstance(workload, str) else workload
        self._config = dict(config)
        return self

    def config(self, **overrides: object) -> "Study":
        """Override workload configuration keys (validated at run time)."""
        self._config.update(overrides)
        return self

    def adders(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep the adder slot; multiplications are charged to the pair."""
        self._operators = list(operators)
        self._axis = "adder"
        return self

    def multipliers(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep the multiplier slot; additions are charged to the pair."""
        self._operators = list(operators)
        self._axis = "multiplier"
        return self

    def operators(self, operators: Iterable[OperatorLike]) -> "Study":
        """Sweep bare operators (operator-level characterisation studies)."""
        self._operators = list(operators)
        self._axis = "operator"
        return self

    def pair_with(self, operator: OperatorLike,
                  inject: bool = False) -> "Study":
        """Fix the energy-pairing partner of every sweep point.

        By default the partner only enters the energy accounting (the paper's
        convention: an adder sweep still simulates with the exact multiplier
        but is charged for the data-sized one).  ``inject=True`` also feeds
        the partner into the functional simulation.
        """
        self._pair = operator
        self._pair_injected = inject
        return self

    def backend(self, backend: BackendLike) -> "Study":
        """Select the execution backend of every sweep point.

        ``"direct"`` (the default) evaluates each operator call through its
        functional model; ``"lut"`` serves the hot calls from precomputed
        truth tables (bit-identical records, substantially faster for
        application sweeps).  Spec strings accept parameters, e.g.
        ``"lut(max_pair_width=8)"``, and registered
        :class:`~repro.core.backends.ExecutionBackend` instances also work.
        """
        self._backend = backend
        return self

    def energy(self, model: Optional[DatapathEnergyModel] = None) -> "Study":
        """Charge sweep points with Equation 1 through one shared cache."""
        self._energy_model = model if model is not None else DatapathEnergyModel()
        return self

    def seed(self, seed: int) -> "Study":
        """Stimulus seed: same seed in, identical results out."""
        self._seed = int(seed)
        return self

    def constant_coefficient(self, enabled: bool = True) -> "Study":
        """Charge multiplications at the constant-coefficient rate."""
        self._constant_coefficient = bool(enabled)
        return self

    def experiment(self, name: str, description: str = "",
                   columns: Optional[Sequence[str]] = None,
                   metadata: Optional[Dict[str, object]] = None) -> "Study":
        """Name the emitted result and optionally pin its columns/metadata."""
        self._experiment = name
        self._description = description
        self._columns = list(columns) if columns is not None else None
        self._metadata = dict(metadata) if metadata is not None else None
        return self

    def rows(self, builder: RowBuilder) -> "Study":
        """Custom row shape: a callable mapping a SweepOutcome to a dict."""
        self._row_builder = builder
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, workers: int = 1) -> ExperimentResult:
        """Execute the sweep and emit the experiment result.

        ``workers > 1`` fans the functional simulations out over a process
        pool; energy charging and row emission stay in the parent so every
        sweep point shares one hardware-characterisation cache and the
        result is bit-identical to a serial run.
        """
        if self._workload is None:
            raise ValueError("no workload selected; call .workload(...) first")
        workload = self._workload
        config = workload.merged_config(self._config)
        if self._seed is not None:
            config["seed"] = self._seed
        else:
            config.setdefault("seed", 0)
        seed = int(config["seed"])

        points = [self._resolve_point(op) for op in self._operators]
        tasks = [(workload, operator_map, config, seed)
                 for operator_map, _, _ in points]
        results = self._execute(tasks, workers)

        experiment = ExperimentResult(
            experiment=self._experiment or f"{workload.name}_{self._axis}_sweep",
            description=self._description or (
                f"Study sweep of {len(points)} {self._axis} configurations "
                f"over the {workload.name!r} workload"),
            columns=list(self._columns) if self._columns is not None else [],
            metadata=self._metadata if self._metadata is not None
            else {"workload": workload.name, "seed": seed,
                  "sweep_points": len(points),
                  "backend": backend_spec(self._backend)},
        )
        build_row = self._row_builder or _default_row
        for index, ((operator_map, adder, multiplier), outcome) \
                in enumerate(zip(points, results)):
            energy = None
            if self._energy_model is not None and adder is not None:
                energy = self._energy_model.application_energy_pj(
                    outcome.counts, adder, multiplier,
                    constant_coefficient_multiplications=self._constant_coefficient)
            sweep_outcome = SweepOutcome(
                index=index,
                workload=workload.name,
                swept=operator_map.swept,
                adder=adder,
                multiplier=multiplier,
                metrics=dict(outcome.metrics),
                counts=outcome.counts,
                details=dict(outcome.details),
                energy=energy,
                energy_model=self._energy_model,
            )
            row = build_row(sweep_outcome)
            if not experiment.columns:
                experiment.columns = list(row)
            experiment.add_row(**row)
        return experiment

    def run_bundle(self, workers: int = 1) -> ResultBundle:
        """Run and wrap the result in a :class:`ResultBundle`."""
        bundle = ResultBundle()
        bundle.add(self.run(workers=workers))
        return bundle

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_point(self, operator: OperatorLike
                       ) -> Tuple[OperatorMap, Optional[AdderOperator],
                                  Optional[MultiplierOperator]]:
        """Swept operator -> (functional map, energy adder, energy multiplier)."""
        swept = _resolve_operator(operator)
        pair = _resolve_operator(self._pair) if self._pair is not None else None
        axis = self._axis
        if axis == "operator" and isinstance(swept, AdderOperator):
            axis = "adder"
        elif axis == "operator" and isinstance(swept, MultiplierOperator):
            axis = "multiplier"

        if axis == "adder":
            if not isinstance(swept, AdderOperator):
                raise TypeError(f"{swept.name} is not an adder; it cannot be "
                                f"swept on the adder axis")
            multiplier = pair if pair is not None else minimal_multiplier_for(swept)
            functional = OperatorMap(
                swept=swept, adder=swept,
                multiplier=multiplier if self._pair_injected else None,
                backend=self._backend)
            return functional, swept, multiplier
        if axis == "multiplier":
            if not isinstance(swept, MultiplierOperator):
                raise TypeError(f"{swept.name} is not a multiplier; it cannot "
                                f"be swept on the multiplier axis")
            adder = pair if pair is not None else ExactAdder(swept.input_width)
            functional = OperatorMap(
                swept=swept, multiplier=swept,
                adder=adder if self._pair_injected else None,
                backend=self._backend)
            return functional, adder, swept
        return OperatorMap(swept=swept, backend=self._backend), None, None

    @staticmethod
    def _execute(tasks: List[Tuple[Workload, OperatorMap, Dict[str, object], int]],
                 workers: int) -> List[WorkloadResult]:
        if workers <= 1 or len(tasks) <= 1:
            return [_execute_point(task) for task in tasks]
        try:
            from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        except ImportError:
            return [_execute_point(task) for task in tasks]
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
                return list(pool.map(_execute_point, tasks))
        except (OSError, BrokenExecutor):
            # Restricted environments (no process spawning / semaphores):
            # fall back to the serial path, which is result-identical.
            return [_execute_point(task) for task in tasks]


def _default_row(outcome: SweepOutcome) -> Dict[str, object]:
    """Tidy default row: identities, metrics, counts and energy split."""
    row: Dict[str, object] = {"workload": outcome.workload,
                              "operator": outcome.swept.name}
    if outcome.adder is not None:
        row["adder"] = outcome.adder.name
    if outcome.multiplier is not None:
        row["multiplier"] = outcome.multiplier.name
    row.update(outcome.metrics)
    row["additions"] = outcome.counts.additions
    row["multiplications"] = outcome.counts.multiplications
    if outcome.energy is not None:
        row["adder_energy_pj"] = outcome.energy.adder_energy_pj
        row["multiplier_energy_pj"] = outcome.energy.multiplier_energy_pj
        row["total_energy_pj"] = outcome.energy.total_energy_pj
    return row
