"""Datapath energy model (Equation 1 of the paper).

The application-level comparison charges every addition and multiplication
with the PDP of the operator that executes it:

    PDP_app = sum_i PDP_add,i + sum_j PDP_mul,j

The crucial coupling the paper emphasises is that *careful data sizing
propagates*: when the adders produce ``k``-bit data, the multipliers (and the
transfers and the storage) only need to handle ``k`` bits, so their energy
shrinks too — whereas an approximate adder still emits full-width data and
leaves every other operator at full cost.  :func:`minimal_multiplier_for`
and :func:`minimal_adder_for` implement that coupling.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..hardware.report import HardwareReport
from ..hardware.synthesis import characterize_hardware
from ..operators.adders import TruncatedAdder
from ..operators.base import AdderOperator, MultiplierOperator, Operator
from ..operators.multipliers import TruncatedMultiplier
from .store import ResultStore


@dataclass
class OperationCounts:
    """Number of arithmetic operations executed by an application kernel."""

    additions: int = 0
    multiplications: int = 0

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(self.additions + other.additions,
                               self.multiplications + other.multiplications)

    def __sub__(self, other: "OperationCounts") -> "OperationCounts":
        """Delta between two snapshots of one (possibly shared) counter."""
        return OperationCounts(self.additions - other.additions,
                               self.multiplications - other.multiplications)

    def scaled(self, factor: int) -> "OperationCounts":
        return OperationCounts(self.additions * factor,
                               self.multiplications * factor)


class OperationCounter:
    """Mutable counter the application kernels update as they execute."""

    def __init__(self) -> None:
        self.additions = 0
        self.multiplications = 0

    def count_additions(self, count: int) -> None:
        self.additions += int(count)

    def count_multiplications(self, count: int) -> None:
        self.multiplications += int(count)

    def snapshot(self) -> OperationCounts:
        return OperationCounts(self.additions, self.multiplications)

    def reset(self) -> None:
        self.additions = 0
        self.multiplications = 0


def effective_data_width(operator: Operator) -> int:
    """Width of the data the operator emits into the rest of the datapath."""
    if isinstance(operator, MultiplierOperator):
        return min(operator.output_width, operator.input_width)
    return operator.output_width


def minimal_multiplier_for(adder: AdderOperator) -> TruncatedMultiplier:
    """Smallest exact multiplier matching the adder's emitted data width.

    With a data-sized (truncated / rounded) adder the downstream multiplier
    operands are only ``output_width`` bits wide; with an approximate adder
    they stay at full width.  The multiplier keeps as many output bits as its
    operand width (fixed-width operation), as in the paper's experiments.
    """
    width = max(2, effective_data_width(adder))
    return TruncatedMultiplier(width, width)


def minimal_adder_for(multiplier: MultiplierOperator) -> TruncatedAdder:
    """Smallest exact adder consuming the multiplier's emitted data width."""
    width = max(2, effective_data_width(multiplier))
    source_width = max(width, multiplier.input_width)
    return TruncatedAdder(source_width, width)


@dataclass
class DatapathEnergyModel:
    """Charges application operation counts with per-operator PDP values.

    Hardware reports are characterised lazily and cached, so sweeping many
    adder configurations over the same application only synthesises each
    distinct operator once.
    """

    frequency_hz: float = 100e6
    hardware_samples: int = 1200
    calibrated: bool = True
    #: Energy scale factor applied to multiplications by small constants
    #: (e.g. interpolation filter taps): a constant-coefficient multiplier is
    #: substantially cheaper than a general one.
    constant_coefficient_factor: float = 0.5
    #: Optional persistent store: characterisations found there skip
    #: synthesis entirely, and fresh ones are written back, so repeated
    #: explorations across sessions share one hardware cache on disk.
    store: Optional[ResultStore] = None
    _cache: Dict[str, HardwareReport] = field(default_factory=dict, repr=False)

    def report_for(self, operator: Operator) -> HardwareReport:
        """Hardware report of an operator (memoised by operator name).

        Lookup order: in-process cache, then the persistent store (a
        corrupt or stale record is a clean miss), then actual
        characterisation — which is written back to the store.
        """
        key = operator.name
        if key not in self._cache:
            store_key = self._store_key(operator)
            if self.store is not None:
                payload = self.store.load("hardware", store_key)
                report = HardwareReport.from_dict(payload) \
                    if payload is not None else None
                if report is not None:
                    self._cache[key] = report
                    return report
            report = characterize_hardware(
                operator, frequency_hz=self.frequency_hz,
                samples=self.hardware_samples, calibrated=self.calibrated)
            self._cache[key] = report
            if self.store is not None:
                self.store.save("hardware", store_key, report.to_dict())
        return self._cache[key]

    def _store_key(self, operator: Operator) -> Dict[str, object]:
        from .. import __version__

        return {
            "repro": __version__,
            "operator": operator.name,
            "frequency_hz": self.frequency_hz,
            "samples": self.hardware_samples,
            "calibrated": self.calibrated,
        }

    def energy_per_addition_pj(self, adder: AdderOperator) -> float:
        return self.report_for(adder).pdp_pj

    def energy_per_multiplication_pj(self, multiplier: MultiplierOperator,
                                     constant_coefficient: bool = False) -> float:
        energy = self.report_for(multiplier).pdp_pj
        if constant_coefficient:
            energy *= self.constant_coefficient_factor
        return energy

    def application_energy_pj(self, counts: OperationCounts,
                              adder: AdderOperator,
                              multiplier: Optional[MultiplierOperator] = None,
                              constant_coefficient_multiplications: bool = False
                              ) -> "DatapathEnergyBreakdown":
        """Total datapath energy for an application run (Equation 1)."""
        if multiplier is None:
            multiplier = minimal_multiplier_for(adder)
        add_energy = counts.additions * self.energy_per_addition_pj(adder)
        mul_energy = counts.multiplications * self.energy_per_multiplication_pj(
            multiplier, constant_coefficient_multiplications)
        return DatapathEnergyBreakdown(
            adder=adder.name,
            multiplier=multiplier.name,
            additions=counts.additions,
            multiplications=counts.multiplications,
            adder_energy_pj=add_energy,
            multiplier_energy_pj=mul_energy,
        )


@dataclass(frozen=True)
class DatapathEnergyBreakdown:
    """Energy of one application run, split by operator family."""

    adder: str
    multiplier: str
    additions: int
    multiplications: int
    adder_energy_pj: float
    multiplier_energy_pj: float

    @property
    def total_energy_pj(self) -> float:
        return self.adder_energy_pj + self.multiplier_energy_pj

    @property
    def adder_energy_per_op_pj(self) -> float:
        if self.additions == 0:
            return 0.0
        return self.adder_energy_pj / self.additions

    @property
    def multiplier_energy_per_op_pj(self) -> float:
        if self.multiplications == 0:
            return 0.0
        return self.multiplier_energy_pj / self.multiplications

    def to_dict(self) -> Dict[str, Union[str, int, float]]:
        return {
            "adder": self.adder,
            "multiplier": self.multiplier,
            "additions": self.additions,
            "multiplications": self.multiplications,
            "adder_energy_pj": self.adder_energy_pj,
            "multiplier_energy_pj": self.multiplier_energy_pj,
            "total_energy_pj": self.total_energy_pj,
        }
