"""Unified operator × word-length design-space engine.

The paper's headline result is a *joint* comparison: functionally
approximate operators versus carefully bit-width-sized exact datapaths on
one quality-versus-energy frontier.  This module is the engine behind that
comparison — it unifies the two exploration axes that used to live apart
(the operator sweeps of :mod:`repro.core.exploration` and the word-length
sizing coupling of :mod:`repro.core.datapath`) behind one abstraction:

* A :class:`DesignPoint` pairs a complete operator configuration (adder +
  multiplier) with the fixed-point word length it emits into the datapath.
  Sized points are built from :class:`~repro.fxp.format.FxpFormat` word
  lengths and carry the paper's sizing-propagation coupling — the partner
  operator is the *minimal exact* one the emitted data width allows
  (:func:`~repro.core.datapath.minimal_multiplier_for` /
  :func:`~repro.core.datapath.minimal_adder_for`), which is exactly where
  the "hidden cost" of functional approximation appears: an approximate
  adder still emits full-width data and leaves the multiplier at full cost.
* A :class:`DesignSpace` is an ordered, de-duplicated collection of design
  points, composed from axis generators (``+`` concatenates spaces) and
  filtered by axis label.

The :class:`~repro.core.study.Study` pipeline consumes a design space via
``Study.design_space(space)`` and extracts quality-versus-cost frontiers
via ``Study.pareto(quality=..., cost=...)``::

    from repro.core.designspace import joint_adder_space
    from repro import Study

    result = (Study()
              .workload("fft(32, frames=4)")
              .design_space(joint_adder_space(16))
              .energy()
              .pareto(quality="psnr_db", cost="total_energy_pj")
              .run(workers=4))
    front = result.fronts["psnr_db_vs_total_energy_pj"]
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..fxp.format import FxpFormat
from ..operators.adders import QuantizedOutputAdder, RoundedAdder, TruncatedAdder
from ..operators.base import AdderOperator, MultiplierOperator, Operator
from ..operators.multipliers import QuantizedOutputMultiplier, TruncatedMultiplier
from .datapath import effective_data_width, minimal_adder_for, minimal_multiplier_for
from .exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    unique_by_name,
)

#: Axis labels of the paper's two exploration directions.
AXIS_APPROXIMATE = "approximate"
AXIS_SIZED = "sized"
AXIS_OPERATOR = "operator"


def classify_axis(operator: Operator) -> str:
    """Which of the paper's axes an operator configuration belongs to.

    Data-sized (truncated / rounded output) operators are the careful
    bit-width sizing axis; everything else is functional approximation.
    """
    if isinstance(operator, (QuantizedOutputAdder, QuantizedOutputMultiplier)):
        return AXIS_SIZED
    return AXIS_APPROXIMATE


@dataclass(frozen=True)
class DesignPoint:
    """One point of the joint design space: operators plus word length.

    ``role`` names the slot functionally under test (the paper swaps one
    operator family at a time): ``"adder"`` injects the adder into the
    kernels and charges the multiplier as the energy-pairing partner,
    ``"multiplier"`` is symmetric, and ``"operator"`` characterises the
    bare operator with no datapath pairing (Figures 3-4 / Table I studies).

    ``word_length`` is the data width the point emits into the rest of the
    datapath (:func:`~repro.core.datapath.effective_data_width` of the
    swept operator unless overridden); :meth:`fxp_format` exposes it as the
    corresponding fractional fixed-point format.

    ``config`` carries per-point workload configuration overrides as a
    sorted tuple of items (hashable), e.g. ``(("data_width", 12),)`` for a
    true narrow-datapath run.
    """

    adder: Optional[AdderOperator] = None
    multiplier: Optional[MultiplierOperator] = None
    role: str = "adder"
    axis: str = AXIS_APPROXIMATE
    word_length: Optional[int] = None
    inject_pair: bool = False
    config: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.role not in ("adder", "multiplier", "operator"):
            raise ValueError(f"unknown design-point role {self.role!r}")
        if self.role == "adder" and self.adder is None:
            raise ValueError("adder-role design point needs an adder")
        if self.role == "multiplier" and self.multiplier is None:
            raise ValueError("multiplier-role design point needs a multiplier")
        if self.role == "operator" and self.swept is None:
            raise ValueError("operator-role design point needs an operator")

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def swept(self) -> Optional[Operator]:
        """The operator functionally under test."""
        if self.role == "multiplier":
            return self.multiplier
        if self.role == "adder":
            return self.adder
        return self.adder if self.adder is not None else self.multiplier

    @property
    def emitted_width(self) -> int:
        """Data width the point feeds into the downstream datapath."""
        if self.word_length is not None:
            return int(self.word_length)
        swept = self.swept
        return effective_data_width(swept) if swept is not None else 0

    def fxp_format(self) -> Optional[FxpFormat]:
        """Fractional fixed-point format of the emitted word length."""
        width = self.emitted_width
        if width <= 0:
            return None
        return FxpFormat.for_word_length(width)

    @property
    def label(self) -> str:
        """Human-readable identity, e.g. ``"sized:ADDt(16,10)"``."""
        swept = self.swept
        return f"{self.axis}:{swept.name if swept is not None else '?'}"

    @property
    def key(self) -> Tuple[object, ...]:
        """De-duplication identity within a design space.

        The per-point configuration is canonicalised to a JSON token so
        unhashable override values (a stimulus image array, a cloud list)
        are fingerprinted by content rather than crashing the space's
        dedup set.
        """
        import json

        from .store import canonical_key

        return (
            self.adder.name if self.adder is not None else None,
            self.multiplier.name if self.multiplier is not None else None,
            self.role, self.axis, self.word_length, self.inject_pair,
            json.dumps(canonical_key(dict(self.config)), sort_keys=True),
        )

    def describe(self) -> Dict[str, object]:
        """Row metadata shared by the design-space result builders."""
        info: Dict[str, object] = {"design": self.label, "axis": self.axis,
                                   "word_length": self.emitted_width}
        if self.adder is not None:
            info["adder"] = self.adder.name
        if self.multiplier is not None:
            info["multiplier"] = self.multiplier.name
        return info


class DesignSpace:
    """Ordered, de-duplicated collection of design points.

    Spaces compose with ``+`` (order-preserving union) and can be filtered
    by axis, so the paper's joint comparison is literally
    ``sized_adder_axis(...) + approximate_adder_axis(...)``.
    """

    def __init__(self, points: Iterable[DesignPoint] = ()) -> None:
        self._points: List[DesignPoint] = []
        self._keys: set = set()
        self.extend(points)

    @classmethod
    def of(cls, space: Union["DesignSpace", Iterable[DesignPoint]]
           ) -> "DesignSpace":
        if isinstance(space, DesignSpace):
            return space
        return cls(space)

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def add(self, point: DesignPoint) -> "DesignSpace":
        """Append one point unless an identical one is already present."""
        if point.key not in self._keys:
            self._keys.add(point.key)
            self._points.append(point)
        return self

    def extend(self, points: Iterable[DesignPoint]) -> "DesignSpace":
        for point in points:
            self.add(point)
        return self

    def __add__(self, other: Union["DesignSpace", Iterable[DesignPoint]]
                ) -> "DesignSpace":
        merged = DesignSpace(self._points)
        merged.extend(DesignSpace.of(other))
        return merged

    def subset(self, axis: str) -> "DesignSpace":
        """Points of one axis only (e.g. ``"sized"``)."""
        return DesignSpace(p for p in self._points if p.axis == axis)

    def shard(self, index: int, count: int) -> "DesignSpace":
        """Deterministic round-robin shard of the ordered point list.

        Point ``j`` of the de-duplicated, composition-ordered list belongs
        to shard ``index`` iff ``j % count == index``, so for any ``count``
        the shards are pairwise disjoint, their union is the whole space in
        order, and the partition is stable across runs and machines —
        exactly the contract a fan-out/fan-in execution (one machine per
        shard, merged afterwards) needs.  Composition and dedup happen
        *before* sharding, so ``(a + b).shard(i, n)`` is well-defined even
        when ``a`` and ``b`` overlap.
        """
        from .study import parse_shard

        index, count = parse_shard((index, count))
        return DesignSpace(point for j, point in enumerate(self._points)
                           if j % count == index)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[DesignPoint]:
        return list(self._points)

    def labels(self) -> List[str]:
        return [point.label for point in self._points]

    def axes(self) -> List[str]:
        """Sorted distinct axis labels present in the space."""
        return sorted({point.axis for point in self._points})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DesignSpace {len(self._points)} points axes={self.axes()}>"


# --------------------------------------------------------------------------- #
# Axis generators
# --------------------------------------------------------------------------- #
def adder_point(adder: AdderOperator,
                multiplier: Optional[MultiplierOperator] = None,
                axis: Optional[str] = None,
                inject_pair: bool = False,
                config: Optional[Dict[str, object]] = None) -> DesignPoint:
    """Adder-role point with the sizing-propagated multiplier pairing."""
    if multiplier is None:
        multiplier = minimal_multiplier_for(adder)
    return DesignPoint(
        adder=adder, multiplier=multiplier, role="adder",
        axis=axis if axis is not None else classify_axis(adder),
        inject_pair=inject_pair,
        config=tuple(sorted((config or {}).items())))


def multiplier_point(multiplier: MultiplierOperator,
                     adder: Optional[AdderOperator] = None,
                     axis: Optional[str] = None,
                     inject_pair: bool = False,
                     config: Optional[Dict[str, object]] = None) -> DesignPoint:
    """Multiplier-role point with the sizing-propagated adder pairing."""
    if adder is None:
        adder = minimal_adder_for(multiplier)
    return DesignPoint(
        multiplier=multiplier, adder=adder, role="multiplier",
        axis=axis if axis is not None else classify_axis(multiplier),
        inject_pair=inject_pair,
        config=tuple(sorted((config or {}).items())))


def adder_axis(adders: Iterable[AdderOperator],
               pair: Optional[MultiplierOperator] = None,
               inject_pair: bool = False) -> DesignSpace:
    """Design space sweeping given adders, each classified onto its axis."""
    return DesignSpace(adder_point(adder, multiplier=pair,
                                   inject_pair=inject_pair)
                       for adder in unique_by_name(adders))


def multiplier_axis(multipliers: Iterable[MultiplierOperator],
                    pair: Optional[AdderOperator] = None,
                    inject_pair: bool = False) -> DesignSpace:
    """Design space sweeping given multipliers, classified onto their axes."""
    return DesignSpace(multiplier_point(multiplier, adder=pair,
                                        inject_pair=inject_pair)
                       for multiplier in unique_by_name(multipliers))


def operator_axis(operators: Iterable[Operator],
                  axis: str = AXIS_OPERATOR) -> DesignSpace:
    """Bare-operator characterisation points (no datapath pairing)."""
    points = []
    for operator in operators:
        if isinstance(operator, AdderOperator):
            points.append(DesignPoint(adder=operator, role="operator",
                                      axis=axis))
        elif isinstance(operator, MultiplierOperator):
            points.append(DesignPoint(multiplier=operator, role="operator",
                                      axis=axis))
        else:
            raise TypeError(f"{operator.name} is neither an adder nor a "
                            f"multiplier")
    return DesignSpace(points)


def sized_adder_axis(input_width: int = 16,
                     word_lengths: Optional[Sequence[int]] = None,
                     formats: Optional[Sequence[FxpFormat]] = None,
                     rounded: bool = False) -> DesignSpace:
    """Careful-sizing axis: exact adders quantised to each word length.

    Word lengths come either from explicit integers or from
    :class:`~repro.fxp.format.FxpFormat` instances (the paper's Qm.n
    notation); each yields a truncated (or rounded) ``input_width``-bit
    adder emitting that many bits, paired with the minimal exact multiplier
    its output width allows — the sizing-propagation coupling of
    :func:`~repro.core.datapath.minimal_multiplier_for`.
    """
    if formats is not None:
        widths: Sequence[int] = [fmt.word_length for fmt in formats]
    elif word_lengths is not None:
        widths = list(word_lengths)
    else:
        widths = list(range(input_width - 1, 1, -1))
    family = RoundedAdder if rounded else TruncatedAdder
    return DesignSpace(
        adder_point(family(input_width, int(width)), axis=AXIS_SIZED)
        for width in widths)


def sized_multiplier_axis(input_width: int = 16,
                          word_lengths: Optional[Sequence[int]] = None,
                          formats: Optional[Sequence[FxpFormat]] = None
                          ) -> DesignSpace:
    """Careful-sizing axis on the multiplier slot (truncated outputs)."""
    if formats is not None:
        widths: Sequence[int] = [fmt.word_length for fmt in formats]
    elif word_lengths is not None:
        widths = list(word_lengths)
    else:
        widths = list(range(2, input_width + 1, 2))
    return DesignSpace(
        multiplier_point(TruncatedMultiplier(input_width, int(width)),
                         axis=AXIS_SIZED)
        for width in widths)


def approximate_adder_axis(input_width: int = 16,
                           adders: Optional[Iterable[AdderOperator]] = None,
                           reduced: bool = False) -> DesignSpace:
    """Functional-approximation axis: the paper's approximate adder sweeps.

    Approximate adders emit full-width data, so their minimal multiplier
    pairing stays at full width — the "hidden cost" the joint frontier
    exposes.
    """
    if adders is None:
        if reduced:
            adders = list(sweep_aca_adders(input_width, [6, 10, 14])) \
                + list(sweep_etaiv_adders(input_width, [2, 4, 8])) \
                + list(sweep_rcaapx_adders(input_width, [4, 8],
                                           fa_types=(1, 2, 3)))
        else:
            adders = list(sweep_aca_adders(input_width)) \
                + list(sweep_etaiv_adders(input_width)) \
                + list(sweep_rcaapx_adders(input_width,
                                           range(2, input_width, 2)))
    return DesignSpace(adder_point(adder, axis=AXIS_APPROXIMATE)
                       for adder in unique_by_name(adders))


def joint_adder_space(input_width: int = 16,
                      reduced: bool = False,
                      sized_widths: Optional[Sequence[int]] = None,
                      approximate: Optional[Iterable[AdderOperator]] = None
                      ) -> DesignSpace:
    """The paper's headline design space: sized and approximate adders.

    Truncated and rounded data-sized configurations (the careful-sizing
    axis, with sizing-propagated multiplier energy) joined with every
    functionally approximate adder family (full-width pairing) — the two
    populations whose joint quality-versus-energy frontier is the paper's
    central claim.  ``sized_widths`` / ``approximate`` override the
    population of either axis (used by per-workload reduced sweeps);
    ``reduced`` picks the built-in representative subsets.
    """
    if sized_widths is None:
        sized_widths = [15, 13, 11, 9, 7] if reduced \
            else list(range(input_width - 1, 1, -1))
    space = sized_adder_axis(input_width, word_lengths=sized_widths)
    space = space + sized_adder_axis(input_width, word_lengths=sized_widths,
                                     rounded=True)
    return space + approximate_adder_axis(input_width, adders=approximate,
                                          reduced=reduced)
