"""Operator registry and factory.

The experiments, examples and sweeps refer to operators by short
specification strings identical to the paper's notation — ``"ADDt(16,10)"``,
``"ACA(16,12)"``, ``"RCAApx(16,6,3)"``, ``"AAM(16)"`` — and this module turns
those strings into configured operator instances.  New operator types can be
registered, which is how a downstream user would plug their own approximate
design into the framework.
"""
from __future__ import annotations

import inspect
import re
from typing import Callable, Dict, List, Sequence, Tuple

from ..operators.adders import (
    ACAAdder,
    ETAIIAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from ..operators.base import Operator
from ..operators.multipliers import (
    AAMMultiplier,
    ABMMultiplier,
    BoothMultiplier,
    ExactMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)

OperatorFactory = Callable[..., Operator]

_REGISTRY: Dict[str, OperatorFactory] = {}


def register_operator(mnemonic: str, factory: OperatorFactory) -> None:
    """Register (or override) a factory under a mnemonic such as ``"ADDt"``."""
    if not mnemonic:
        raise ValueError("mnemonic must be a non-empty string")
    _REGISTRY[mnemonic.lower()] = factory


def registered_mnemonics() -> List[str]:
    """Sorted list of known operator mnemonics."""
    return sorted(_REGISTRY)


def describe_operators() -> Dict[str, Dict[str, str]]:
    """Machine-readable description of every registered operator.

    ``{mnemonic: {"factory", "role", "summary"}}`` — the role classifies
    the factory as ``"adder"`` / ``"multiplier"`` (``"operator"`` when it
    is neither or not a class), the summary is the first docstring line.
    The evaluation server's ``experiments`` action exposes this, so remote
    clients can discover the operator vocabulary without the source tree.
    """
    from ..operators.base import AdderOperator, MultiplierOperator

    described: Dict[str, Dict[str, str]] = {}
    for mnemonic in registered_mnemonics():
        factory = _REGISTRY[mnemonic]
        role = "operator"
        if isinstance(factory, type):
            if issubclass(factory, AdderOperator):
                role = "adder"
            elif issubclass(factory, MultiplierOperator):
                role = "multiplier"
        doc = inspect.getdoc(factory) or ""
        described[mnemonic] = {
            "factory": getattr(factory, "__name__", repr(factory)),
            "role": role,
            "summary": doc.splitlines()[0].strip() if doc else "",
        }
    return described


def create_operator(mnemonic: str, *args: object, **kwargs: object) -> Operator:
    """Instantiate an operator from its mnemonic and constructor parameters."""
    key = mnemonic.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown operator mnemonic {mnemonic!r}; "
                       f"known: {', '.join(registered_mnemonics())}")
    return _REGISTRY[key](*args, **kwargs)


_SPEC_PATTERN = re.compile(r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
                           r"(\(\s*(?P<args>[^)]*)\))?\s*$")


def _parse_argument_value(raw: str, spec: str) -> object:
    """Parse one argument token into a bool, int or float."""
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered == "none":
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"cannot parse argument {raw!r} in specification "
                         f"{spec!r}; expected an integer, float or boolean")


def parse_spec(spec: str) -> Tuple[str, List[object], Dict[str, object]]:
    """Split ``"Name(a, b, key=value)"`` into name, positionals and keywords.

    Both the operator registry and the workload registry accept this syntax;
    values may be integers, floats, booleans (``true``/``false``) or ``none``.
    Malformed tokens raise :class:`ValueError` naming the offending token.
    """
    match = _SPEC_PATTERN.match(spec)
    if match is None:
        raise ValueError(f"malformed specification {spec!r}")
    name = match.group("name")
    args_text = match.group("args") or ""
    args: List[object] = []
    kwargs: Dict[str, object] = {}
    for token in args_text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" in token:
            key, _, raw = token.partition("=")
            key, raw = key.strip(), raw.strip()
            if not key.isidentifier():
                raise ValueError(f"malformed keyword argument {token!r} in "
                                 f"specification {spec!r}")
            kwargs[key] = _parse_argument_value(raw, spec)
        else:
            if kwargs:
                raise ValueError(f"positional argument {token!r} after a "
                                 f"keyword argument in specification {spec!r}")
            args.append(_parse_argument_value(token, spec))
    return name, args, kwargs


def parse_operator(spec: str) -> Operator:
    """Parse a paper-style specification string into an operator instance.

    Examples: ``"ADDt(16,10)"``, ``"ACA(16,12)"``, ``"ETAIV(16,4)"``,
    ``"RCAApx(16,6,3)"``, ``"MULt(16,16)"``, ``"AAM(16)"``, ``"ABM(16)"``,
    and keyword forms such as ``"ACA(16, prediction_bits=12)"``.
    """
    name, args, kwargs = parse_spec(spec)
    try:
        return create_operator(name, *args, **kwargs)
    except TypeError as exc:
        raise ValueError(f"invalid arguments for operator {name!r} in "
                         f"specification {spec!r}: {exc}") from exc


def parse_operators(specs: Sequence[str]) -> List[Operator]:
    """Parse several specification strings at once."""
    return [parse_operator(spec) for spec in specs]


# --------------------------------------------------------------------------- #
# Built-in registrations (paper notation)
# --------------------------------------------------------------------------- #
register_operator("ADD", ExactAdder)
register_operator("ADDt", TruncatedAdder)
register_operator("ADDr", RoundedAdder)
register_operator("ADDrne", RoundToNearestEvenAdder)
register_operator("ACA", ACAAdder)
register_operator("ETAII", ETAIIAdder)
register_operator("ETAIV", ETAIVAdder)
register_operator("RCAApx", RCAApxAdder)
register_operator("MUL", ExactMultiplier)
register_operator("MULt", TruncatedMultiplier)
register_operator("MULr", RoundedMultiplier)
register_operator("BOOTH", BoothMultiplier)
register_operator("AAM", AAMMultiplier)
register_operator("ABM", ABMMultiplier)
