"""Operator registry and factory.

The experiments, examples and sweeps refer to operators by short
specification strings identical to the paper's notation — ``"ADDt(16,10)"``,
``"ACA(16,12)"``, ``"RCAApx(16,6,3)"``, ``"AAM(16)"`` — and this module turns
those strings into configured operator instances.  New operator types can be
registered, which is how a downstream user would plug their own approximate
design into the framework.
"""
from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence

from ..operators.adders import (
    ACAAdder,
    ETAIIAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from ..operators.base import Operator
from ..operators.multipliers import (
    AAMMultiplier,
    ABMMultiplier,
    BoothMultiplier,
    ExactMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)

OperatorFactory = Callable[..., Operator]

_REGISTRY: Dict[str, OperatorFactory] = {}


def register_operator(mnemonic: str, factory: OperatorFactory) -> None:
    """Register (or override) a factory under a mnemonic such as ``"ADDt"``."""
    if not mnemonic:
        raise ValueError("mnemonic must be a non-empty string")
    _REGISTRY[mnemonic.lower()] = factory


def registered_mnemonics() -> List[str]:
    """Sorted list of known operator mnemonics."""
    return sorted(_REGISTRY)


def create_operator(mnemonic: str, *args: int, **kwargs: object) -> Operator:
    """Instantiate an operator from its mnemonic and positional parameters."""
    key = mnemonic.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown operator mnemonic {mnemonic!r}; "
                       f"known: {', '.join(registered_mnemonics())}")
    return _REGISTRY[key](*args, **kwargs)


_SPEC_PATTERN = re.compile(r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
                           r"(\(\s*(?P<args>[^)]*)\))?\s*$")


def parse_operator(spec: str) -> Operator:
    """Parse a paper-style specification string into an operator instance.

    Examples: ``"ADDt(16,10)"``, ``"ACA(16,12)"``, ``"ETAIV(16,4)"``,
    ``"RCAApx(16,6,3)"``, ``"MULt(16,16)"``, ``"AAM(16)"``, ``"ABM(16)"``.
    """
    match = _SPEC_PATTERN.match(spec)
    if match is None:
        raise ValueError(f"malformed operator specification {spec!r}")
    name = match.group("name")
    args_text = match.group("args") or ""
    args: List[int] = []
    for token in args_text.split(","):
        token = token.strip()
        if token:
            args.append(int(token))
    return create_operator(name, *args)


def parse_operators(specs: Sequence[str]) -> List[Operator]:
    """Parse several specification strings at once."""
    return [parse_operator(spec) for spec in specs]


# --------------------------------------------------------------------------- #
# Built-in registrations (paper notation)
# --------------------------------------------------------------------------- #
register_operator("ADD", ExactAdder)
register_operator("ADDt", TruncatedAdder)
register_operator("ADDr", RoundedAdder)
register_operator("ADDrne", RoundToNearestEvenAdder)
register_operator("ACA", ACAAdder)
register_operator("ETAII", ETAIIAdder)
register_operator("ETAIV", ETAIVAdder)
register_operator("RCAApx", RCAApxAdder)
register_operator("MUL", ExactMultiplier)
register_operator("MULt", TruncatedMultiplier)
register_operator("MULr", RoundedMultiplier)
register_operator("BOOTH", BoothMultiplier)
register_operator("AAM", AAMMultiplier)
register_operator("ABM", ABMMultiplier)
