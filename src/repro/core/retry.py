"""Retry with exponential backoff and jitter — one helper, two consumers.

The fleet worker polls a shared-directory lease queue (contention and
drain-then-refill are *normal*, not errors) and the evaluation-server
client crosses a network (a connect refused during a server restart is
transient).  Both want the same shape: try, sleep an exponentially
growing — but jittered, so a fleet of workers does not thunder in
lockstep — delay, try again, and give up loudly after a bounded number
of attempts.

:func:`retry_with_backoff` is deliberately dependency-injected (``sleep``
and ``rng``) so tests can pin the exact schedule without waiting it out.
"""
from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

T = TypeVar("T")

RetryOn = Union[Type[BaseException], Tuple[Type[BaseException], ...]]


def backoff_delays(retries: int, base_delay: float, jitter: float,
                   max_delay: float = 30.0,
                   rng: Optional[random.Random] = None) -> list:
    """The delay schedule :func:`retry_with_backoff` sleeps between tries.

    Delay ``k`` (zero-based) is ``base_delay * 2**k``, capped at
    ``max_delay``, then scaled by a uniform random factor in
    ``[1 - jitter, 1 + jitter]``.  ``jitter=0`` makes the schedule exact —
    what the tests pin — and a seeded ``rng`` makes a jittered one
    reproducible.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be within [0, 1], got {jitter}")
    rng = rng if rng is not None else random
    delays = []
    for attempt in range(retries):
        delay = min(base_delay * (2.0 ** attempt), max_delay)
        if jitter:
            delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        delays.append(max(0.0, delay))
    return delays


def retry_with_backoff(fn: Callable[[], T], retries: int = 5,
                       base_delay: float = 0.05, jitter: float = 0.5,
                       retry_on: RetryOn = Exception,
                       max_delay: float = 30.0,
                       sleep: Callable[[float], None] = time.sleep,
                       rng: Optional[random.Random] = None,
                       deadline_s: Optional[float] = None,
                       clock: Callable[[], float] = time.monotonic) -> T:
    """Call ``fn`` until it returns, retrying ``retry_on`` with backoff.

    ``fn`` is attempted up to ``retries + 1`` times.  An exception matching
    ``retry_on`` triggers a sleep (next delay from :func:`backoff_delays`)
    and another attempt; any other exception — and the matching exception
    of the *last* attempt — propagates unchanged, so the caller sees the
    real failure, not a wrapper.

    ``deadline_s`` bounds the retry loop in wall time as well as attempts:
    once sleeping the next delay would land past the deadline (measured on
    ``clock`` from the first attempt), the matching exception propagates
    immediately instead — a caller with a deadline prefers a prompt real
    failure over a sleep it cannot afford.  The attempt in flight is never
    interrupted; only further sleeps are cut.
    """
    delays = backoff_delays(retries, base_delay, jitter,
                            max_delay=max_delay, rng=rng)
    start = clock() if deadline_s is not None else 0.0
    for delay in delays:
        try:
            return fn()
        except retry_on:
            if deadline_s is not None \
                    and clock() - start + delay >= deadline_s:
                raise
            sleep(delay)
    return fn()
