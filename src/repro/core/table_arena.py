"""Cross-process shared-memory arena for the LUT tables.

Every process of a sweep — the ``run --workers N`` pool, the shard matrix,
``fleet work``-ers, the evaluation server — needs the very same operator
tables: a table is a pure function of its key (the operator name embeds the
parameters).  Before the arena each process rebuilt them from cold, which for
the bit-serial multiplier models dominates small sweeps.  The arena maps each
table into a named ``multiprocessing.shared_memory`` segment with
*attach-or-build-once* semantics:

* the segment name is a deterministic hash of the table key and the package
  version, so every process computes the same name without coordination;
* the first process to ``create`` the segment builds the table in place and
  then publishes it by flipping a ``ready`` flag in the segment header;
* every other process (including later runs on the same machine — segments
  outlive their creator, which is the whole point) attaches, waits for the
  flag if the build is still in flight, and maps the table zero-copy;
* a builder that dies mid-build leaves ``ready`` unset; the next attacher
  times out, unlinks the stale segment and builds a fresh one.

Lazily-filled tables (the per-constant value tables) share their ``filled``
bitmap through the arena as well: concurrent fillers write identical values
(the operators are deterministic pure functions) and each table entry's value
is stored before its ``filled`` flag, so the worst case across processes —
exactly as across threads, see the audit note in ``backends.py`` — is
duplicated fill work, never a wrong read.

Lifecycle: each process registers as a user by incrementing the refcount in
the segment header and decrements it again from an ``atexit`` hook (mappings
are closed, segments are *not* unlinked — a warm arena surviving process exit
is the feature).  :func:`purge` unlinks segments no process is using; the
``REPRO_TABLE_ARENA=0`` environment variable opts out entirely, returning to
per-process heap tables.
"""
from __future__ import annotations

import atexit
import hashlib
import json
import os
import struct
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    _SHM_AVAILABLE = False

#: Environment variable opting out of the arena (``"0"`` disables it).
ARENA_ENV = "REPRO_TABLE_ARENA"

#: Segment header: magic(8s) ready(B) pad(7x) refcount(q) nbytes(Q) created(d).
_MAGIC = b"RPROARN1"
_HEADER = struct.Struct("<8sB7xqQd")
_HEADER_SIZE = 64  # padded so the payload starts cache-line aligned
_READY_OFFSET = 8
_REFCOUNT_OFFSET = 16

#: How long an attacher waits for an in-flight build before declaring the
#: segment stale (builders publish in well under a second; a dead builder
#: never publishes at all).
_READY_TIMEOUT_S = 5.0

_LOCK = threading.Lock()
#: Open segments of this process: name -> (SharedMemory, views keep-alive).
_SEGMENTS: Dict[str, object] = {}
_BUILDS = 0
_ATTACHES = 0
_REHITS = 0
_LOCALS = 0
_STALE_CLEANED = 0
_ATEXIT_REGISTERED = False


def arena_enabled() -> bool:
    """Whether tables are placed in the shared arena (default yes)."""
    return _SHM_AVAILABLE and os.environ.get(ARENA_ENV, "1") != "0"


def segment_name(key: Tuple[object, ...]) -> str:
    """Deterministic segment name of a table key (same in every process).

    The name embeds the package version so an upgraded package never attaches
    to tables built by an incompatible one, and stays under the 31-character
    POSIX ``shm_open`` name limit.
    """
    from .. import __version__

    digest = hashlib.blake2b(
        repr((__version__, key)).encode("utf-8"), digest_size=11).hexdigest()
    return f"rpa{digest}"


def _registry_path() -> str:
    return os.path.join(tempfile.gettempdir(),
                        f"repro-arena-{os.getuid()}.json")


def _locked_registry_update(update: Callable[[Dict[str, dict]], None]) -> None:
    """Read-modify-write the registry file under an exclusive file lock."""
    path = _registry_path()
    try:
        import fcntl
        lock_path = path + ".lock"
        with open(lock_path, "a") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            segments = _read_registry()
            update(segments)
            tmp = path + f".tmp{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump({"segments": segments}, handle)
            os.replace(tmp, path)
    except (ImportError, OSError):  # pragma: no cover - best effort
        pass


def _read_registry() -> Dict[str, dict]:
    try:
        with open(_registry_path()) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return {}
    segments = document.get("segments") if isinstance(document, dict) else None
    return segments if isinstance(segments, dict) else {}


def _register_segment(name: str, key: Tuple[object, ...], nbytes: int) -> None:
    def update(segments: Dict[str, dict]) -> None:
        segments.setdefault(name, {
            "key": repr(key),
            "nbytes": int(nbytes),
            "created": time.time(),
            "pid": os.getpid(),
        })

    _locked_registry_update(update)


def _array_layout(spec: Sequence[Tuple[Tuple[int, ...], object]]
                  ) -> Tuple[List[Tuple[int, Tuple[int, ...], np.dtype]], int]:
    """Payload offsets (8-byte aligned) and total size for an array spec."""
    layout = []
    offset = 0
    for shape, dtype in spec:
        dtype = np.dtype(dtype)
        count = 1
        for extent in shape:
            count *= int(extent)
        layout.append((offset, tuple(int(s) for s in shape), dtype))
        offset += -(-count * dtype.itemsize // 8) * 8
    return layout, offset


def _views(shm, layout) -> List[np.ndarray]:
    return [np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                       offset=_HEADER_SIZE + offset)
            for offset, shape, dtype in layout]


def _local_arrays(layout) -> List[np.ndarray]:
    return [np.zeros(shape, dtype=dtype) for _, shape, dtype in layout]


def _bump_refcount(shm, delta: int) -> int:
    """Adjust the advisory user count in the segment header.

    The read-modify-write is not atomic across processes; the count is
    advisory (it gates :func:`purge`, never correctness) and a lost update
    only delays an unlink.
    """
    (count,) = struct.unpack_from("<q", shm.buf, _REFCOUNT_OFFSET)
    count += delta
    struct.pack_into("<q", shm.buf, _REFCOUNT_OFFSET, count)
    return count


def _unregister_from_tracker(shm) -> None:
    """Keep the resource tracker from unlinking a kept segment at exit.

    Python's tracker treats every created *and* (on 3.x < 3.13) attached
    segment as owned and destroys it at process exit; arena segments are
    shared infrastructure that must outlive any single process, so every
    handle we intend to *keep* is unregistered — the registry plus
    :func:`purge` own cleanup instead.  Handles about to be ``unlink``-ed
    are left registered (``unlink`` unregisters itself; a second unregister
    makes the tracker process print spurious ``KeyError`` tracebacks).
    """
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _remember(name: str, shm, views: List[np.ndarray]) -> None:
    global _ATEXIT_REGISTERED
    with _LOCK:
        _SEGMENTS[name] = (shm, views)
        if not _ATEXIT_REGISTERED:
            atexit.register(_release_all)
            _ATEXIT_REGISTERED = True


def get_or_build(key: Tuple[object, ...],
                 spec: Sequence[Tuple[Tuple[int, ...], object]],
                 build: Optional[Callable[[List[np.ndarray]], None]] = None,
                 timeout_s: float = _READY_TIMEOUT_S,
                 ) -> Tuple[List[np.ndarray], str]:
    """Arrays for ``key``, shared across processes when the arena is enabled.

    ``spec`` is a sequence of ``(shape, dtype)`` pairs; the returned arrays
    start zero-filled.  ``build`` (optional) populates them in place exactly
    once machine-wide — attachers get the already-built content.  Returns
    ``(arrays, mode)`` with mode ``"built"``, ``"attached"``, ``"rehit"``
    (already mapped by this process) or ``"local"`` (arena disabled or
    unavailable; plain process-private arrays).
    """
    global _BUILDS, _ATTACHES, _REHITS, _LOCALS
    layout, payload = _array_layout(spec)
    if not arena_enabled():
        arrays = _local_arrays(layout)
        if build is not None:
            build(arrays)
        with _LOCK:
            _LOCALS += 1
        return arrays, "local"

    name = segment_name(key)
    with _LOCK:
        cached = _SEGMENTS.get(name)
        if cached is not None:
            _REHITS += 1
            return cached[1], "rehit"

    for attempt in range(3):
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=_HEADER_SIZE + payload)
        except FileExistsError:
            result = _attach(name, key, layout, payload, timeout_s)
            if result is not None:
                return result
            continue  # stale segment was cleaned; try to create again
        except OSError:
            break  # no shared memory available (full /dev/shm, sealed env)
        _unregister_from_tracker(shm)  # the segment must outlive this process
        _HEADER.pack_into(shm.buf, 0, _MAGIC, 0, 1, payload, time.time())
        views = _views(shm, layout)
        if build is not None:
            build(views)
        shm.buf[_READY_OFFSET] = 1  # publish: content is stored before this
        _remember(name, shm, views)
        _register_segment(name, key, payload)
        with _LOCK:
            _BUILDS += 1
        return views, "built"

    arrays = _local_arrays(layout)
    if build is not None:
        build(arrays)
    with _LOCK:
        _LOCALS += 1
    return arrays, "local"


def _attach(name: str, key: Tuple[object, ...], layout, payload: int,
            timeout_s: float) -> Optional[Tuple[List[np.ndarray], str]]:
    """Attach to an existing segment; ``None`` means it was stale (retry)."""
    global _ATTACHES, _STALE_CLEANED
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return None  # unlinked between our create attempt and now
    magic, = struct.unpack_from("<8s", shm.buf, 0)
    nbytes, = struct.unpack_from("<Q", shm.buf, 24)
    deadline = time.monotonic() + timeout_s
    while (magic == _MAGIC and nbytes == payload
           and shm.buf[_READY_OFFSET] != 1
           and time.monotonic() < deadline):
        time.sleep(0.005)
        magic, = struct.unpack_from("<8s", shm.buf, 0)
        nbytes, = struct.unpack_from("<Q", shm.buf, 24)
    if magic != _MAGIC or nbytes != payload \
            or shm.buf[_READY_OFFSET] != 1:
        # Wrong layout or a builder that died mid-build: remove the stale
        # segment so the caller can build a fresh one.
        try:
            shm.unlink()  # also unregisters from the resource tracker
        except OSError:  # pragma: no cover - already unlinked by a peer
            pass
        shm.close()
        with _LOCK:
            _STALE_CLEANED += 1
        return None
    _unregister_from_tracker(shm)  # kept: must outlive this process
    _bump_refcount(shm, +1)
    views = _views(shm, layout)
    _remember(name, shm, views)
    _register_segment(name, key, payload)
    with _LOCK:
        _ATTACHES += 1
    return views, "attached"


def segment_refcount(key: Tuple[object, ...]) -> Optional[int]:
    """Advisory user count of the segment for ``key`` (``None`` if absent)."""
    if not _SHM_AVAILABLE:
        return None
    name = segment_name(key)
    with _LOCK:
        cached = _SEGMENTS.get(name)
    if cached is not None:
        (count,) = struct.unpack_from("<q", cached[0].buf, _REFCOUNT_OFFSET)
        return count
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    _unregister_from_tracker(shm)
    (count,) = struct.unpack_from("<q", shm.buf, _REFCOUNT_OFFSET)
    shm.close()
    return count


def detach_all() -> int:
    """Close this process's mappings (segments stay for other processes).

    Mainly for benchmarks: detaching and re-acquiring measures a true
    cross-process attach instead of the in-process rehit.  Mappings still
    referenced by live table views cannot be closed and are skipped.
    """
    return _release_all(decrement=False)


def _release_all(decrement: bool = True) -> int:
    """Drop every open mapping; with ``decrement``, also de-register as user.

    Runs from ``atexit``: the refcounted cleanup on process exit.  Segments
    are never unlinked here — the warm arena outliving its processes is what
    makes the second ``run --workers N`` (and every fleet worker after the
    first) attach instead of rebuild.
    """
    released = 0
    with _LOCK:
        names = list(_SEGMENTS)
        for name in names:
            shm, _views_alive = _SEGMENTS.pop(name)
            try:
                if decrement:
                    _bump_refcount(shm, -1)
                shm.close()
            except (BufferError, OSError):  # pragma: no cover
                pass  # live table views pin the mapping; the OS reaps at exit
            released += 1
    return released


def purge(force: bool = False) -> int:
    """Unlink idle segments (refcount <= 0) and prune the registry.

    ``force=True`` unlinks regardless of the advisory refcount (tests and
    explicit operator cleanup).  Returns the number of segments removed.
    """
    if not _SHM_AVAILABLE:
        return 0
    _release_all(decrement=False)
    removed = []
    for name in list(_read_registry()):
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            removed.append(name)  # already gone: prune the registry entry
            continue
        (count,) = struct.unpack_from("<q", shm.buf, _REFCOUNT_OFFSET)
        if force or count <= 0:
            try:
                shm.unlink()  # also unregisters from the resource tracker
            except OSError:  # pragma: no cover
                pass
            removed.append(name)
        else:
            _unregister_from_tracker(shm)  # kept: must outlive this process
        shm.close()

    def update(segments: Dict[str, dict]) -> None:
        for name in removed:
            segments.pop(name, None)

    if removed:
        _locked_registry_update(update)
    return len(removed)


def arena_stats() -> Dict[str, object]:
    """Counters for ``cache_stats()`` / the server ``status`` action.

    Build/attach counters are per-process; the registry section aggregates
    what exists machine-wide (every segment any process has built).
    """
    registry = _read_registry() if _SHM_AVAILABLE else {}
    with _LOCK:
        return {
            "enabled": arena_enabled(),
            "builds": _BUILDS,
            "attaches": _ATTACHES,
            "rehits": _REHITS,
            "local_fallbacks": _LOCALS,
            "stale_cleaned": _STALE_CLEANED,
            "open_segments": len(_SEGMENTS),
            "registry_segments": len(registry),
            "registry_bytes": sum(int(entry.get("nbytes", 0))
                                  for entry in registry.values()),
        }


def reset_arena_counters() -> None:
    """Zero the per-process counters (tests and benchmarks)."""
    global _BUILDS, _ATTACHES, _REHITS, _LOCALS, _STALE_CLEANED
    with _LOCK:
        _BUILDS = _ATTACHES = _REHITS = _LOCALS = _STALE_CLEANED = 0
