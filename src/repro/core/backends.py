"""Pluggable execution backends: how operator calls are actually evaluated.

Application kernels never call :meth:`Operator.aligned` directly any more —
they go through an :class:`~repro.core.context.ApproxContext`, which hands
every addition and multiplication to an :class:`ExecutionBackend`.  Two
backends ship with the framework:

* ``"direct"`` — :class:`DirectBackend`, the bit-exact reference: each call
  evaluates the operator's functional model (exactly what the seed kernels
  did).
* ``"lut"`` — :class:`LutBackend`, which precomputes truth tables once per
  operator (keyed by the operator name, which embeds its parameters) and
  turns the hot per-butterfly / per-pixel operator calls into single
  fancy-index gathers.  Results are bit-identical to ``"direct"`` — when no
  table strategy applies to a call, it transparently falls back to the
  functional model.

The LUT backend picks the cheapest applicable table per call:

1. **Sum tables** for operators with :attr:`Operator.sum_addressable`
   (the data-sized adders): one eagerly-built 1-D table indexed by the
   exact operand sum covers every call, whatever the operand arrays.
2. **Pair tables** for small operators (``input_width <= max_pair_width``):
   the full 2-D truth table, flattened so one gather evaluates any
   operand-pair array.
3. **Constant-operand tables** when one operand is a scalar (DCT cosine
   coefficients, FFT twiddles, HEVC filter taps, K-means centroids): a 1-D
   table over the variable operand, filled *lazily* with only the values
   actually observed so expensive approximate operators never evaluate more
   stimulus than the data contains.
4. **Square tables** when both operands are the same array (the K-means
   squared distances): a lazily-filled diagonal table.

Tables are cached process-wide (mirroring how the Study's hardware
characterisation cache shares synthesis results across sweep points): two
sweep points, two frames, or two studies that use an operator of the same
name share one table.

Backends are registered by short spec strings, mirroring
``repro/workloads/registry.py``::

    from repro.core.backends import parse_backend, register_backend

    backend = parse_backend("lut")                  # or "lut(max_pair_width=8)"
    register_backend("numba", NumbaBackend)         # downstream plug-in
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..operators.base import Operator
from .registry import parse_spec


class ExecutionBackend(ABC):
    """Strategy object evaluating one operator call on behalf of a context.

    ``execute`` must return the *aligned* result (reference-grid ``int64``
    codes, exactly :meth:`Operator.aligned`) for the broadcast of ``a`` and
    ``b``; implementations are required to be bit-identical to
    :class:`DirectBackend` for every operator and stimulus.
    """

    #: Registry name, also used in result metadata.
    name: str = "backend"

    @abstractmethod
    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
        """Aligned result of ``operator`` over ``a`` and ``b`` (broadcast)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} {self.name}>"


class DirectBackend(ExecutionBackend):
    """Bit-exact reference backend: every call runs the functional model."""

    name = "direct"

    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
        return np.asarray(operator.aligned(a, b), dtype=np.int64)


# --------------------------------------------------------------------------- #
# LUT backend
# --------------------------------------------------------------------------- #
#: Process-wide table cache, shared by every LutBackend instance (and thus by
#: every sweep point of a study): operator names embed their parameters, so a
#: table is a pure function of its key.  Bounded like the JPEG reference
#: cache: when the cache grows past the cap it is cleared wholesale.
_TABLE_CACHE: Dict[Tuple[object, ...], object] = {}
_MAX_CACHED_TABLES = 128

#: Lazily-filled value tables are populated in chunks of ``2**shift`` entries
#: around each missed value (see :meth:`LutBackend._value_lookup`).
_VALUE_CHUNK_SHIFT = 10


#: Value-table keys seen exactly once.  A table is only opened when the same
#: (operator, side, constant) recurs: recurring constants (DCT coefficients,
#: twiddles, filter taps) amortise their table, while one-shot constants
#: (K-means centroids, which change every Lloyd iteration) would build a
#: 2**N-entry table for a single gather and stay on the functional model.
_PENDING_VALUE_KEYS: set = set()
_MAX_PENDING_KEYS = 4096


def clear_table_cache() -> None:
    """Drop every cached LUT table (mainly for tests and benchmarks)."""
    _TABLE_CACHE.clear()
    _PENDING_VALUE_KEYS.clear()


def table_cache_size() -> int:
    """Number of tables currently cached process-wide."""
    return len(_TABLE_CACHE)


def _cache_insert(key: Tuple[object, ...], value: object) -> object:
    if len(_TABLE_CACHE) >= _MAX_CACHED_TABLES:
        # Evict oldest-inserted value tables first; the handful of sum/pair
        # tables are shared by every caller of their operator and stay hot.
        for candidate in list(_TABLE_CACHE):
            if candidate[0] == "value":
                del _TABLE_CACHE[candidate]
                if len(_TABLE_CACHE) < _MAX_CACHED_TABLES:
                    break
        else:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = value
    return value


class LutBackend(ExecutionBackend):
    """Vectorised lookup-table backend, bit-identical to ``"direct"``.

    Parameters
    ----------
    max_pair_width:
        Largest operand width for which the full 2-D truth table is built
        (``4**N`` entries — the default of 10 bits caps one table at 8 MiB).
    max_value_width:
        Largest operand width for which the 1-D strategies (sum, constant,
        square tables, ``2**N``-ish entries) are used.  16 covers the
        paper's whole datapath.
    min_value_size:
        Smallest operand array for which a *new* constant/square table is
        opened.  Tiny calls (late FFT stages) cost less through the
        functional model than through the lazy-fill machinery; once a table
        exists, calls of any size gather from it.
    """

    name = "lut"

    def __init__(self, max_pair_width: int = 10,
                 max_value_width: int = 16,
                 min_value_size: int = 256) -> None:
        if max_pair_width < 2:
            raise ValueError("max_pair_width must be at least 2")
        if max_value_width < 2:
            raise ValueError("max_value_width must be at least 2")
        self.max_pair_width = int(max_pair_width)
        self.max_value_width = int(max_value_width)
        self.min_value_size = int(min_value_size)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        if a_arr.ndim == 0 and b_arr.ndim == 0:
            return np.asarray(operator.aligned(a_arr, b_arr), dtype=np.int64)

        out: Optional[np.ndarray] = None
        if operator.sum_addressable \
                and operator.input_width <= self.max_value_width:
            out = self._sum_lookup(operator, a_arr, b_arr)
        elif operator.input_width <= self.max_pair_width:
            out = self._pair_lookup(operator, a_arr, b_arr)
        elif operator.input_width <= self.max_value_width:
            if b_arr.ndim == 0:
                out = self._value_lookup(operator, a_arr, int(b_arr), "right")
            elif a_arr.ndim == 0:
                out = self._value_lookup(operator, b_arr, int(a_arr), "left")
            elif a is b:
                out = self._value_lookup(operator, a_arr, None, "square")
        if out is not None:
            return out
        # No table strategy applies (wide operator, general operands, or
        # out-of-range stimulus): the functional model is the answer.
        return np.asarray(operator.aligned(a_arr, b_arr), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Strategies
    # ------------------------------------------------------------------ #
    def _sum_lookup(self, operator: Operator, a: np.ndarray,
                    b: np.ndarray) -> Optional[np.ndarray]:
        """Eager 1-D table indexed by the exact operand sum, modulo ``2**N``.

        A sum-addressable operator computes a pure function of the *wrapped*
        sum, which is periodic in ``a + b`` with period ``2**N`` — so one
        table over a single period plus modular indexing covers every int64
        operand sum with no bounds checks at all.
        """
        key = ("sum", operator.family, operator.name)
        table = _TABLE_CACHE.get(key)
        if table is None:
            period = np.arange(1 << operator.input_width, dtype=np.int64)
            # Valid exactly because sum_addressable: compute(a, b) is a pure
            # function of wrap(a + b), so compute(s, 0) tabulates residue s.
            table = _cache_insert(
                key, np.asarray(operator.aligned(period, np.int64(0)),
                                dtype=np.int64))
        return np.take(table, a + b, mode="wrap")

    def _pair_lookup(self, operator: Operator, a: np.ndarray,
                     b: np.ndarray) -> Optional[np.ndarray]:
        """Eager full truth table, flattened row-major over (a, b)."""
        lo, hi = operator.input_range()
        for operand in (a, b):
            if operand.size and (int(operand.min()) < lo or int(operand.max()) > hi):
                return None
        key = ("pair", operator.family, operator.name)
        table = _TABLE_CACHE.get(key)
        if table is None:
            all_a, all_b = operator.exhaustive_inputs()
            table = _cache_insert(
                key, np.asarray(operator.aligned(all_a, all_b), dtype=np.int64))
        span = hi - lo + 1
        return table[(a - lo) * span + (b - lo)]

    def _value_lookup(self, operator: Operator, values: np.ndarray,
                      constant: Optional[int], side: str
                      ) -> Optional[np.ndarray]:
        """Lazily-filled 1-D table over one variable operand.

        ``side`` is ``"right"`` / ``"left"`` for a constant second / first
        operand, or ``"square"`` when both operands are the same array (the
        constant is then ignored).  Only the values actually observed are
        ever evaluated through the functional model, so expensive
        approximate operators never see more stimulus than the data holds.
        """
        lo, hi = operator.input_range()
        if values.size == 0:
            return np.asarray(operator.aligned(values, values), dtype=np.int64)
        if int(values.min()) < lo or int(values.max()) > hi:
            return None
        key = ("value", operator.family, operator.name, side, constant)
        entry = _TABLE_CACHE.get(key)
        if entry is None:
            if values.size < self.min_value_size:
                return None
            if key not in _PENDING_VALUE_KEYS:
                # First sighting of this constant: stay on the functional
                # model; only a recurring constant earns a table.
                if len(_PENDING_VALUE_KEYS) >= _MAX_PENDING_KEYS:
                    _PENDING_VALUE_KEYS.clear()
                _PENDING_VALUE_KEYS.add(key)
                return None
            _PENDING_VALUE_KEYS.discard(key)
            entry = _cache_insert(
                key, (np.zeros(hi - lo + 1, dtype=np.int64),
                      np.zeros(hi - lo + 1, dtype=bool), [0]))
        table, filled, miss_events = entry
        index = values - lo
        missing = ~filled[index]
        if missing.any():
            miss_events[0] += 1
            if miss_events[0] < 2:
                # First fill: only the observed values — no dearer than one
                # functional evaluation, which is all a table that is never
                # missed again (a stable K-means centroid) will ever need.
                fresh_index = np.unique(index[missing])
            else:
                # A table that keeps missing is hot with a drifting operand
                # domain (DCT intermediates): fill whole chunks around the
                # missed values, because the per-event overhead of invoking
                # an approximate operator's bit-level model dwarfs the extra
                # elements per fill, and clustered operands make the
                # pre-filled neighbourhood pay off.
                chunks = np.unique(index[missing] >> _VALUE_CHUNK_SHIFT)
                span = filled.shape[0]
                fresh_index = np.concatenate([
                    np.arange(chunk << _VALUE_CHUNK_SHIFT,
                              min((chunk + 1) << _VALUE_CHUNK_SHIFT, span))
                    for chunk in chunks])
                fresh_index = fresh_index[~filled[fresh_index]]
            fresh = fresh_index + lo
            if side == "square":
                results = operator.aligned(fresh, fresh)
            elif side == "right":
                partner = np.full(fresh.shape, constant, dtype=np.int64)
                results = operator.aligned(fresh, partner)
            else:
                partner = np.full(fresh.shape, constant, dtype=np.int64)
                results = operator.aligned(partner, fresh)
            table[fresh_index] = np.asarray(results, dtype=np.int64)
            filled[fresh_index] = True
        return table[index]


# --------------------------------------------------------------------------- #
# Registry (mirrors repro/workloads/registry.py)
# --------------------------------------------------------------------------- #
BackendFactory = Callable[..., ExecutionBackend]
BackendLike = Union[str, ExecutionBackend, None]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or override) a backend factory under a short name."""
    if not name:
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name.lower()] = factory


def registered_backends() -> List[str]:
    """Sorted list of known backend names."""
    return sorted(_REGISTRY)


def create_backend(name: str, *args: object, **kwargs: object) -> ExecutionBackend:
    """Instantiate a backend from its registry name and parameters."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; "
                       f"known: {', '.join(registered_backends())}")
    return _REGISTRY[key](*args, **kwargs)


def parse_backend(spec: BackendLike) -> ExecutionBackend:
    """Resolve a backend from a spec string, an instance, or ``None``.

    ``None`` selects the bit-exact ``"direct"`` reference.  Spec strings
    follow the operator/workload notation, e.g. ``"lut"`` or
    ``"lut(max_pair_width=8)"``.
    """
    if spec is None:
        return DirectBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, args, kwargs = parse_spec(spec)
    try:
        return create_backend(name, *args, **kwargs)
    except TypeError as exc:
        raise ValueError(f"invalid arguments for backend {name!r} in "
                         f"specification {spec!r}: {exc}") from exc


def backend_spec(backend: BackendLike) -> str:
    """Short printable spec of a backend selection (for result metadata)."""
    if backend is None:
        return "direct"
    if isinstance(backend, ExecutionBackend):
        return backend.name
    return str(backend)


register_backend("direct", DirectBackend)
register_backend("lut", LutBackend)
