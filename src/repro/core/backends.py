"""Pluggable execution backends: how operator calls are actually evaluated.

Application kernels never call :meth:`Operator.aligned` directly any more —
they go through an :class:`~repro.core.context.ApproxContext`, which hands
every addition and multiplication to an :class:`ExecutionBackend`.  Three
backends ship with the framework:

* ``"direct"`` — :class:`DirectBackend`, the bit-exact reference: each call
  evaluates the operator's functional model (exactly what the seed kernels
  did).
* ``"lut"`` — :class:`LutBackend`, which precomputes truth tables once per
  operator (keyed by the operator name, which embeds its parameters) and
  turns the hot per-butterfly / per-pixel operator calls into single
  fancy-index gathers.  Results are bit-identical to ``"direct"`` — when no
  table strategy applies to a call, it transparently falls back to the
  functional model.
* ``"compiled"`` — :class:`CompiledBackend`, the ahead-of-time tier: per
  operator family a *compiled kernel* (``repro.core.kernels``; numba
  ``@njit`` when numba is importable, closed-form vectorised int arithmetic
  otherwise) replaces the bit-serial partial-product loops, and wide
  ``bank=True`` calls gather from one dense stacked per-bank table built in
  a single kernel pass.  Also bit-identical to ``"direct"`` for every
  operator and stimulus.

All eagerly-built tables (sum, pair, bank stacks) and the per-constant
value tables are allocated through the cross-process shared-memory arena
(``repro.core.table_arena``) when it is enabled: the first process on the
machine builds a table, every later process — worker pools, shard runs,
fleet workers, the server — attaches to the very same memory instead of
rebuilding from cold.  ``REPRO_TABLE_ARENA=0`` opts out.

The LUT backend picks the cheapest applicable table per call:

1. **Sum tables** for operators with :attr:`Operator.sum_addressable`
   (the data-sized adders): one eagerly-built 1-D table indexed by the
   exact operand sum covers every call, whatever the operand arrays.
2. **Pair tables** for small operators (``input_width <= max_pair_width``):
   the full 2-D truth table, flattened so one gather evaluates any
   operand-pair array.
3. **Constant-operand tables** when one operand is a scalar (DCT cosine
   coefficients, FFT twiddles, HEVC filter taps, K-means centroids): a 1-D
   table over the variable operand, filled *lazily* with only the values
   actually observed so expensive approximate operators never evaluate more
   stimulus than the data contains.
4. **Coefficient banks** when the caller flags ``b`` as a small bank of
   constants broadcast over ``a`` (``execute(..., bank=True)`` — one FFT
   stage's twiddles, a DCT pass's cosine rows, all taps of an HEVC phase,
   every K-means centroid): elements are grouped by unique constant in one
   ``np.unique``/``np.argsort`` pass and each group is served from the same
   per-constant value tables as strategy 3 — so a whole kernel stage
   executes as *one* batched call instead of one call per constant.
   Groups without a resident table are batched into a single functional
   evaluation, never a per-constant Python loop.
5. **Square tables** when both operands are the same array (the K-means
   squared distances): a lazily-filled diagonal table.

Callers that keep their operands on the datapath grid (the
:class:`~repro.core.context.ApproxContext` kernel contract) may pass
``in_range=True`` to skip the operand range scans entirely; otherwise a
single fused reduction pass validates each operand array.

Tables are cached process-wide (mirroring how the Study's hardware
characterisation cache shares synthesis results across sweep points): two
sweep points, two frames, or two studies that use an operator of the same
name share one table.

Backends are registered by short spec strings, mirroring
``repro/workloads/registry.py``::

    from repro.core.backends import parse_backend, register_backend

    backend = parse_backend("lut")                  # or "lut(max_pair_width=8)"
    register_backend("numba", NumbaBackend)         # downstream plug-in
"""
from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..operators.base import Operator
from . import table_arena
from .kernels import Kernel, compiled_stats, get_kernel
from .registry import parse_spec


class ExecutionBackend(ABC):
    """Strategy object evaluating one operator call on behalf of a context.

    ``execute`` must return the *aligned* result (reference-grid ``int64``
    codes, exactly :meth:`Operator.aligned`) for the broadcast of ``a`` and
    ``b``; implementations are required to be bit-identical to
    :class:`DirectBackend` for every operator and stimulus.
    """

    #: Registry name, also used in result metadata.
    name: str = "backend"

    @abstractmethod
    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray, bank: bool = False,
                in_range: bool = False) -> np.ndarray:
        """Aligned result of ``operator`` over ``a`` and ``b`` (broadcast).

        ``bank`` and ``in_range`` are execution *hints* and never change the
        result.  ``bank=True`` promises that ``b`` is a small bank of
        constants broadcast over ``a`` (FFT twiddles, DCT cosine rows, HEVC
        taps, K-means centroids), enabling grouped table strategies.
        ``in_range=True`` promises both operands lie within the operator's
        signed input range, letting table backends skip their operand scans.
        Implementations are free to ignore either hint.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} {self.name}>"


def _functional(operator: Operator, a, b) -> np.ndarray:
    """Evaluate the functional model with operands explicitly broadcast.

    Some bit-level models (ACA and friends) allocate their result from the
    first operand's shape, so mixed-shape operands — a coefficient bank
    broadcast over data — are expanded here once rather than in every model.
    """
    a_arr = np.asarray(a, dtype=np.int64)
    b_arr = np.asarray(b, dtype=np.int64)
    if a_arr.ndim and b_arr.ndim and a_arr.shape != b_arr.shape:
        a_arr, b_arr = np.broadcast_arrays(a_arr, b_arr)
    return np.asarray(operator.aligned(a_arr, b_arr), dtype=np.int64)


#: Cell-wise bank execution applies when each constant covers at least this
#: many elements: a bit-serial model over an L2-sized slice with a *scalar*
#: partner beats one giant streamed pass with an array partner.
_BANK_CELL_MIN = 256
#: ... and when the bank itself has at most this many cells (a Python loop
#: per cell must stay negligible next to the per-cell vector work).
_MAX_BANK_CELLS = 128


def _bank_cells(a: np.ndarray, b: np.ndarray, shape: Tuple[int, ...]):
    """Yield ``(slicer, constant, values)`` for each cell of a small bank.

    ``b`` broadcast over ``a`` partitions the broadcast ``shape`` into one
    basic-indexing slice per element of ``b`` — e.g. a ``(1, n, n, 1)``
    cosine bank yields the ``n*n`` slices ``[:, r, k, :]``.  ``values`` is a
    *view* of ``a`` broadcast into that slice; no full-size temporary is
    materialised.
    """
    b_exp = b.reshape((1,) * (len(shape) - b.ndim) + b.shape)
    a_view = np.broadcast_to(a, shape)
    for index in np.ndindex(b_exp.shape):
        slicer = tuple(
            position if extent != 1 else slice(None)
            for position, extent in zip(index, b_exp.shape))
        yield slicer, int(b_exp[index]), a_view[slicer]


def _bank_cell_shape(a: np.ndarray, b: np.ndarray,
                     max_cells: int = _MAX_BANK_CELLS,
                     cell_min: int = _BANK_CELL_MIN
                     ) -> Optional[Tuple[int, ...]]:
    """Broadcast shape when the cell-wise bank strategy applies, else None."""
    if a.ndim == 0 or b.ndim == 0 or b.size == 0 or b.size > max_cells:
        return None
    shape = np.broadcast_shapes(a.shape, b.shape)
    total = 1
    for extent in shape:
        total *= int(extent)
    if total // b.size < cell_min:
        return None
    return shape


class DirectBackend(ExecutionBackend):
    """Bit-exact reference backend: every call runs the functional model.

    ``bank=True`` calls whose cells are large are evaluated one constant at
    a time with a *scalar* partner — numerically the very sequence the
    seed-style kernels issued, just without their per-call dispatch — which
    keeps the bit-serial operator models on cache-sized slices.
    """

    name = "direct"

    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray, bank: bool = False,
                in_range: bool = False) -> np.ndarray:
        if bank:
            a_arr = np.asarray(a, dtype=np.int64)
            b_arr = np.asarray(b, dtype=np.int64)
            shape = _bank_cell_shape(a_arr, b_arr)
            if shape is not None:
                out = np.empty(shape, dtype=np.int64)
                for slicer, constant, values in _bank_cells(a_arr, b_arr,
                                                            shape):
                    out[slicer] = operator.aligned(values, constant)
                return out
        return _functional(operator, a, b)


# --------------------------------------------------------------------------- #
# LUT backend
# --------------------------------------------------------------------------- #
#: Process-wide table cache, shared by every LutBackend instance (and thus by
#: every sweep point of a study): operator names embed their parameters, so a
#: table is a pure function of its key.  The cache is an LRU — hits refresh
#: recency, insertions past the cap evict the least-recently-used entries
#: (value tables first; the handful of sum/pair tables are shared by every
#: caller of their operator and stay hot) — so a long-lived server process
#: cannot grow it without bound.  The cap is configurable through
#: :func:`set_table_cache_limit` or the ``REPRO_TABLE_CACHE_LIMIT``
#: environment variable.
#:
#: Thread-safety audit (the evaluation server executes backends from
#: concurrent request threads): every structural mutation of the cache —
#: insertion, eviction, recency update, clearing, the pending-key set and
#: the value-table index — happens under ``_CACHE_LOCK``.  The lazy
#: *in-place* fills of an already-cached value table are deliberately left
#: outside the lock: concurrent fillers write identical values (the
#: operators are deterministic pure functions), the ``filled`` flag of an
#: entry is set only after its value, and CPython's GIL makes those two
#: NumPy stores visible in program order — so the worst case is duplicated
#: fill work, never a wrong read.  Evicted tables stay valid for threads
#: already holding a reference.
_TABLE_CACHE: "OrderedDict[Tuple[object, ...], object]" = OrderedDict()
_CACHE_LOCK = threading.RLock()
_DEFAULT_TABLE_CACHE_LIMIT = 128
_MAX_CACHED_TABLES = _DEFAULT_TABLE_CACHE_LIMIT
_CACHE_HITS = 0
_CACHE_MISSES = 0
_CACHE_EVICTIONS = 0

#: Lazily-filled value tables are populated in chunks of ``2**shift`` entries
#: around each missed value (see :meth:`LutBackend._value_lookup`).
_VALUE_CHUNK_SHIFT = 10


#: Value-table keys seen exactly once.  A table is only opened when the same
#: (operator, side, constant) recurs: recurring constants (DCT coefficients,
#: twiddles, filter taps) amortise their table, while one-shot constants
#: (K-means centroids, which change every Lloyd iteration) would build a
#: 2**N-entry table for a single gather and stay on the functional model.
_PENDING_VALUE_KEYS: set = set()
_MAX_PENDING_KEYS = 4096

#: Number of resident right-constant value tables per (family, name): lets
#: the coefficient-bank strategy bail out of a call in O(1) — before any
#: per-constant key is built — when no table exists for the operator and no
#: group is large enough to open one.
_VALUE_TABLE_INDEX: Dict[Tuple[str, str], int] = {}


def clear_table_cache(purge_arena: bool = True) -> None:
    """Drop every cached LUT table (mainly for tests and benchmarks).

    By default this also unlinks the shared-memory arena segments backing
    the tables, so a clear means a genuinely cold rebuild — without it, an
    "evicted" table would silently warm-attach to its old arena content,
    which is exactly what tests and cold-path benchmarks call this function
    to avoid.  ``purge_arena=False`` keeps the segments alive and merely
    detaches from them, leaving the next table request on the arena attach
    path — the knob the table-build benchmark uses to time cold build
    against warm attach.
    """
    global _CACHE_HITS, _CACHE_MISSES, _CACHE_EVICTIONS
    with _CACHE_LOCK:
        _TABLE_CACHE.clear()
        _PENDING_VALUE_KEYS.clear()
        _VALUE_TABLE_INDEX.clear()
        _CACHE_HITS = _CACHE_MISSES = _CACHE_EVICTIONS = 0
    if purge_arena:
        table_arena.purge(force=True)
    else:
        table_arena.detach_all()


def table_cache_limit() -> int:
    """Current LRU cap of the process-wide table cache."""
    return _MAX_CACHED_TABLES


def set_table_cache_limit(limit: Optional[int] = None) -> int:
    """Cap the process-wide table cache; returns the effective limit.

    ``None`` restores the default (the ``REPRO_TABLE_CACHE_LIMIT``
    environment variable when set, else the built-in generous default).
    Shrinking the cap evicts least-recently-used tables immediately, so a
    long-lived server can bound its memory at startup.
    """
    global _MAX_CACHED_TABLES
    if limit is None:
        env = os.environ.get("REPRO_TABLE_CACHE_LIMIT")
        try:
            limit = int(env) if env else _DEFAULT_TABLE_CACHE_LIMIT
        except ValueError:
            limit = _DEFAULT_TABLE_CACHE_LIMIT
    limit = int(limit)
    if limit < 1:
        raise ValueError("table cache limit must be at least 1")
    with _CACHE_LOCK:
        _MAX_CACHED_TABLES = limit
        while len(_TABLE_CACHE) > limit:
            _evict_one()
    return limit


def cache_stats() -> Dict[str, object]:
    """Introspection hook: size, cap, hit/miss/eviction counters and the
    arena / compiled-tier sub-sections.

    Counters are process-wide and reset by :func:`clear_table_cache`; the
    evaluation server's ``status`` action reports this dictionary verbatim.
    """
    with _CACHE_LOCK:
        stats: Dict[str, object] = {
            "tables": len(_TABLE_CACHE),
            "limit": _MAX_CACHED_TABLES,
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
            "evictions": _CACHE_EVICTIONS,
        }
    stats["arena"] = table_arena.arena_stats()
    stats["compiled"] = compiled_stats()
    return stats


def _index_value_key(key: Tuple[object, ...], delta: int) -> None:
    """Track a right-constant value table entering (+1) / leaving (-1)."""
    if key[0] == "value" and key[3] == "right":
        index_key = (key[1], key[2])
        count = _VALUE_TABLE_INDEX.get(index_key, 0) + delta
        if count > 0:
            _VALUE_TABLE_INDEX[index_key] = count
        else:
            _VALUE_TABLE_INDEX.pop(index_key, None)


def _note_value_key_sighting(key: Tuple[object, ...]) -> bool:
    """Single admission policy for lazy value tables.

    Returns ``True`` when ``key`` recurred (so a table may open now);
    otherwise records this first sighting and returns ``False`` — recurring
    constants (DCT coefficients, twiddles, filter taps) amortise a table,
    one-shot constants (drifting K-means centroids) never earn one.
    """
    with _CACHE_LOCK:
        if key in _PENDING_VALUE_KEYS:
            return True
        if len(_PENDING_VALUE_KEYS) >= _MAX_PENDING_KEYS:
            _PENDING_VALUE_KEYS.clear()
        _PENDING_VALUE_KEYS.add(key)
        return False


def table_cache_size() -> int:
    """Number of tables currently cached process-wide."""
    with _CACHE_LOCK:
        return len(_TABLE_CACHE)


def _cache_get(key: Tuple[object, ...]) -> object:
    """Counted LRU lookup: a hit refreshes the key's recency."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        entry = _TABLE_CACHE.get(key)
        if entry is None:
            _CACHE_MISSES += 1
        else:
            _CACHE_HITS += 1
            _TABLE_CACHE.move_to_end(key)
        return entry


def _cache_contains(key: Tuple[object, ...]) -> bool:
    """Uncounted presence probe (the bank strategy's candidate scan)."""
    with _CACHE_LOCK:
        return key in _TABLE_CACHE


def _evict_one() -> None:
    """Drop one entry, preferring the least-recently-used *value* table.

    Must be called with ``_CACHE_LOCK`` held.
    """
    global _CACHE_EVICTIONS
    victim = None
    for candidate in _TABLE_CACHE:
        if candidate[0] == "value":
            victim = candidate
            break
    if victim is None:
        victim = next(iter(_TABLE_CACHE))
    del _TABLE_CACHE[victim]
    _index_value_key(victim, -1)
    _CACHE_EVICTIONS += 1


def _scan_out_of_range(values: np.ndarray, lo: int, hi: int) -> bool:
    """Whether any element falls outside ``[lo, hi]``, in one fused pass.

    ``(v - lo) | (hi - v)`` is non-negative exactly when ``lo <= v <= hi``,
    so a single OR-reduction carries the sign bit of every violation —
    replacing the separate ``min()`` and ``max()`` reduction scans.  An
    int64 overflow in either difference (operand near the int64 limits)
    flips the sign bit and conservatively reports out-of-range, which only
    sends the call to the bit-exact functional fallback.
    """
    return bool(int(np.bitwise_or.reduce((values - lo) | (hi - values),
                                         axis=None)) < 0)


def _cache_insert(key: Tuple[object, ...], value: object) -> object:
    with _CACHE_LOCK:
        existing = _TABLE_CACHE.get(key)
        if existing is not None:
            # A concurrent thread built the same table first; keep (and
            # share) its entry so both threads gather from one array.
            _TABLE_CACHE.move_to_end(key)
            return existing
        while len(_TABLE_CACHE) >= _MAX_CACHED_TABLES:
            _evict_one()
        _TABLE_CACHE[key] = value
        _index_value_key(key, +1)
    return value


# --------------------------------------------------------------------------- #
# Shared table builders (used by both the LUT and the compiled tier)
# --------------------------------------------------------------------------- #
def _sum_table(operator: Operator) -> np.ndarray:
    """Eager 1-D sum table over one ``2**N`` period, arena-backed.

    Valid exactly because the operator is :attr:`Operator.sum_addressable`:
    ``compute(a, b)`` is a pure function of ``wrap(a + b)``, so
    ``compute(s, 0)`` tabulates residue ``s``.
    """
    key = ("sum", operator.family, operator.name)
    table = _cache_get(key)
    if table is None:
        span = 1 << operator.input_width

        def build(arrays: List[np.ndarray]) -> None:
            period = np.arange(span, dtype=np.int64)
            arrays[0][...] = np.asarray(
                operator.aligned(period, np.int64(0)), dtype=np.int64)

        arrays, _mode = table_arena.get_or_build(
            key, [((span,), np.int64)], build)
        table = _cache_insert(key, arrays[0])
    return table


def _pair_table(operator: Operator,
                evaluate: Optional[Callable] = None) -> np.ndarray:
    """Eager full truth table, flattened row-major over (a, b), arena-backed.

    ``evaluate`` lets the compiled tier build the table through its kernel
    (a handful of vector passes) instead of the bit-serial model.
    """
    key = ("pair", operator.family, operator.name)
    table = _cache_get(key)
    if table is None:
        lo, hi = operator.input_range()
        span = hi - lo + 1

        def build(arrays: List[np.ndarray]) -> None:
            all_a, all_b = operator.exhaustive_inputs()
            model = evaluate if evaluate is not None else operator.aligned
            arrays[0][...] = np.asarray(
                model(all_a, all_b), dtype=np.int64).reshape(-1)

        arrays, _mode = table_arena.get_or_build(
            key, [((span * span,), np.int64)], build)
        table = _cache_insert(key, arrays[0])
    return table


def _value_entry(key: Tuple[object, ...], span: int) -> Tuple:
    """Open (or attach to) a lazily-filled value-table entry for ``key``.

    The value array and its ``filled`` bitmap live in the arena, so a table
    one process fills is already (partially) warm in the next; the
    miss-event counter stays process-local — it only steers this process's
    chunked-fill heuristic.
    """
    arrays, _mode = table_arena.get_or_build(
        key, [((span,), np.int64), ((span,), np.bool_)])
    return _cache_insert(key, (arrays[0], arrays[1], [0]))


class LutBackend(ExecutionBackend):
    """Vectorised lookup-table backend, bit-identical to ``"direct"``.

    Parameters
    ----------
    max_pair_width:
        Largest operand width for which the full 2-D truth table is built
        (``4**N`` entries — the default of 10 bits caps one table at 8 MiB).
    max_value_width:
        Largest operand width for which the 1-D strategies (sum, constant,
        square tables, ``2**N``-ish entries) are used.  16 covers the
        paper's whole datapath.
    min_value_size:
        Smallest operand array for which a *new* constant/square table is
        opened.  Tiny calls (late FFT stages) cost less through the
        functional model than through the lazy-fill machinery; once a table
        exists, calls of any size gather from it.
    max_bank_constants:
        Largest number of unique constants for which the coefficient-bank
        strategy groups a ``bank=True`` call.  Beyond it (late stages of a
        very large FFT, where each twiddle covers only a couple of
        butterflies) the whole call runs as one vectorised functional
        evaluation instead.
    """

    name = "lut"

    def __init__(self, max_pair_width: int = 10,
                 max_value_width: int = 16,
                 min_value_size: int = 256,
                 max_bank_constants: int = 128) -> None:
        if max_pair_width < 2:
            raise ValueError("max_pair_width must be at least 2")
        if max_value_width < 2:
            raise ValueError("max_value_width must be at least 2")
        if max_bank_constants < 1:
            raise ValueError("max_bank_constants must be at least 1")
        self.max_pair_width = int(max_pair_width)
        self.max_value_width = int(max_value_width)
        self.min_value_size = int(min_value_size)
        self.max_bank_constants = int(max_bank_constants)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray, bank: bool = False,
                in_range: bool = False) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        if a_arr.ndim == 0 and b_arr.ndim == 0:
            return np.asarray(operator.aligned(a_arr, b_arr), dtype=np.int64)

        out: Optional[np.ndarray] = None
        if operator.sum_addressable \
                and operator.input_width <= self.max_value_width:
            out = self._sum_lookup(operator, a_arr, b_arr)
        elif operator.input_width <= self.max_pair_width:
            out = self._pair_lookup(operator, a_arr, b_arr, in_range)
        elif operator.input_width <= self.max_value_width:
            if b_arr.ndim == 0:
                out = self._value_lookup(operator, a_arr, int(b_arr), "right",
                                         in_range)
            elif a_arr.ndim == 0:
                out = self._value_lookup(operator, b_arr, int(a_arr), "left",
                                         in_range)
            elif a is b:
                out = self._value_lookup(operator, a_arr, None, "square",
                                         in_range)
            elif bank:
                out = self._bank_lookup(operator, a_arr, b_arr, in_range)
        if out is not None:
            return out
        # No table strategy applies (wide operator, general operands, or
        # out-of-range stimulus): the functional model is the answer.
        return _functional(operator, a_arr, b_arr)

    # ------------------------------------------------------------------ #
    # Strategies
    # ------------------------------------------------------------------ #
    def _sum_lookup(self, operator: Operator, a: np.ndarray,
                    b: np.ndarray) -> Optional[np.ndarray]:
        """Eager 1-D table indexed by the exact operand sum, modulo ``2**N``.

        A sum-addressable operator computes a pure function of the *wrapped*
        sum, which is periodic in ``a + b`` with period ``2**N`` — so one
        table over a single period plus modular indexing covers every int64
        operand sum with no bounds checks at all.
        """
        return np.take(_sum_table(operator), a + b, mode="wrap")

    def _pair_lookup(self, operator: Operator, a: np.ndarray,
                     b: np.ndarray, in_range: bool = False
                     ) -> Optional[np.ndarray]:
        """Eager full truth table, flattened row-major over (a, b)."""
        lo, hi = operator.input_range()
        if not in_range:
            for operand in (a, b):
                if operand.size and _scan_out_of_range(operand, lo, hi):
                    return None
        table = _pair_table(operator)
        span = hi - lo + 1
        # Two-dimensional indexing bounds-checks each operand separately, so
        # a positive off-grid operand under a wrong in_range claim raises
        # (and falls back) instead of flattening into a neighbouring table
        # row; a negative overshoot reads an aliased entry, which the
        # context contract disclaims for off-grid callers — the table is
        # read-only, so shared state is never at risk.
        try:
            return table.reshape(span, span)[a - lo, b - lo]
        except IndexError:
            # Off-contract caller: degrade to the bit-exact functional model.
            return None

    def _value_lookup(self, operator: Operator, values: np.ndarray,
                      constant: Optional[int], side: str,
                      in_range: bool = False) -> Optional[np.ndarray]:
        """Lazily-filled 1-D table over one variable operand.

        ``side`` is ``"right"`` / ``"left"`` for a constant second / first
        operand, or ``"square"`` when both operands are the same array (the
        constant is then ignored).  Only the values actually observed are
        ever evaluated through the functional model, so expensive
        approximate operators never see more stimulus than the data holds.
        """
        lo, hi = operator.input_range()
        if values.size == 0:
            return np.asarray(operator.aligned(values, values), dtype=np.int64)
        if not in_range and _scan_out_of_range(values, lo, hi):
            return None
        key = ("value", operator.family, operator.name, side, constant)
        entry = _cache_get(key)
        if entry is None:
            if values.size < self.min_value_size:
                return None
            if not _note_value_key_sighting(key):
                # First sighting of this constant: stay on the functional
                # model; only a recurring constant earns a table.
                return None
            with _CACHE_LOCK:
                _PENDING_VALUE_KEYS.discard(key)
            entry = _value_entry(key, hi - lo + 1)
        table, filled, miss_events = entry
        index = values - lo
        try:
            missing = ~filled[index]
        except IndexError:
            # Off-contract operand under an in_range claim: degrade to the
            # bit-exact functional model.
            return None
        if missing.any():
            observed = index[missing]
            if int(observed.min()) < 0 or int(observed.max()) >= filled.shape[0]:
                # Off-contract operands must never write through aliased
                # indices into the shared tables; fail closed instead.
                return None
            miss_events[0] += 1
            if miss_events[0] < 2:
                # First fill: only the observed values — no dearer than one
                # functional evaluation, which is all a table that is never
                # missed again (a stable K-means centroid) will ever need.
                fresh_index = np.unique(observed)
            else:
                # A table that keeps missing is hot with a drifting operand
                # domain (DCT intermediates): fill whole chunks around the
                # missed values, because the per-event overhead of invoking
                # an approximate operator's bit-level model dwarfs the extra
                # elements per fill, and clustered operands make the
                # pre-filled neighbourhood pay off.
                chunks = np.unique(observed >> _VALUE_CHUNK_SHIFT)
                span = filled.shape[0]
                fresh_index = np.concatenate([
                    np.arange(chunk << _VALUE_CHUNK_SHIFT,
                              min((chunk + 1) << _VALUE_CHUNK_SHIFT, span))
                    for chunk in chunks])
                fresh_index = fresh_index[~filled[fresh_index]]
            fresh = fresh_index + lo
            if side == "square":
                results = operator.aligned(fresh, fresh)
            elif side == "right":
                partner = np.full(fresh.shape, constant, dtype=np.int64)
                results = operator.aligned(fresh, partner)
            else:
                partner = np.full(fresh.shape, constant, dtype=np.int64)
                results = operator.aligned(partner, fresh)
            table[fresh_index] = np.asarray(results, dtype=np.int64)
            filled[fresh_index] = True
        return table[index]

    def _bank_lookup(self, operator: Operator, a: np.ndarray,
                     b: np.ndarray, in_range: bool = False
                     ) -> Optional[np.ndarray]:
        """Coefficient-bank strategy: ``b`` is a small constant bank over ``a``.

        One ``np.unique`` pass (over the *unbroadcast* bank, so an FFT
        stage's ``(half, 1)`` twiddle column never materialises) finds the
        constants; one stable ``np.argsort`` over the broadcast group ids
        splits the elements; each group is then served from the same
        per-constant value tables as the scalar-constant strategy — the
        table a stage-fused kernel hits is the very table its seed-style
        per-constant loop would have warmed.  Groups without a table are
        evaluated together in a single functional call, so a bank call never
        degenerates into a per-constant Python loop.
        """
        constants, inverse = np.unique(b, return_inverse=True)
        if constants.size > self.max_bank_constants:
            return None  # too fragmented: one vectorised functional call wins
        shape = np.broadcast_shapes(a.shape, b.shape)
        if not constants.size:
            return None  # empty bank: the functional fallback handles it
        cell_shape = _bank_cell_shape(a, b, self.max_bank_constants,
                                      self.min_value_size)
        if cell_shape is not None:
            # Large cells: serve each constant's slice directly — a table
            # gather when one is (or becomes) resident, the scalar-partner
            # functional model otherwise.  No flat argsort pass, no
            # full-size temporaries.
            out = np.empty(cell_shape, dtype=np.int64)
            for slicer, constant, values in _bank_cells(a, b, cell_shape):
                served = self._value_lookup(operator, values, constant,
                                            "right", in_range)
                out[slicer] = served if served is not None \
                    else operator.aligned(values, constant)
            return out
        a_flat = np.broadcast_to(a, shape).ravel()
        groups = np.broadcast_to(inverse.reshape(b.shape), shape).ravel()
        counts = np.bincount(groups, minlength=constants.size)
        has_tables = bool(
            _VALUE_TABLE_INDEX.get((operator.family, operator.name), 0))
        if not has_tables and int(counts.max(initial=0)) < self.min_value_size:
            # O(1) bail-out: no table exists for this operator and no group
            # is big enough to open one — run the whole call functionally.
            return None
        # Only groups with a resident table (or one about to open because
        # the constant recurred) are worth a per-group gather; everything
        # else joins one batched functional evaluation below.
        prefix = ("value", operator.family, operator.name, "right")
        candidates = range(constants.size) if has_tables else \
            np.flatnonzero(counts >= self.min_value_size)
        serveable = set()
        for index in candidates:
            key = prefix + (int(constants[index]),)
            if _cache_contains(key):
                serveable.add(int(index))
            elif counts[index] >= self.min_value_size \
                    and _note_value_key_sighting(key):
                serveable.add(int(index))  # recurred: its table opens now
        if not serveable:
            return None
        order = np.argsort(groups, kind="stable")
        out = np.empty(a_flat.shape[0], dtype=np.int64)
        leftover = []
        start = 0
        for index, (count, constant) in enumerate(zip(counts, constants)):
            stop = start + int(count)
            segment = order[start:stop]
            start = stop
            if not segment.size:
                continue
            served = self._value_lookup(operator, a_flat[segment],
                                        int(constant), "right", in_range) \
                if index in serveable else None
            if served is None:
                leftover.append(segment)
            else:
                out[segment] = served
        if leftover:
            rest = np.concatenate(leftover) if len(leftover) > 1 else leftover[0]
            out[rest] = np.asarray(
                operator.aligned(a_flat[rest], constants[groups[rest]]),
                dtype=np.int64)
        return out.reshape(shape)


# --------------------------------------------------------------------------- #
# Compiled backend
# --------------------------------------------------------------------------- #
class CompiledBackend(ExecutionBackend):
    """Ahead-of-time tier: compiled kernels plus dense stacked bank tables.

    Per operator family, ``repro.core.kernels`` provides a *kernel* — numba
    ``@njit`` when numba is importable, a closed-form vectorised
    shift/mask formulation otherwise — that reproduces
    :meth:`Operator.aligned` bit-for-bit while collapsing the bit-serial
    partial-product loops into a handful of batched passes.  Dispatch per
    call, cheapest strategy first:

    1. **Sum tables** for sum-addressable operators (shared with the LUT
       tier — the arena means at most one process ever builds one).
    2. **Pair tables** for small operators, built *through the kernel* (a
       few vector passes instead of the bit-serial model).
    3. **Stacked bank tables** for ``bank=True`` calls: one dense
       ``(constants, span)`` table per recurring bank, built in a single
       broadcast kernel call and served as one flat gather — no per-constant
       grouping, sorting or Python looping at serve time.
    4. **Per-constant value tables** (shared with the LUT tier) for scalar
       constants, filled eagerly through the kernel.
    5. **The kernel itself** for everything else — including out-of-range
       stimulus, where every kernel except BOOTH's is still bit-exact.
    6. The functional model for operator families without a kernel.

    Results are bit-identical to :class:`DirectBackend` for every operator
    and stimulus; the constructor parameters mirror :class:`LutBackend`.
    """

    name = "compiled"

    def __init__(self, max_pair_width: int = 10,
                 max_value_width: int = 16,
                 min_value_size: int = 256,
                 max_bank_constants: int = 128,
                 max_bank_table_bytes: int = 64 << 20) -> None:
        if max_pair_width < 2:
            raise ValueError("max_pair_width must be at least 2")
        if max_value_width < 2:
            raise ValueError("max_value_width must be at least 2")
        if max_bank_constants < 1:
            raise ValueError("max_bank_constants must be at least 1")
        self.max_pair_width = int(max_pair_width)
        self.max_value_width = int(max_value_width)
        self.min_value_size = int(min_value_size)
        self.max_bank_constants = int(max_bank_constants)
        self.max_bank_table_bytes = int(max_bank_table_bytes)
        self._kernels: Dict[str, Optional[Kernel]] = {}

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def execute(self, operator: Operator, a: np.ndarray,
                b: np.ndarray, bank: bool = False,
                in_range: bool = False) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        if a_arr.ndim == 0 and b_arr.ndim == 0:
            return np.asarray(operator.aligned(a_arr, b_arr), dtype=np.int64)
        if operator.sum_addressable \
                and operator.input_width <= self.max_value_width:
            return np.take(_sum_table(operator), a_arr + b_arr, mode="wrap")
        kernel = self._kernel(operator)
        if not in_range:
            lo, hi = operator.input_range()
            in_range = not any(
                operand.size and _scan_out_of_range(operand, lo, hi)
                for operand in (a_arr, b_arr))
        out: Optional[np.ndarray] = None
        if in_range:
            if operator.input_width <= self.max_pair_width:
                out = self._pair_serve(operator, a_arr, b_arr, kernel)
            elif operator.input_width <= self.max_value_width:
                if b_arr.ndim == 0:
                    out = self._value_serve(operator, a_arr, int(b_arr),
                                            "right", kernel)
                elif a_arr.ndim == 0:
                    out = self._value_serve(operator, b_arr, int(a_arr),
                                            "left", kernel)
                elif bank:
                    out = self._bank_serve(operator, a_arr, b_arr, kernel)
        if out is not None:
            return out
        if kernel is not None and (in_range
                                   or getattr(kernel, "range_safe", True)):
            if a_arr.ndim and b_arr.ndim and a_arr.shape != b_arr.shape:
                a_arr, b_arr = np.broadcast_arrays(a_arr, b_arr)
            return np.asarray(kernel(a_arr, b_arr), dtype=np.int64)
        return _functional(operator, a_arr, b_arr)

    def _kernel(self, operator: Operator) -> Optional[Kernel]:
        name = operator.name
        if name not in self._kernels:
            self._kernels[name] = get_kernel(operator)
        return self._kernels[name]

    def _evaluate(self, operator: Operator, kernel: Optional[Kernel],
                  a, b) -> np.ndarray:
        if kernel is not None:
            return np.asarray(kernel(a, b), dtype=np.int64)
        return np.asarray(operator.aligned(a, b), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Strategies (operands verified in range by ``execute``)
    # ------------------------------------------------------------------ #
    def _pair_serve(self, operator: Operator, a: np.ndarray, b: np.ndarray,
                    kernel: Optional[Kernel]) -> Optional[np.ndarray]:
        lo, hi = operator.input_range()
        span = hi - lo + 1
        table = _pair_table(
            operator, None if kernel is None
            else lambda x, y: self._evaluate(operator, kernel, x, y))
        # Bounds semantics under a (false) in_range claim mirror the LUT
        # tier: positive overshoots raise here and fail over to the kernel.
        try:
            return table.reshape(span, span)[a - lo, b - lo]
        except IndexError:
            return None

    def _value_serve(self, operator: Operator, values: np.ndarray,
                     constant: Optional[int], side: str,
                     kernel: Optional[Kernel]) -> Optional[np.ndarray]:
        """Eagerly-filled per-constant table, shared with the LUT tier.

        The compiled tier fills the *whole* table in one kernel pass the
        first time a constant recurs — with a kernel that is a handful of
        vector passes over ``2**N`` values, cheaper than the lazy-fill
        bookkeeping it replaces — and completes any partially-filled table
        inherited from LUT-tier callers the same way.
        """
        if values.size == 0:
            return None
        lo, hi = operator.input_range()
        span = hi - lo + 1
        key = ("value", operator.family, operator.name, side, constant)
        entry = _cache_get(key)
        if entry is None:
            if values.size < self.min_value_size:
                return None  # tiny call: the kernel itself is cheaper
            if not _note_value_key_sighting(key):
                return None  # first sighting: only recurrence earns a table
            with _CACHE_LOCK:
                _PENDING_VALUE_KEYS.discard(key)
            entry = _value_entry(key, span)
        table, filled, miss_events = entry
        if not filled.all():
            # Writes go through internal in-bounds indices only, so even an
            # off-contract caller can never poison the shared table.
            miss_events[0] += 1
            fresh_index = np.flatnonzero(~filled)
            fresh = fresh_index + lo
            if side == "square":
                results = self._evaluate(operator, kernel, fresh, fresh)
            elif side == "right":
                results = self._evaluate(operator, kernel, fresh,
                                         np.int64(constant))
            else:
                results = self._evaluate(operator, kernel,
                                         np.int64(constant), fresh)
            table[fresh_index] = results
            filled[fresh_index] = True
        try:
            return table[values - lo]
        except IndexError:
            return None  # false in_range claim: fail over to the kernel

    def _bank_serve(self, operator: Operator, a: np.ndarray, b: np.ndarray,
                    kernel: Optional[Kernel]) -> Optional[np.ndarray]:
        """Dense stacked bank table: one flat gather serves the whole call.

        The per-bank ``(constants, span)`` table is built in a *single*
        broadcast kernel evaluation, keyed by the constant tuple itself so
        a recurring bank (a DCT pass's cosine rows, an FFT stage's
        twiddles) is recognised as a unit — no per-constant keys, no
        argsort grouping, no Python loop at serve time.
        """
        constants, inverse = np.unique(b, return_inverse=True)
        if not constants.size or constants.size > self.max_bank_constants:
            return None
        lo, hi = operator.input_range()
        span = hi - lo + 1
        if constants.size * span * 8 > self.max_bank_table_bytes:
            return None
        key = ("bankstack", operator.family, operator.name,
               tuple(int(value) for value in constants))
        stack = _cache_get(key)
        if stack is None:
            if not _note_value_key_sighting(key):
                return None  # one-shot bank (drifting centroids): no table
            with _CACHE_LOCK:
                _PENDING_VALUE_KEYS.discard(key)

            def build(arrays: List[np.ndarray]) -> None:
                values = np.arange(lo, hi + 1, dtype=np.int64)
                arrays[0][...] = self._evaluate(
                    operator, kernel,
                    values[np.newaxis, :], constants[:, np.newaxis])

            arrays, _mode = table_arena.get_or_build(
                key, [((constants.size, span), np.int64)], build)
            stack = _cache_insert(key, arrays[0])
        shape = np.broadcast_shapes(a.shape, b.shape)
        rows = np.broadcast_to(inverse.reshape(b.shape), shape)
        try:
            return stack.reshape(-1)[rows * span
                                     + (np.broadcast_to(a, shape) - lo)]
        except IndexError:
            return None  # false in_range claim: fail over to the kernel


def describe_backends() -> List[Dict[str, object]]:
    """Availability listing for ``repro list`` and the server ``experiments``.

    One entry per registered backend; the compiled entry details its engine
    (numba vs the closed-form vector fallback), the kernelised operator
    families and whether the shared-memory arena is active.
    """
    descriptions = {
        "direct": "bit-exact functional models (reference)",
        "lut": "precomputed lookup tables, bit-identical to direct",
        "compiled": "compiled kernels + shared stacked tables, "
                    "bit-identical to direct",
    }
    entries: List[Dict[str, object]] = []
    for name in registered_backends():
        entry: Dict[str, object] = {
            "name": name,
            "available": True,
            "description": descriptions.get(name, "plug-in backend"),
        }
        if name == "compiled":
            stats = compiled_stats()
            entry["engine"] = stats["engine"]
            entry["numba"] = stats["numba"]
            entry["kernel_families"] = stats["kernel_families"]
            entry["arena"] = table_arena.arena_enabled()
        entries.append(entry)
    return entries


# --------------------------------------------------------------------------- #
# Registry (mirrors repro/workloads/registry.py)
# --------------------------------------------------------------------------- #
BackendFactory = Callable[..., ExecutionBackend]
BackendLike = Union[str, ExecutionBackend, None]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or override) a backend factory under a short name."""
    if not name:
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name.lower()] = factory


def registered_backends() -> List[str]:
    """Sorted list of known backend names."""
    return sorted(_REGISTRY)


def create_backend(name: str, *args: object, **kwargs: object) -> ExecutionBackend:
    """Instantiate a backend from its registry name and parameters."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; "
                       f"known: {', '.join(registered_backends())}")
    return _REGISTRY[key](*args, **kwargs)


def parse_backend(spec: BackendLike) -> ExecutionBackend:
    """Resolve a backend from a spec string, an instance, or ``None``.

    ``None`` selects the bit-exact ``"direct"`` reference.  Spec strings
    follow the operator/workload notation, e.g. ``"lut"`` or
    ``"lut(max_pair_width=8)"``.
    """
    if spec is None:
        return DirectBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    name, args, kwargs = parse_spec(spec)
    try:
        return create_backend(name, *args, **kwargs)
    except TypeError as exc:
        raise ValueError(f"invalid arguments for backend {name!r} in "
                         f"specification {spec!r}: {exc}") from exc


def backend_spec(backend: BackendLike) -> str:
    """Short printable spec of a backend selection (for result metadata)."""
    if backend is None:
        return "direct"
    if isinstance(backend, ExecutionBackend):
        return backend.name
    return str(backend)


register_backend("direct", DirectBackend)
register_backend("lut", LutBackend)
register_backend("compiled", CompiledBackend)
