"""APXPERF-style operator characterisation: error + hardware in one pass.

This is the top of the framework's public API: give it an operator (or a
paper-style specification string) and it returns everything the paper's
Figures 3-4 and Table I plot — MSE, BER and the other error metrics from the
functional simulation, and area / delay / power / PDP from the hardware
model, with the optional netlist-vs-functional equivalence verification in
between.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

import numpy as np

from ..hardware.report import HardwareReport
from ..hardware.synthesis import characterize_hardware, verify_netlist_equivalence
from ..metrics.error import ErrorReport, characterize_error
from ..operators.base import Operator
from .registry import parse_operator


@dataclass(frozen=True)
class OperatorCharacterization:
    """Joint functional and hardware characterisation of one operator."""

    operator: str
    family: str
    error: ErrorReport
    hardware: HardwareReport
    equivalence_checked: bool = False
    params: Dict[str, object] = field(default_factory=dict)

    # Convenience accessors used by the experiment tables / figures --------- #
    @property
    def mse_db(self) -> float:
        return self.error.mse_db

    @property
    def ber(self) -> float:
        return self.error.ber

    @property
    def power_mw(self) -> float:
        return self.hardware.power_mw

    @property
    def delay_ns(self) -> float:
        return self.hardware.delay_ns

    @property
    def area_um2(self) -> float:
        return self.hardware.area_um2

    @property
    def pdp_pj(self) -> float:
        return self.hardware.pdp_pj

    def to_dict(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "family": self.family,
            "error": self.error.to_dict(),
            "hardware": self.hardware.to_dict(),
            "equivalence_checked": self.equivalence_checked,
            "params": dict(self.params),
        }


#: Operator classes whose netlists are bit-exact and therefore verifiable.
_VERIFIABLE = (
    "ExactAdder",
    "RCAApxAdder",
    "ETAIIAdder",
    "ETAIVAdder",
    "ExactMultiplier",
    "TruncatedMultiplier",
    "AAMMultiplier",
)


class Apxperf:
    """Facade reproducing the automated APXPERF comparison flow.

    Parameters
    ----------
    error_samples:
        Number of random operand pairs for the functional characterisation.
    hardware_samples:
        Number of random vectors simulated on the gate-level netlist for the
        activity-based power estimation.
    frequency_hz:
        Clock frequency for the power figures (the paper uses 100 MHz).
    calibrated:
        Whether the paper-anchored calibration is applied to the hardware
        numbers.
    """

    def __init__(self, error_samples: int = 100_000, hardware_samples: int = 1500,
                 frequency_hz: float = 100e6, calibrated: bool = True,
                 seed: int = 2017) -> None:
        self.error_samples = int(error_samples)
        self.hardware_samples = int(hardware_samples)
        self.frequency_hz = float(frequency_hz)
        self.calibrated = bool(calibrated)
        self.seed = int(seed)

    def _resolve(self, operator: Union[Operator, str]) -> Operator:
        if isinstance(operator, str):
            return parse_operator(operator)
        return operator

    def characterize(self, operator: Union[Operator, str],
                     verify: bool = False) -> OperatorCharacterization:
        """Characterise one operator (optionally verifying its netlist)."""
        op = self._resolve(operator)
        rng = np.random.default_rng(self.seed)
        error = characterize_error(op, samples=self.error_samples, rng=rng)
        hardware = characterize_hardware(op, frequency_hz=self.frequency_hz,
                                         samples=self.hardware_samples,
                                         calibrated=self.calibrated,
                                         seed=self.seed)
        checked = False
        if verify and type(op).__name__ in _VERIFIABLE:
            agreement = verify_netlist_equivalence(op, samples=256, seed=self.seed)
            if not bool(np.all(agreement)):
                raise RuntimeError(
                    f"netlist / functional mismatch for {op.name}: "
                    f"{float(np.mean(agreement)) * 100.0:.2f}% agreement"
                )
            checked = True
        return OperatorCharacterization(
            operator=op.name,
            family=op.family,
            error=error,
            hardware=hardware,
            equivalence_checked=checked,
            params=dict(op.params),
        )

    def characterize_many(self, operators: Iterable[Union[Operator, str]],
                          verify: bool = False, workers: int = 1
                          ) -> List[OperatorCharacterization]:
        """Characterise a batch of operators (a full sweep).

        ``workers > 1`` fans the independent per-operator characterisations
        out over a process pool, mirroring :meth:`repro.core.Study.run`:
        each characterisation seeds its own generator from the harness seed,
        so parallel results are bit-identical to a serial run, and
        restricted environments (no process spawning / semaphores) fall back
        to the serial path transparently.
        """
        resolved = [self._resolve(op) for op in operators]
        if workers <= 1 or len(resolved) <= 1:
            return [self.characterize(op, verify=verify) for op in resolved]
        try:
            from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        except ImportError:
            return [self.characterize(op, verify=verify) for op in resolved]
        tasks = [(self, op, verify) for op in resolved]
        try:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(resolved))) as pool:
                return list(pool.map(_characterize_task, tasks))
        except (OSError, BrokenExecutor):
            return [self.characterize(op, verify=verify) for op in resolved]


def _characterize_task(
        task: "tuple[Apxperf, Operator, bool]") -> OperatorCharacterization:
    """Run one characterisation in a worker process (must be module-level)."""
    harness, operator, verify = task
    return harness.characterize(operator, verify=verify)
