"""Compiled operator kernels: the ``"compiled"`` execution tier's engines.

The bit-serial operator models in ``repro.operators`` loop over bits or
partial-product cells — AAM's pruned-array sum is an O(N^2) double loop of
vector passes — which is what makes the multiplier-bound studies slow on the
``"direct"`` backend and makes every LUT table build expensive.  This module
provides, per operator family, a *kernel*: a function ``kernel(a, b)`` that
returns exactly ``operator.aligned(a, b)`` (bit-identical for every int64
stimulus) but collapses the bit loops into a handful of batched shift/mask
passes:

* **AAM** — the pruned-cell sum is aggregated per column group instead of per
  cell: the ``i = 0`` row contributes ``a_0 * signed(b)`` in one pass, each
  middle row ``a_i * ((b mod 2^(N-i)) << i)``, and the sign row
  ``-a_{N-1} * b_0 * 2^(N-1)`` — O(N) passes instead of O(N^2) cells.  The
  compensation count is one popcount of ``a & bit_reverse(b)``.
* **ABM** — the Booth rows keep their closed recoding, and the windowed
  (limited-carry) redundant-to-binary conversion uses the identity that bit
  ``i`` of a windowed sum equals bit ``i - low`` of the *unmasked* shifted
  sum (high addend bits only carry upward), removing the per-bit masking.
* **BOOTH** — the exact recoding sums to the exact product, so the kernel is
  the product itself (valid for in-range operands; the backend range-scans).
* **ACA** — bits up to the prediction depth come straight from the full sum;
  each higher bit is one shifted add.
* **RCAApx** — all three approximate full-adder cells admit closed forms:
  type 1 keeps the exact carry chain (carry-in vector ``(a+b) ^ a ^ b``) and
  flips the sum bit on two input patterns; types 2 and 3 have cell outputs
  independent of the carry-in, so the approximate region is a single mask
  pass and the accurate region one add with the speculated carry-in.

When **numba** is importable the heavy multiplier kernels additionally get an
``@njit``-compiled element-wise variant (single fused pass, no temporaries).
A numba kernel is only trusted after a runtime probe against the vectorised
closed form on random stimulus — a silently miscompiled kernel downgrades to
the closed form instead of corrupting a study.
"""
from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

import numpy as np

from ..operators.adders.aca import ACAAdder
from ..operators.adders.etaiv import _BlockCarrySpeculationAdder
from ..operators.adders.rcaapx import RCAApxAdder
from ..operators.base import Operator
from ..operators.multipliers.aam import AAMMultiplier
from ..operators.multipliers.abm import ABMMultiplier
from ..operators.multipliers.accurate import (
    ExactMultiplier,
    QuantizedOutputMultiplier,
)
from ..operators.multipliers.booth import BoothMultiplier

try:  # pragma: no cover - exercised only on the numba-equipped CI leg
    from numba import njit
    NUMBA_AVAILABLE = True
except ImportError:
    njit = None
    NUMBA_AVAILABLE = False

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

_PROBE_COUNT = 512
_PROBE_SEED = 20170322

_LOCK = threading.Lock()
#: Operator names whose numba kernel passed / failed the runtime probe.
_NUMBA_VERIFIED: set = set()
_NUMBA_REJECTED: set = set()


def _signed(value: np.ndarray, width: int) -> np.ndarray:
    half = np.int64(1) << (width - 1)
    return (value ^ half) - half


def _popcount(value: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(value).astype(np.int64)
    # SWAR fallback for NumPy < 2.0 (values here fit in 32 bits).
    x = value - ((value >> 1) & 0x55555555)
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333)
    x = (x + (x >> 4)) & 0x0F0F0F0F
    return (x * 0x01010101) >> 24


def _bit_reverse(value: np.ndarray, width: int) -> np.ndarray:
    """Reverse the low ``width`` bits of non-negative codes (width <= 32)."""
    x = value & ((np.int64(1) << width) - 1)
    x = ((x & 0x55555555) << 1) | ((x >> 1) & 0x55555555)
    x = ((x & 0x33333333) << 2) | ((x >> 2) & 0x33333333)
    x = ((x & 0x0F0F0F0F) << 4) | ((x >> 4) & 0x0F0F0F0F)
    x = ((x & 0x00FF00FF) << 8) | ((x >> 8) & 0x00FF00FF)
    x = ((x & 0x0000FFFF) << 16) | ((x >> 16) & 0x0000FFFF)
    return x >> (32 - width)


# --------------------------------------------------------------------------- #
# Vectorised closed-form kernels (always available)
# --------------------------------------------------------------------------- #
def _aam_kernel(operator: AAMMultiplier) -> Kernel:
    n = operator.input_width
    compensation = operator.compensation
    mask_n = (np.int64(1) << n) - 1

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        ua = a & mask_n
        ub = b & mask_n
        # Column-aggregated pruned-cell sum: row i = 0 spans every column
        # including the signed one, middle rows stay below it, row N-1 only
        # meets column 0 (with the Baugh-Wooley sign).
        dropped = (ua & 1) * _signed(ub, n)
        for i in range(1, n - 1):
            dropped = dropped + ((ua >> i) & 1) * \
                ((ub & ((np.int64(1) << (n - i)) - 1)) << i)
        dropped = dropped - ((((ua >> (n - 1)) & 1) * (ub & 1)) << (n - 1))
        kept = a * b - dropped
        if compensation:
            diagonal = _popcount(ua & _bit_reverse(ub, n))
            kept = kept + (((diagonal + 1) >> 1) << n)
        return (_signed((kept >> n) & mask_n, n) << n).astype(np.int64)

    return kernel


def _abm_kernel(operator: ABMMultiplier) -> Kernel:
    n = operator.input_width
    digits = (n + 1) // 2
    compensation = operator.compensation
    window = operator.carry_window
    mask_n = (np.int64(1) << n) - 1

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        ub = b & mask_n
        sign = (b < 0).astype(np.int64)
        partial = np.zeros_like(a + b)
        last = np.zeros_like(partial)
        comp_bits = np.zeros_like(partial)
        for k in range(digits):
            low = 2 * k - 1
            b_low = (ub >> low) & 1 if low >= 0 else 0
            b_mid = (ub >> (2 * k)) & 1 if 2 * k < n else sign
            b_high = (ub >> (2 * k + 1)) & 1 if 2 * k + 1 < n else sign
            row = ((-2 * b_high + b_mid + b_low) * a) << (2 * k)
            comp_bits = comp_bits + ((row >> (n - 1)) & 1)
            if k == digits - 1 and digits > 1:
                last = row >> n
            else:
                partial = partial + (row >> n)
        if compensation:
            partial = partial + ((comp_bits + 1) >> 1)
        if window is None:
            combined = (partial + last) & mask_n
        else:
            ux = partial & mask_n
            uy = last & mask_n
            low_width = min(window + 1, n)
            combined = (ux + uy) & ((np.int64(1) << low_width) - 1)
            for i in range(window + 1, n):
                shift = i - window
                combined = combined | \
                    (((((ux >> shift) + (uy >> shift)) >> window) & 1) << i)
        return (_signed(combined, n) << n).astype(np.int64)

    return kernel


def _booth_kernel(operator: BoothMultiplier) -> Kernel:
    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # The recoded digits sum back to the exact operand, so the row sum is
        # the exact product (operands in range; the backend guarantees it).
        return (np.asarray(a, dtype=np.int64)
                * np.asarray(b, dtype=np.int64))

    # The recoding derives the sign digit from ``b < 0``, not from bit N-1,
    # so the identity only holds for in-range operands: the backend must
    # range-scan before trusting this kernel (every other kernel reproduces
    # the model for arbitrary int64 stimulus).
    kernel.range_safe = False
    return kernel


def _exact_mul_kernel(operator: ExactMultiplier) -> Kernel:
    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.asarray(a, dtype=np.int64)
                * np.asarray(b, dtype=np.int64))

    return kernel


def _quantized_mul_kernel(operator: QuantizedOutputMultiplier) -> Kernel:
    # The model is already closed-form; routing it through the kernel table
    # lets the compiled tier treat every multiplier uniformly.
    return lambda a, b: np.asarray(operator.aligned(a, b), dtype=np.int64)


def _aca_kernel(operator: ACAAdder) -> Kernel:
    n = operator.input_width
    p = operator.prediction_bits
    mask_n = (np.int64(1) << n) - 1

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ua = np.asarray(a, dtype=np.int64) & mask_n
        ub = np.asarray(b, dtype=np.int64) & mask_n
        # Bits 0..P of the windowed sums coincide with the full sum (the
        # window reaches bit 0); each higher bit is bit P of one shifted add.
        low_width = min(p + 1, n)
        result = (ua + ub) & ((np.int64(1) << low_width) - 1)
        for i in range(p + 1, n):
            shift = i - p
            result = result | \
                ((((ua >> shift) + (ub >> shift)) >> p) & 1) << i
        return _signed(result, n).astype(np.int64)

    return kernel


def _rcaapx_kernel(operator: RCAApxAdder) -> Kernel:
    n = operator.input_width
    m = operator.approximate_bits
    fa_type = operator.fa_type
    mask_n = (np.int64(1) << n) - 1
    mask_m = (np.int64(1) << m) - 1

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ua = np.asarray(a, dtype=np.int64) & mask_n
        ub = np.asarray(b, dtype=np.int64) & mask_n
        if m == 0:
            return _signed((ua + ub) & mask_n, n).astype(np.int64)
        if fa_type == 1:
            # Exact carry chain; the sum output flips on (0,1,cin=1) and
            # (1,0,cin=0) — correct the exact sum bits in the approx region.
            total = ua + ub
            cin = total ^ ua ^ ub
            flips = ((~ua & ub & cin) | (ua & ~ub & ~cin)) & mask_m
            return _signed((total ^ flips) & mask_n, n).astype(np.int64)
        if fa_type == 2:
            # Cell outputs ignore cin: sum = ~(a|b), carry = a|b.
            low = ~(ua | ub) & mask_m
            carry_in = ((ua | ub) >> (m - 1)) & 1
        else:
            # Type 3 cuts the chain: sum = b, carry = a.
            low = ub & mask_m
            carry_in = (ua >> (m - 1)) & 1
        if m >= n:
            return _signed(low, n).astype(np.int64)
        high = (ua >> m) + (ub >> m) + carry_in
        return _signed((low | (high << m)) & mask_n, n).astype(np.int64)

    return kernel


def _eta_kernel(operator: _BlockCarrySpeculationAdder) -> Kernel:
    n = operator.input_width
    x = operator.block_size
    spec_blocks = operator.speculation_blocks
    mask_n = (np.int64(1) << n) - 1
    mask_x = (np.int64(1) << x) - 1

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ua = np.asarray(a, dtype=np.int64) & mask_n
        ub = np.asarray(b, dtype=np.int64) & mask_n
        # Block 0 takes no carry; each later block adds one speculated carry
        # generated by the previous window (zero carry-in at its bottom).
        result = ((ua & mask_x) + (ub & mask_x)) & mask_x
        for k in range(1, n // x):
            first = max(0, k - spec_blocks)
            low_bit = first * x
            width = (k - first) * x
            window_mask = (np.int64(1) << width) - 1
            carry = ((((ua >> low_bit) & window_mask)
                      + ((ub >> low_bit) & window_mask)) >> width) & 1
            block = ((ua >> (k * x)) + (ub >> (k * x)) + carry) & mask_x
            result = result | (block << (k * x))
        return _signed(result, n).astype(np.int64)

    return kernel


#: Fallback (pure NumPy) kernel factories, dispatched by operator class.
_VECTOR_FACTORIES = [
    (AAMMultiplier, _aam_kernel),
    (ABMMultiplier, _abm_kernel),
    (BoothMultiplier, _booth_kernel),
    (ExactMultiplier, _exact_mul_kernel),
    (QuantizedOutputMultiplier, _quantized_mul_kernel),
    (ACAAdder, _aca_kernel),
    (RCAApxAdder, _rcaapx_kernel),
    (_BlockCarrySpeculationAdder, _eta_kernel),
]


# --------------------------------------------------------------------------- #
# numba kernels (present only when numba is importable)
# --------------------------------------------------------------------------- #
if NUMBA_AVAILABLE:  # pragma: no cover - exercised on the numba CI leg

    @njit(cache=True)
    def _aam_numba(a_flat, b_flat, n, compensation, out):
        mask_n = (1 << n) - 1
        half = 1 << (n - 1)
        for idx in range(a_flat.size):
            a = a_flat[idx]
            b = b_flat[idx]
            ua = a & mask_n
            ub = b & mask_n
            dropped = (ua & 1) * ((ub ^ half) - half)
            for i in range(1, n - 1):
                if (ua >> i) & 1:
                    dropped += (ub & ((1 << (n - i)) - 1)) << i
            if ((ua >> (n - 1)) & 1) and (ub & 1):
                dropped -= 1 << (n - 1)
            kept = a * b - dropped
            if compensation:
                diagonal = 0
                for i in range(n):
                    diagonal += ((ua >> i) & 1) & ((ub >> (n - 1 - i)) & 1)
                kept += ((diagonal + 1) >> 1) << n
            out[idx] = ((((kept >> n) & mask_n) ^ half) - half) << n

    @njit(cache=True)
    def _abm_numba(a_flat, b_flat, n, compensation, window, out):
        # window < 0 encodes the exact (unwindowed) final conversion.
        mask_n = (1 << n) - 1
        half = 1 << (n - 1)
        digits = (n + 1) // 2
        for idx in range(a_flat.size):
            a = a_flat[idx]
            b = b_flat[idx]
            ub = b & mask_n
            sign = 1 if b < 0 else 0
            partial = 0
            last = 0
            comp_bits = 0
            for k in range(digits):
                low = 2 * k - 1
                b_low = (ub >> low) & 1 if low >= 0 else 0
                b_mid = (ub >> (2 * k)) & 1 if 2 * k < n else sign
                b_high = (ub >> (2 * k + 1)) & 1 if 2 * k + 1 < n else sign
                row = ((-2 * b_high + b_mid + b_low) * a) << (2 * k)
                comp_bits += (row >> (n - 1)) & 1
                if k == digits - 1 and digits > 1:
                    last = row >> n
                else:
                    partial += row >> n
            if compensation:
                partial += (comp_bits + 1) >> 1
            if window < 0:
                combined = (partial + last) & mask_n
            else:
                ux = partial & mask_n
                uy = last & mask_n
                low_width = window + 1 if window + 1 < n else n
                combined = (ux + uy) & ((1 << low_width) - 1)
                for i in range(window + 1, n):
                    shift = i - window
                    combined |= \
                        ((((ux >> shift) + (uy >> shift)) >> window) & 1) << i
            out[idx] = (((combined & mask_n) ^ half) - half) << n

    def _aam_numba_kernel(operator: AAMMultiplier) -> Kernel:
        n = operator.input_width
        compensation = operator.compensation

        def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            a_arr, b_arr = np.broadcast_arrays(
                np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
            out = np.empty(a_arr.size, dtype=np.int64)
            _aam_numba(np.ascontiguousarray(a_arr).ravel(),
                       np.ascontiguousarray(b_arr).ravel(),
                       n, compensation, out)
            return out.reshape(a_arr.shape)

        return kernel

    def _abm_numba_kernel(operator: ABMMultiplier) -> Kernel:
        n = operator.input_width
        compensation = operator.compensation
        window = -1 if operator.carry_window is None else operator.carry_window

        def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            a_arr, b_arr = np.broadcast_arrays(
                np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
            out = np.empty(a_arr.size, dtype=np.int64)
            _abm_numba(np.ascontiguousarray(a_arr).ravel(),
                       np.ascontiguousarray(b_arr).ravel(),
                       n, compensation, window, out)
            return out.reshape(a_arr.shape)

        return kernel

    _NUMBA_FACTORIES = [
        (AAMMultiplier, _aam_numba_kernel),
        (ABMMultiplier, _abm_numba_kernel),
    ]
else:
    _NUMBA_FACTORIES = []


def _find_factory(operator: Operator, factories) -> Optional[Callable]:
    for klass, factory in factories:
        if isinstance(operator, klass):
            return factory
    return None


def _numba_probe_passes(operator: Operator, candidate: Kernel,
                        reference: Kernel) -> bool:
    """One-time runtime check of a numba kernel against the closed form."""
    a, b = operator.random_inputs(_PROBE_COUNT, rng=_PROBE_SEED)
    try:
        candidate_out = candidate(a, b)
    except Exception:
        return False
    return bool(np.array_equal(candidate_out, reference(a, b)))


def get_kernel(operator: Operator) -> Optional[Kernel]:
    """Compiled kernel for ``operator`` (``None`` if no family matches).

    Prefers the numba variant when numba is importable *and* the variant
    reproduces the vectorised closed form on a random probe; the verdict is
    cached per operator name.
    """
    vector_factory = _find_factory(operator, _VECTOR_FACTORIES)
    if vector_factory is None:
        return None
    vector = vector_factory(operator)
    numba_factory = _find_factory(operator, _NUMBA_FACTORIES)
    if numba_factory is None:
        return vector
    candidate = numba_factory(operator)
    name = operator.name
    with _LOCK:
        if name in _NUMBA_REJECTED:
            return vector
        verified = name in _NUMBA_VERIFIED
    if not verified:
        if _numba_probe_passes(operator, candidate, vector):
            with _LOCK:
                _NUMBA_VERIFIED.add(name)
        else:  # pragma: no cover - defensive: miscompiled numba kernel
            with _LOCK:
                _NUMBA_REJECTED.add(name)
            return vector
    return candidate


def kernel_engine(operator: Operator) -> Optional[str]:
    """``"numba"`` / ``"vector"`` for a kernelised operator, else ``None``."""
    if _find_factory(operator, _VECTOR_FACTORIES) is None:
        return None
    if _find_factory(operator, _NUMBA_FACTORIES) is not None:
        with _LOCK:
            if operator.name not in _NUMBA_REJECTED:
                return "numba"
    return "vector"


def kernel_families() -> List[str]:
    """Operator classes with a compiled kernel (for availability listings)."""
    return sorted(klass.__name__ for klass, _ in _VECTOR_FACTORIES)


def compiled_stats() -> Dict[str, object]:
    """Availability summary for ``cache_stats()`` and the server status."""
    with _LOCK:
        return {
            "numba": NUMBA_AVAILABLE,
            "engine": "numba" if NUMBA_AVAILABLE else "vector",
            "kernel_families": kernel_families(),
            "numba_verified": sorted(_NUMBA_VERIFIED),
            "numba_rejected": sorted(_NUMBA_REJECTED),
        }
