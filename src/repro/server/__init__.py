"""Approximation-as-a-service: the long-lived evaluation server.

Every one-shot ``python -m repro`` invocation pays the cold costs — LUT
table construction, hardware characterisation, workload stimulus — and then
throws the warm process away.  This package keeps the process alive: a
JSON-over-HTTP service (stdlib only) holding the warm process-wide LUT
cache, the shared hardware-characterisation cache and an open
:class:`~repro.core.store.ResultStore`, answering design-space queries from
concurrent clients with request batching.

Layers:

* :mod:`repro.server.protocol` — the wire contract: ``{"action", "params"}``
  requests, ``ok``/``error`` envelopes with stable error codes;
* :mod:`repro.server.dispatch` — the action handlers (``evaluate``,
  ``pareto``, ``experiments``, ``status``) over one shared
  :class:`ServerState`;
* :mod:`repro.server.batching` — the queue that coalesces concurrent
  ``evaluate`` requests for the same workload into one banked sweep;
* :mod:`repro.server.app` — the :class:`EvalServer` HTTP front
  (``python -m repro serve``);
* :mod:`repro.server.client` — the thin query client
  (``python -m repro query`` and ``benchmarks/serve_bench.py``).
"""
from .app import EvalServer
from .batching import BatchQueue
from .client import ServerUnavailable, query
from .dispatch import ServerState, dispatch
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_INVALID_PARAMS,
    ERROR_UNKNOWN_ACTION,
    ProtocolError,
    error_envelope,
    ok_envelope,
    parse_request,
)

__all__ = [
    "BatchQueue",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_INVALID_PARAMS",
    "ERROR_UNKNOWN_ACTION",
    "EvalServer",
    "ProtocolError",
    "ServerState",
    "ServerUnavailable",
    "dispatch",
    "error_envelope",
    "ok_envelope",
    "parse_request",
    "query",
]
