"""The HTTP face of the evaluation server: :class:`EvalServer`.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one thread per
connection, no new runtime dependencies) serving the action-dispatch
protocol:

* ``POST /`` — the protocol endpoint: a ``{"action", "params"}`` JSON body
  in, an ``ok``/``error`` envelope out (:mod:`repro.server.protocol`);
* ``GET /status`` (and ``/health``) — convenience alias for the ``status``
  action, so a load balancer or a shell loop can probe readiness without
  composing a request body.

Request threads share one :class:`~repro.server.dispatch.ServerState` —
the open result store, the warm process-wide LUT table cache, the hardware
characterisation cache and the batching queue — which is the entire point
of keeping the process alive.

``python -m repro serve`` wraps :func:`EvalServer.serve_forever`; tests and
benchmarks use :meth:`EvalServer.start` / :meth:`EvalServer.stop` (or the
context manager) to run the server on a background thread inside their own
process, on an ephemeral port.
"""
from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..core.results import _jsonify
from ..faults.inject import maybe_fault
from .dispatch import ServerState, dispatch
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    error_envelope,
    http_status,
    parse_request,
)


class _RequestHandler(BaseHTTPRequestHandler):
    """One protocol request per HTTP exchange; never raises to the socket."""

    #: Injected by :func:`_handler_for`; shared by every request thread.
    state: ServerState

    protocol_version = "HTTP/1.1"
    #: Stamped into the ``Server`` response header.
    server_version = "repro-serve"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        fault = maybe_fault("server.handler")
        if fault is not None:
            if fault.kind == "drop":
                # Close the connection without a response — the client
                # sees a transport error, exactly like a mid-request
                # network partition, and its retry loop takes over.
                self.close_connection = True
                return
            if fault.kind == "delay":
                time.sleep(float(fault.params.get("seconds", 0.1)))
            elif fault.kind == "error":
                self._respond(error_envelope(
                    ERROR_INTERNAL, "injected fault: handler error"))
                return
        if self.path.rstrip("/") not in ("", "/api"):
            self._respond(error_envelope(
                ERROR_BAD_REQUEST,
                f"unknown endpoint {self.path!r}; POST the protocol "
                f"document to '/'"))
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        try:
            action, params = parse_request(body)
        except Exception as error:
            envelope = getattr(error, "envelope",
                               lambda: error_envelope(ERROR_BAD_REQUEST,
                                                      str(error)))()
            self._respond(envelope)
            return
        self._respond(dispatch(self.state, action, params))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") in ("/status", "/health"):
            self._respond(dispatch(self.state, "status", {}))
            return
        self._respond(error_envelope(
            ERROR_BAD_REQUEST,
            f"unknown endpoint {self.path!r}; GET /status or POST the "
            f"protocol document to '/'"))

    def _respond(self, envelope: dict) -> None:
        payload = json.dumps(envelope, sort_keys=True,
                             default=_jsonify).encode("utf-8")
        self.send_response(http_status(envelope))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        retry_after = envelope.get("retry_after_s")
        if isinstance(retry_after, (int, float)) \
                and not isinstance(retry_after, bool):
            # Whole seconds, rounded up: the header grammar wants an
            # integer, and "come back a touch later" errs safe.
            self.send_header("Retry-After",
                             str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Quiet by default: the JSON-on-stdout contract stays clean."""


def _handler_for(state: ServerState) -> type:
    return type("BoundRequestHandler", (_RequestHandler,), {"state": state})


class EvalServer:
    """A long-lived evaluation server bound to one host/port.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`),
    which is how the in-process tests and the load bench run.  State
    parameters (``store``, ``backend``, ``workers``, ``batch_window_s``,
    ``table_cache_limit``, ``deadline_s``) construct a fresh
    :class:`~repro.server.dispatch.ServerState` unless one is passed in.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 state: Optional[ServerState] = None,
                 **state_options: object) -> None:
        if state is not None and state_options:
            raise ValueError("pass either a ServerState or state options, "
                             "not both")
        self.state = state if state is not None \
            else ServerState(**state_options)  # type: ignore[arg-type]
        self._httpd = ThreadingHTTPServer((host, port),
                                          _handler_for(self.state))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Addresses
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or interrupt)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "EvalServer":
        """Serve on a daemon background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server is already running")
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def drain(self, grace_s: float = 10.0) -> int:
        """Graceful shutdown: stop accepting, finish in-flight requests.

        The SIGTERM path of ``python -m repro serve``.  The listener is
        shut down first (new connections are refused), then in-flight
        requests get up to ``grace_s`` seconds to finish before the
        socket closes.  Returns the number of requests still in flight
        when the grace expired — ``0`` means a perfectly clean drain.
        Safe to call from a signal-handler-spawned thread: it never runs
        on the serve loop's own thread.
        """
        self._httpd.shutdown()
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            with self.state._lock:
                remaining = self.state._in_flight
            if remaining == 0:
                break
            time.sleep(0.05)
        with self.state._lock:
            remaining = self.state._in_flight
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return remaining

    def __enter__(self) -> "EvalServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EvalServer {self.url}>"
