"""Wire protocol of the evaluation server.

One request shape, two response shapes — the whole contract:

Request (HTTP ``POST /`` with a JSON body)::

    {"action": "evaluate", "params": {...}}

Success envelope (HTTP 200)::

    {"status": "ok", "action": "evaluate", "result": {...}}

Error envelope (HTTP 4xx/5xx, matching :data:`HTTP_STATUS`)::

    {"status": "error", "code": "invalid_params", "message": "...",
     "action": "evaluate"}

Error codes are stable strings clients may switch on; the human-readable
``message`` is not part of the contract.  The envelope — not the HTTP
status line — is the source of truth: clients read the body first and use
the status code only as a transport-level hint.
"""
from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

#: The request body (or its JSON) is not a valid request document.
ERROR_BAD_REQUEST = "bad_request"
#: The request named an action the dispatcher does not know.
ERROR_UNKNOWN_ACTION = "unknown_action"
#: The action exists but its parameters failed validation.
ERROR_INVALID_PARAMS = "invalid_params"
#: The handler raised something unexpected; the server stays up.
ERROR_INTERNAL = "internal_error"
#: The server is shedding load: no worker slot freed within the request
#: deadline.  The envelope carries ``retry_after_s`` and the transport
#: adds a ``Retry-After`` header; well-behaved clients back off at least
#: that long before retrying.
ERROR_OVERLOADED = "overloaded"

#: HTTP status used when transporting each error code (200 for ``ok``).
HTTP_STATUS: Dict[str, int] = {
    ERROR_BAD_REQUEST: 400,
    ERROR_INVALID_PARAMS: 400,
    ERROR_UNKNOWN_ACTION: 404,
    ERROR_INTERNAL: 500,
    ERROR_OVERLOADED: 503,
}


class ProtocolError(Exception):
    """A request that violates the protocol, carrying its stable code.

    ``extra`` fields are merged into the error envelope — how the
    ``overloaded`` code carries ``retry_after_s`` to the client.
    """

    def __init__(self, code: str, message: str,
                 extra: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.extra = dict(extra) if extra else {}

    def envelope(self, action: Optional[str] = None) -> Dict[str, object]:
        document = error_envelope(self.code, self.message, action=action)
        document.update(self.extra)
        return document


def ok_envelope(action: str, result: Dict[str, object]) -> Dict[str, object]:
    """Success envelope for one handled action."""
    return {"status": "ok", "action": action, "result": result}


def error_envelope(code: str, message: str,
                   action: Optional[str] = None) -> Dict[str, object]:
    """Error envelope with a stable ``code`` (see the module constants)."""
    envelope: Dict[str, object] = {"status": "error", "code": code,
                                   "message": message}
    if action is not None:
        envelope["action"] = action
    return envelope


def http_status(envelope: Dict[str, object]) -> int:
    """Transport status code matching an envelope (200 for ``ok``)."""
    if envelope.get("status") == "ok":
        return 200
    return HTTP_STATUS.get(str(envelope.get("code")), 500)


def parse_request(body: bytes) -> Tuple[str, Dict[str, object]]:
    """Decode a request body into ``(action, params)``.

    Raises :class:`ProtocolError` with :data:`ERROR_BAD_REQUEST` on
    malformed JSON, a non-object document, a missing/non-string ``action``
    or a non-object ``params``.
    """
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(ERROR_BAD_REQUEST,
                            f"request body is not valid JSON: {error}") \
            from None
    if not isinstance(document, dict):
        raise ProtocolError(ERROR_BAD_REQUEST,
                            "request document must be a JSON object")
    action = document.get("action")
    if not isinstance(action, str) or not action:
        raise ProtocolError(ERROR_BAD_REQUEST,
                            "request document needs a non-empty string "
                            "'action'")
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(ERROR_BAD_REQUEST,
                            "'params' must be a JSON object when present")
    return action, params
