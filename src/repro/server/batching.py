"""Request batching: coalesce concurrent same-workload computations.

Concurrent ``evaluate`` requests that share a *group key* — same workload,
configuration, seed, backend and axis, differing only in the operator under
test — are exactly one operator sweep split across clients.  Executing them
one by one would regenerate the workload stimulus per request and issue the
banked backend calls once per operator; executing them as one
:class:`~repro.core.study.Study` sweep shares the stimulus pipeline, the
warm LUT tables and the hardware-characterisation cache in a single pass.

:class:`BatchQueue` implements the classic leader/follower pattern: the
first thread to open a group becomes the batch leader, waits a short
collection window for followers to pile on, then removes the batch and
executes the combined item list once; followers block on the batch event
and pick their own result out by position.  A group key only ever
coalesces *identical computations modulo the item*, so batching can change
latency but never results.
"""
from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence


class _Batch:
    __slots__ = ("items", "event", "results", "error")

    def __init__(self) -> None:
        self.items: List[object] = []
        self.event = threading.Event()
        self.results: Sequence[object] = ()
        self.error: Optional[BaseException] = None


class BatchQueue:
    """Coalesces concurrent :meth:`submit` calls that share a group key.

    ``window_s`` is how long a batch leader waits for followers before
    executing; ``0`` disables coalescing (every submit executes alone,
    useful for tests and for latency-critical deployments).
    """

    def __init__(self, window_s: float = 0.02) -> None:
        if window_s < 0:
            raise ValueError("the batching window cannot be negative")
        self.window_s = float(window_s)
        self._lock = threading.Lock()
        self._open: Dict[object, _Batch] = {}
        self._batches = 0
        self._items = 0
        self._largest = 0

    def submit(self, group: object, item: object,
               execute: Callable[[List[object]], Sequence[object]]) -> object:
        """Run ``item`` through the group's batch; returns its own result.

        ``execute`` receives the full item list of the batch (in arrival
        order) and must return one result per item, in the same order; it
        is invoked exactly once per batch, by the leader's thread.  If it
        raises, every member of the batch re-raises that exception.
        """
        with self._lock:
            batch = self._open.get(group)
            leader = batch is None
            if leader:
                batch = _Batch()
                self._open[group] = batch
            position = len(batch.items)
            batch.items.append(item)
        if not leader:
            batch.event.wait()
            if batch.error is not None:
                raise batch.error
            return batch.results[position]
        if self.window_s > 0:
            time.sleep(self.window_s)
        with self._lock:
            # Close the batch: later arrivals open a fresh one.  Everything
            # appended so far happened under this lock, so the copied item
            # list is complete and every recorded position is valid.
            del self._open[group]
            items = list(batch.items)
            self._batches += 1
            self._items += len(items)
            self._largest = max(self._largest, len(items))
        try:
            results = execute(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch executor returned {len(results)} results for "
                    f"{len(items)} items")
            batch.results = results
        except BaseException as error:
            batch.error = error
            raise
        finally:
            batch.event.set()
        return batch.results[position]

    def stats(self) -> Dict[str, object]:
        """Coalescing counters (what the ``status`` action reports)."""
        with self._lock:
            return {
                "window_s": self.window_s,
                "batches": self._batches,
                "requests": self._items,
                "largest_batch": self._largest,
                "coalesced": self._items - self._batches,
            }
