"""Thin protocol client: one function, stdlib only.

:func:`query` POSTs one ``{"action", "params"}`` document and returns the
decoded envelope — ok or error — exactly as the server sent it.  Error
envelopes are *returned*, not raised: the protocol deliberately transports
them with 4xx/5xx status codes, so the client digs the JSON body out of
:class:`urllib.error.HTTPError` instead of treating it as a failure.  Only
transport-level problems (connection refused, timeout, a non-JSON body)
raise, as :class:`ServerUnavailable`.

``python -m repro query`` and ``benchmarks/serve_bench.py`` are both built
on this function.
"""
from __future__ import annotations

import json
import random
import urllib.error
import urllib.request
from typing import Dict, Optional

from ..core.results import _jsonify
from ..core.retry import retry_with_backoff


class ServerUnavailable(RuntimeError):
    """The server could not be reached or spoke something other than JSON."""


def query(url: str, action: str,
          params: Optional[Dict[str, object]] = None,
          timeout: float = 30.0, retries: int = 2,
          retry_base_delay: float = 0.1) -> Dict[str, object]:
    """POST one protocol request to ``url`` and return the envelope.

    ``url`` is the server base (``http://host:port``); the protocol
    endpoint is its root.  Returns the decoded envelope whether the status
    is ``ok`` or ``error``; raises :class:`ServerUnavailable` only when no
    envelope came back at all.  Transport failures — connection refused
    during a server restart, a dropped socket — are retried ``retries``
    times with exponential backoff (:func:`repro.core.retry.retry_with_backoff`)
    before :class:`ServerUnavailable` propagates; ``retries=0`` restores
    the old fail-on-first-error behaviour.  Protocol error envelopes are
    *answers*, never retried.
    """
    body = json.dumps({"action": action, "params": params or {}},
                      default=_jsonify).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    payload = retry_with_backoff(
        lambda: _post_once(request, url, timeout), retries=retries,
        base_delay=retry_base_delay, jitter=0.25,
        retry_on=ServerUnavailable, rng=random.Random())
    try:
        envelope = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ServerUnavailable(
            f"the server at {url} returned a non-JSON body: {error}") \
            from None
    if not isinstance(envelope, dict):
        raise ServerUnavailable(
            f"the server at {url} returned a non-object document")
    return envelope


def _post_once(request: "urllib.request.Request", url: str,
               timeout: float) -> bytes:
    """One transport attempt: the raw response body, or ServerUnavailable."""
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read()
    except urllib.error.HTTPError as error:
        # 4xx/5xx transports an error envelope; the body is the answer.
        return error.read()
    except (urllib.error.URLError, OSError) as error:
        raise ServerUnavailable(
            f"no evaluation server answered at {url}: {error}") from None
