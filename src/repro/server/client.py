"""Thin protocol client: one function, stdlib only.

:func:`query` POSTs one ``{"action", "params"}`` document and returns the
decoded envelope — ok or error — exactly as the server sent it.  Error
envelopes are *returned*, not raised: the protocol deliberately transports
them with 4xx/5xx status codes, so the client digs the JSON body out of
:class:`urllib.error.HTTPError` instead of treating it as a failure.  Only
transport-level problems (connection refused, timeout, a non-JSON body)
raise, as :class:`ServerUnavailable`.

One error envelope gets special treatment: HTTP 503 (the server shedding
load) is *retryable* — the request was refused, not answered — so the
client backs off and tries again, flooring each backoff delay with the
server's ``Retry-After`` header.  Only when retries are exhausted is the
``overloaded`` envelope returned as the answer, so callers still see the
protocol document rather than an exception.

``python -m repro query`` and ``benchmarks/serve_bench.py`` are both built
on this function.
"""
from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from ..core.results import _jsonify
from ..core.retry import retry_with_backoff


class ServerUnavailable(RuntimeError):
    """The server could not be reached or spoke something other than JSON."""


class ServerOverloaded(ServerUnavailable):
    """The server shed the request (HTTP 503); retry after backing off.

    Carries the raw envelope ``body`` (the answer of last resort when
    retries run out) and the parsed ``Retry-After`` hint in seconds.
    """

    def __init__(self, message: str, body: bytes,
                 retry_after_s: Optional[float]) -> None:
        super().__init__(message)
        self.body = body
        self.retry_after_s = retry_after_s


def query(url: str, action: str,
          params: Optional[Dict[str, object]] = None,
          timeout: float = 30.0, retries: int = 2,
          retry_base_delay: float = 0.1,
          retry_deadline_s: Optional[float] = None) -> Dict[str, object]:
    """POST one protocol request to ``url`` and return the envelope.

    ``url`` is the server base (``http://host:port``); the protocol
    endpoint is its root.  Returns the decoded envelope whether the status
    is ``ok`` or ``error``; raises :class:`ServerUnavailable` only when no
    envelope came back at all.  Transport failures — connection refused
    during a server restart, a dropped socket — are retried ``retries``
    times with exponential backoff (:func:`repro.core.retry.retry_with_backoff`)
    before :class:`ServerUnavailable` propagates; ``retries=0`` restores
    the old fail-on-first-error behaviour.  An HTTP 503 (load shedding) is
    retried the same way, with each backoff delay floored by the server's
    ``Retry-After``; if retries run out the ``overloaded`` envelope is the
    answer.  Other protocol error envelopes are *answers*, never retried.
    ``retry_deadline_s`` bounds the whole retry loop in wall time: once
    the next backoff sleep would cross it, the last failure propagates
    (or, for a 503, its envelope is returned) immediately.
    """
    body = json.dumps({"action": action, "params": params or {}},
                      default=_jsonify).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/", data=body,
        headers={"Content-Type": "application/json"}, method="POST")

    start = time.monotonic()
    pending: Dict[str, ServerOverloaded] = {}

    def sleep_with_floor(delay: float) -> None:
        overload = pending.pop("overload", None)
        if overload is not None:
            delay = max(delay, overload.retry_after_s or 0.0)
            # The floor can push a sleep far past the caller's deadline
            # in a way retry_with_backoff's own check (which sees only
            # the nominal delay) cannot know about; refuse it here and
            # let the 503 envelope be the answer.
            if retry_deadline_s is not None \
                    and time.monotonic() - start + delay >= retry_deadline_s:
                raise overload
        time.sleep(delay)

    def attempt() -> bytes:
        try:
            return _post_once(request, url, timeout)
        except ServerOverloaded as error:
            pending["overload"] = error
            raise

    try:
        payload = retry_with_backoff(
            attempt, retries=retries,
            base_delay=retry_base_delay, jitter=0.25,
            retry_on=ServerUnavailable, rng=random.Random(),
            sleep=sleep_with_floor, deadline_s=retry_deadline_s)
    except ServerOverloaded as error:
        # Out of retries (or time): the 503 envelope is the answer.
        payload = error.body
    try:
        envelope = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ServerUnavailable(
            f"the server at {url} returned a non-JSON body: {error}") \
            from None
    if not isinstance(envelope, dict):
        raise ServerUnavailable(
            f"the server at {url} returned a non-object document")
    return envelope


def _retry_after_seconds(error: "urllib.error.HTTPError") -> Optional[float]:
    """The ``Retry-After`` header as seconds, or ``None`` (delta form only)."""
    value = error.headers.get("Retry-After") if error.headers else None
    if value is None:
        return None
    try:
        return max(0.0, float(value.strip()))
    except ValueError:
        return None  # HTTP-date form: rarer than this client needs


def _post_once(request: "urllib.request.Request", url: str,
               timeout: float) -> bytes:
    """One transport attempt: the raw response body, or ServerUnavailable."""
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read()
    except urllib.error.HTTPError as error:
        body = error.read()
        if error.code == 503:
            raise ServerOverloaded(
                f"the server at {url} is shedding load (HTTP 503)",
                body=body,
                retry_after_s=_retry_after_seconds(error)) from None
        # Other 4xx/5xx transport an error envelope; the body is the answer.
        return body
    except (urllib.error.URLError, OSError) as error:
        raise ServerUnavailable(
            f"no evaluation server answered at {url}: {error}") from None
