"""Action dispatch: the evaluation server's request handlers.

Every request is ``{"action": ..., "params": ...}``; :func:`dispatch` routes
it to a handler over one shared :class:`ServerState` and always returns an
envelope (:mod:`repro.server.protocol`) — handler exceptions become stable
error codes, never a dead connection.

Actions:

``evaluate``
    Run one design point (workload × operator × seed × backend) and return
    its result row.  Points recorded in the shared
    :class:`~repro.core.store.ResultStore` are served warm and immediately;
    cold points flow through the :class:`~repro.server.batching.BatchQueue`,
    which coalesces concurrent same-workload evaluations into one banked
    sweep.  Batched, warm or cold, the row is bit-identical to a direct
    single-threaded :class:`~repro.core.study.Study` run.
``pareto``
    Quality-versus-cost Pareto front of a described design space over a
    workload, using the incremental front machinery (and the store, so a
    repeated query is a warm replay).
``experiments``
    The experiment registry plus the known workloads, operators and
    backends.
``status``
    Uptime, per-action request counters, in-flight requests, store /
    LUT-table / characterisation cache statistics and batching counters.
"""
from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..core.backends import (
    cache_stats,
    describe_backends,
    registered_backends,
    set_table_cache_limit,
)
from ..core.datapath import DatapathEnergyModel
from ..core.designspace import (
    DesignSpace,
    adder_point,
    approximate_adder_axis,
    joint_adder_space,
    multiplier_point,
    operator_axis,
    sized_adder_axis,
    sized_multiplier_axis,
)
from ..core.registry import describe_operators, parse_operator, registered_mnemonics
from ..core.store import ResultStore, StoreLike, canonical_key
from ..core.study import Study
from ..operators.base import AdderOperator, MultiplierOperator
from ..workloads.registry import registered_workloads
from .batching import BatchQueue
from .protocol import (
    ERROR_INTERNAL,
    ERROR_INVALID_PARAMS,
    ERROR_OVERLOADED,
    ERROR_UNKNOWN_ACTION,
    ProtocolError,
    error_envelope,
    ok_envelope,
)


class _SharedEnergyModel(DatapathEnergyModel):
    """The server's process-wide energy model, with a serialised cold path.

    :meth:`report_for` is check-then-characterise; under concurrent request
    threads two cold requests for the same operator would both synthesise
    it.  The lock makes characterisation single-flight — warm lookups still
    pay it, but a dictionary hit under an uncontended lock is negligible
    next to a functional simulation.
    """

    def __init__(self, store: Optional[ResultStore] = None) -> None:
        super().__init__(store=store)
        self._report_lock = threading.Lock()

    def report_for(self, operator):
        with self._report_lock:
            return super().report_for(operator)


class ServerState:
    """Everything the long-lived server shares across request threads.

    One open :class:`~repro.core.store.ResultStore`, one energy model (and
    therefore one hardware-characterisation cache), one batching queue, and
    the request/error counters the ``status`` action reports.  The
    process-wide LUT table cache is shared implicitly; its LRU cap is
    applied here so a long-lived server cannot grow it without bound.
    """

    def __init__(self, store: StoreLike = None, backend: str = "lut",
                 workers: int = 4, batch_window_s: float = 0.02,
                 table_cache_limit: Optional[int] = None,
                 deadline_s: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError("the server needs at least one worker slot")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        self.store = ResultStore.of(store)
        self.backend = str(backend)
        self.workers = int(workers)
        self.deadline_s = deadline_s
        self.energy_model = _SharedEnergyModel(store=self.store)
        self.batcher = BatchQueue(window_s=batch_window_s)
        self.table_cache_limit = set_table_cache_limit(table_cache_limit)
        self.started_monotonic = time.monotonic()
        self._slots = threading.BoundedSemaphore(self.workers)
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._in_flight = 0
        self._shed = 0

    @contextlib.contextmanager
    def worker_slot(self) -> Iterator[None]:
        """Hold one compute slot; shed load instead of queueing forever.

        Without a ``deadline_s`` this is the original blocking semaphore.
        With one, a request that cannot get a slot within the deadline is
        *shed*: an ``overloaded`` :class:`ProtocolError` (HTTP 503) whose
        ``retry_after_s`` tells the client when to come back — a bounded,
        honest refusal instead of an unbounded queue of doomed requests.
        """
        if self.deadline_s is None:
            with self._slots:
                yield
            return
        if not self._slots.acquire(timeout=self.deadline_s):
            with self._lock:
                self._shed += 1
            retry_after = round(max(self.deadline_s, 0.1), 3)
            raise ProtocolError(
                ERROR_OVERLOADED,
                f"no worker slot freed within {self.deadline_s:g}s; "
                f"retry after {retry_after:g}s",
                extra={"retry_after_s": retry_after})
        try:
            yield
        finally:
            self._slots.release()

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _enter(self, action: str) -> None:
        with self._lock:
            self._requests[action] = self._requests.get(action, 0) + 1
            self._in_flight += 1

    def _exit(self, action: str, code: Optional[str]) -> None:
        with self._lock:
            self._in_flight -= 1
            if code is not None:
                self._errors[code] = self._errors.get(code, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "requests": dict(sorted(self._requests.items())),
                "errors": dict(sorted(self._errors.items())),
                "in_flight": self._in_flight,
                "shed": self._shed,
            }


# --------------------------------------------------------------------------- #
# Parameter helpers
# --------------------------------------------------------------------------- #
def _require_str(params: Dict[str, object], name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'{name}' must be a non-empty string")
    return value


def _optional_str(params: Dict[str, object], name: str,
                  default: str) -> str:
    value = params.get(name, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'{name}' must be a non-empty string")
    return value


def _optional_int(params: Dict[str, object], name: str, default: int) -> int:
    value = params.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'{name}' must be an integer")
    return value


def _optional_bool(params: Dict[str, object], name: str,
                   default: bool) -> bool:
    value = params.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'{name}' must be a boolean")
    return value


def _optional_dict(params: Dict[str, object],
                   name: str) -> Dict[str, object]:
    value = params.get(name, {})
    if not isinstance(value, dict):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'{name}' must be a JSON object")
    return value


_AXES = ("operator", "adder", "multiplier")


def _jsonable(value: object) -> object:
    """Round-trip a handler result through JSON exactly as the wire will."""
    from ..core.results import _jsonify

    return json.loads(json.dumps(value, default=_jsonify))


# --------------------------------------------------------------------------- #
# evaluate
# --------------------------------------------------------------------------- #
def _evaluate_study(state: ServerState, params: Dict[str, object],
                    operators: Sequence[str]) -> Study:
    """The sweep a (possibly batched) evaluate request resolves to."""
    workload = _require_str(params, "workload")
    axis = _optional_str(params, "axis", "operator")
    if axis not in _AXES:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'axis' must be one of {_AXES}")
    study = (Study()
             .workload(workload, **_optional_dict(params, "config"))
             .seed(_optional_int(params, "seed", 0))
             .backend(_optional_str(params, "backend", state.backend)))
    getattr(study, {"operator": "operators", "adder": "adders",
                    "multiplier": "multipliers"}[axis])(list(operators))
    if _optional_bool(params, "energy", True):
        study.energy(state.energy_model)
    if state.store is not None:
        study.store(state.store)
    return study


def _evaluate_group_key(params: Dict[str, object]) -> str:
    """Batch group: everything of an evaluate request but the operator."""
    identity = {name: canonical_key(params.get(name))
                for name in ("workload", "axis", "seed", "backend",
                             "config", "energy")}
    return json.dumps(identity, sort_keys=True)


def _normalized_evaluate_params(params: Dict[str, object]
                                ) -> Dict[str, object]:
    """Fold the ``adder``/``multiplier`` sugar into ``operator`` + ``axis``.

    ``{"adder": "RCA"}`` is shorthand for ``{"operator": "RCA", "axis":
    "adder"}`` (likewise ``multiplier``) — one keystroke-friendly spelling
    for clients, one canonical shape for the handler and the batch group
    key.
    """
    sugar = [name for name in ("adder", "multiplier") if name in params]
    if not sugar:
        return params
    if len(sugar) > 1 or "operator" in params or "axis" in params:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "give exactly one of 'operator' (with optional "
                            "'axis'), 'adder' or 'multiplier'")
    normalized = dict(params)
    normalized["operator"] = normalized.pop(sugar[0])
    normalized["axis"] = sugar[0]
    return normalized


def _evaluate(state: ServerState, params: Dict[str, object]
              ) -> Dict[str, object]:
    params = _normalized_evaluate_params(params)
    operator = _require_str(params, "operator")
    study = _evaluate_study(state, params, [operator])
    key = study.point_keys()[0]
    cached = state.store is not None and state.store.contains("sweep", key)
    started = time.perf_counter()
    if cached:
        # Warm point: served from the open store in milliseconds — never
        # made to wait out a batching window.
        row = study.run().rows[0]
    else:
        def run_batch(operators: List[object]) -> Sequence[object]:
            # Only the batch leader computes, and only while holding a
            # worker slot — followers wait slot-free, so the worker cap
            # bounds concurrent sweeps without capping coalescing width.
            with state.worker_slot():
                batched = _evaluate_study(state, params,
                                          [str(op) for op in operators])
                return batched.run().rows

        row = state.batcher.submit(_evaluate_group_key(params), operator,
                                   run_batch)
    return {
        "row": _jsonable(row),
        "cached": cached,
        "seconds": round(time.perf_counter() - started, 6),
    }


# --------------------------------------------------------------------------- #
# pareto
# --------------------------------------------------------------------------- #
#: Named design-space generators the ``pareto`` action accepts.
_SPACE_KINDS = ("joint_adder", "sized_adder", "approximate_adder",
                "sized_multiplier", "operators")


def _space_from_params(space: object) -> DesignSpace:
    """Build a :class:`DesignSpace` from its wire description.

    Either ``{"kind": "<generator>", ...}`` using the named axis generators
    of :mod:`repro.core.designspace`, or ``{"kind": "operators",
    "specs": [...]}`` listing explicit operator specification strings
    (adders and multipliers take their natural roles).
    """
    if not isinstance(space, dict):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "'space' must be a JSON object describing a "
                            "design space")
    kind = space.get("kind")
    if kind not in _SPACE_KINDS:
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            f"'space.kind' must be one of {_SPACE_KINDS}")
    width = space.get("width", 16)
    if isinstance(width, bool) or not isinstance(width, int):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "'space.width' must be an integer")
    reduced = space.get("reduced", True)
    if not isinstance(reduced, bool):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "'space.reduced' must be a boolean")
    if kind == "operators":
        specs = space.get("specs")
        if not isinstance(specs, list) or not specs \
                or not all(isinstance(spec, str) for spec in specs):
            raise ProtocolError(ERROR_INVALID_PARAMS,
                                "'space.specs' must be a non-empty list of "
                                "operator specification strings")
        points = []
        for spec in specs:
            operator = parse_operator(spec)
            if isinstance(operator, AdderOperator):
                points.append(adder_point(operator))
            elif isinstance(operator, MultiplierOperator):
                points.append(multiplier_point(operator))
            else:
                points.extend(operator_axis([operator]))
        return DesignSpace(points)
    word_lengths = space.get("word_lengths")
    if word_lengths is not None and (
            not isinstance(word_lengths, list)
            or not all(isinstance(w, int) and not isinstance(w, bool)
                       for w in word_lengths)):
        raise ProtocolError(ERROR_INVALID_PARAMS,
                            "'space.word_lengths' must be a list of integers")
    if kind == "joint_adder":
        return joint_adder_space(width, reduced=reduced,
                                 sized_widths=word_lengths)
    if kind == "sized_adder":
        return sized_adder_axis(width, word_lengths=word_lengths)
    if kind == "sized_multiplier":
        return sized_multiplier_axis(width, word_lengths=word_lengths)
    return approximate_adder_axis(width, reduced=reduced)


def _pareto(state: ServerState, params: Dict[str, object]
            ) -> Dict[str, object]:
    workload = _require_str(params, "workload")
    quality = _require_str(params, "quality")
    cost = _optional_str(params, "cost", "total_energy_pj")
    space = _space_from_params(params.get("space"))
    study = (Study()
             .workload(workload, **_optional_dict(params, "config"))
             .design_space(space)
             .seed(_optional_int(params, "seed", 0))
             .backend(_optional_str(params, "backend", state.backend))
             .energy(state.energy_model)
             .pareto(quality=quality, cost=cost,
                     maximize_quality=_optional_bool(params,
                                                     "maximize_quality", True),
                     minimize_cost=_optional_bool(params,
                                                  "minimize_cost", True)))
    if state.store is not None:
        study.store(state.store)
    started = time.perf_counter()
    with state.worker_slot():
        result = study.run()
    front = result.fronts[f"{quality}_vs_{cost}"]
    return {
        "front": _jsonable(front.to_dict()),
        "rows": len(result.rows),
        "sweep_points": len(space),
        "store_hits": result.metadata.get("store_hits", 0),
        "seconds": round(time.perf_counter() - started, 6),
    }


# --------------------------------------------------------------------------- #
# experiments / status
# --------------------------------------------------------------------------- #
def _experiments(state: ServerState, params: Dict[str, object]
                 ) -> Dict[str, object]:
    from ..experiments import EXPERIMENTS, experiment_names

    names = experiment_names(
        include_ablations=_optional_bool(params, "ablations", True))
    return {
        "experiments": [
            {"name": name, "title": EXPERIMENTS[name].title,
             "ablation": EXPERIMENTS[name].ablation}
            for name in names
        ],
        "workloads": registered_workloads(),
        "operators": registered_mnemonics(),
        "operator_details": describe_operators(),
        "backends": registered_backends(),
        "backend_details": describe_backends(),
    }


def _status(state: ServerState, params: Dict[str, object]
            ) -> Dict[str, object]:
    from .. import __version__

    return {
        "version": __version__,
        "uptime_s": round(time.monotonic() - state.started_monotonic, 3),
        "backend": state.backend,
        "workers": state.workers,
        **state.snapshot(),
        "store": state.store.stats() if state.store is not None else None,
        "table_cache": cache_stats(),
        "hardware_cache": {"reports": len(state.energy_model._cache)},
        "batching": state.batcher.stats(),
    }


# --------------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------------- #
Handler = Callable[[ServerState, Dict[str, object]], Dict[str, object]]

ACTIONS: Dict[str, Handler] = {
    "evaluate": _evaluate,
    "pareto": _pareto,
    "experiments": _experiments,
    "status": _status,
}


def dispatch(state: ServerState, action: str,
             params: Dict[str, object]) -> Dict[str, object]:
    """Route one parsed request to its handler; always returns an envelope.

    Parameter validation failures (including the ``ValueError`` /
    ``KeyError`` / ``TypeError`` family the registries and the Study raise
    on bad specifications) map to ``invalid_params``; anything else a
    handler raises maps to ``internal_error`` — the server never lets a
    request kill the process.
    """
    handler = ACTIONS.get(action)
    if handler is None:
        envelope = error_envelope(
            ERROR_UNKNOWN_ACTION,
            f"unknown action {action!r}; known: {', '.join(sorted(ACTIONS))}",
            action=action)
        state._enter(action)
        state._exit(action, ERROR_UNKNOWN_ACTION)
        return envelope
    state._enter(action)
    code: Optional[str] = None
    try:
        return ok_envelope(action, handler(state, params))
    except ProtocolError as error:
        code = error.code
        return error.envelope(action=action)
    except (ValueError, KeyError, TypeError) as error:
        code = ERROR_INVALID_PARAMS
        return error_envelope(ERROR_INVALID_PARAMS, str(error), action=action)
    except Exception as error:  # noqa: BLE001 - the server must stay up
        code = ERROR_INTERNAL
        return error_envelope(ERROR_INTERNAL,
                              f"{error.__class__.__name__}: {error}",
                              action=action)
    finally:
        state._exit(action, code)
