"""Static HTML renderer for the results dashboard — stdlib only.

One self-contained document: inline CSS (light and dark from the same
validated palette), inline SVG charts, no script, no external fetches —
it opens from a CI artifact zip or a mailbox exactly as it opened on the
build machine.

Chart conventions (deliberate, not cosmetic):

* one axis pair per chart — quality up, cost right;
* the Pareto front is the single emphasised series (palette slot 1,
  blue, stepped line + markers); every evaluated point renders behind it
  as a recessive gray cloud, so the frontier reads against what it beat;
* every mark carries a native ``<title>`` tooltip, and every chart is
  followed by the front as a plain table — identity is never
  color-alone;
* text wears text tokens, never the series color.
"""
from __future__ import annotations

import html
import math
from typing import Dict, List, Optional, Sequence, Tuple

# Validated palette (reference instance): categorical slot 1 per mode,
# plus surfaces and text tokens.  The dark column is the same hue
# re-stepped for the dark surface, not a different palette.
_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e3e2de;
  --series-1: #2a78d6;
  --cloud: #b5b4af;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #383835;
    --series-1: #3987e5;
    --cloud: #6a6965;
  }
}
body {
  margin: 0 auto; padding: 24px; max-width: 1080px;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 17px; margin: 32px 0 8px; }
h3 { font-size: 14px; margin: 16px 0 4px; font-weight: 600; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 18px; min-width: 120px;
}
.tile .value { font-size: 24px; font-weight: 650; display: block; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; margin: 8px 0 16px; font-size: 13px; }
th, td { text-align: right; padding: 4px 10px; }
th { color: var(--text-secondary); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
tbody tr { border-top: 1px solid var(--grid); }
.legend { color: var(--text-secondary); font-size: 12px; margin: 4px 0; }
.swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin: 0 4px 0 12px; vertical-align: baseline;
}
svg text { fill: var(--text-secondary); font-size: 11px; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
svg .gridline { stroke: var(--grid); stroke-width: 0.5; }
svg .front-line { stroke: var(--series-1); stroke-width: 2; fill: none; }
svg .front-dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
svg .cloud-dot { fill: var(--cloud); }
svg .pointlabel { fill: var(--text-primary); font-size: 11px; }
footer { color: var(--text-secondary); font-size: 12px; margin-top: 32px; }
"""


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return html.escape(str(value))


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (inclusive-ish)."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return []
    if hi <= lo:
        hi = lo + (abs(lo) or 1.0)
    raw = (hi - lo) / max(1, count - 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = next(m * magnitude for m in (1.0, 2.0, 2.5, 5.0, 10.0)
                if m * magnitude >= raw)
    start = math.floor(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + step * 0.501:
        ticks.append(round(tick, 12))
        tick += step
    return ticks


def _scatter_svg(front: Dict[str, object], width: int = 560,
                 height: int = 320) -> str:
    """One quality-versus-cost chart: gray cloud + blue stepped frontier."""
    cloud: List[Dict[str, object]] = list(front.get("cloud", []))
    points: List[Dict[str, object]] = list(front.get("points", []))
    everything = cloud + points
    if not everything:
        return "<p class='legend'>no plottable points</p>"
    xs = [float(p["cost"]) for p in everything]
    ys = [float(p["quality"]) for p in everything]
    xticks = _nice_ticks(min(xs), max(xs))
    yticks = _nice_ticks(min(ys), max(ys))
    xlo, xhi = min(xticks + xs), max(xticks + xs)
    ylo, yhi = min(yticks + ys), max(yticks + ys)
    margin_l, margin_r, margin_t, margin_b = 64, 16, 12, 40
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    def sx(v: float) -> float:
        return margin_l + (v - xlo) / (xhi - xlo or 1.0) * plot_w

    def sy(v: float) -> float:
        return margin_t + plot_h - (v - ylo) / (yhi - ylo or 1.0) * plot_h

    parts = [f"<svg viewBox='0 0 {width} {height}' role='img' "
             f"aria-label='{html.escape(str(front['key']))}'>"]
    for tick in xticks:
        x = sx(tick)
        parts.append(f"<line class='gridline' x1='{x:.1f}' y1='{margin_t}' "
                     f"x2='{x:.1f}' y2='{margin_t + plot_h}'/>")
        parts.append(f"<text x='{x:.1f}' y='{margin_t + plot_h + 16}' "
                     f"text-anchor='middle'>{_fmt(tick)}</text>")
    for tick in yticks:
        y = sy(tick)
        parts.append(f"<line class='gridline' x1='{margin_l}' y1='{y:.1f}' "
                     f"x2='{margin_l + plot_w}' y2='{y:.1f}'/>")
        parts.append(f"<text x='{margin_l - 6}' y='{y:.1f}' dy='0.32em' "
                     f"text-anchor='end'>{_fmt(tick)}</text>")
    parts.append(f"<line class='axis' x1='{margin_l}' y1='{margin_t + plot_h}'"
                 f" x2='{margin_l + plot_w}' y2='{margin_t + plot_h}'/>")
    parts.append(f"<line class='axis' x1='{margin_l}' y1='{margin_t}' "
                 f"x2='{margin_l}' y2='{margin_t + plot_h}'/>")
    parts.append(
        f"<text x='{margin_l + plot_w / 2:.1f}' y='{height - 6}' "
        f"text-anchor='middle'>{html.escape(str(front['cost']))}</text>")
    parts.append(
        f"<text x='14' y='{margin_t + plot_h / 2:.1f}' text-anchor='middle' "
        f"transform='rotate(-90 14 {margin_t + plot_h / 2:.1f})'>"
        f"{html.escape(str(front['quality']))}</text>")

    for point in cloud:
        parts.append(
            f"<circle class='cloud-dot' cx='{sx(float(point['cost'])):.1f}' "
            f"cy='{sy(float(point['quality'])):.1f}' r='3'>"
            f"<title>{html.escape(str(point['label']))}: "
            f"{_fmt(point['quality'])} at {_fmt(point['cost'])}</title>"
            f"</circle>")
    ordered = sorted(points, key=lambda p: (float(p["cost"]),
                                            float(p["quality"])))
    if len(ordered) > 1:
        steps = []
        previous: Optional[Tuple[float, float]] = None
        for point in ordered:
            x, y = sx(float(point["cost"])), sy(float(point["quality"]))
            if previous is None:
                steps.append(f"M {x:.1f} {y:.1f}")
            else:
                steps.append(f"L {x:.1f} {previous[1]:.1f} L {x:.1f} {y:.1f}")
            previous = (x, y)
        parts.append(f"<path class='front-line' d='{' '.join(steps)}'/>")
    label_budget = {0, len(ordered) - 1} if len(ordered) > 4 \
        else set(range(len(ordered)))
    for index, point in enumerate(ordered):
        x, y = sx(float(point["cost"])), sy(float(point["quality"]))
        parts.append(
            f"<circle class='front-dot' cx='{x:.1f}' cy='{y:.1f}' r='4'>"
            f"<title>{html.escape(str(point['label']))}: "
            f"{_fmt(point['quality'])} at {_fmt(point['cost'])}</title>"
            f"</circle>")
        if index in label_budget:
            anchor = "start" if index == 0 else "end"
            dx = 7 if anchor == "start" else -7
            parts.append(
                f"<text class='pointlabel' x='{x + dx:.1f}' y='{y - 7:.1f}' "
                f"text-anchor='{anchor}'>"
                f"{html.escape(str(point['label']))}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _front_table(front: Dict[str, object]) -> str:
    rows = [f"<tr><td>{html.escape(str(p['label']))}</td>"
            f"<td>{_fmt(p['quality'])}</td><td>{_fmt(p['cost'])}</td></tr>"
            for p in front["points"]]
    return (f"<table><thead><tr><th>front point</th>"
            f"<th>{html.escape(str(front['quality']))}</th>"
            f"<th>{html.escape(str(front['cost']))}</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


def _tiles(entries: Sequence[Tuple[str, object]]) -> str:
    tiles = [f"<div class='tile'><span class='value'>{_fmt(value)}</span>"
             f"<span class='label'>{html.escape(label)}</span></div>"
             for label, value in entries]
    return f"<div class='tiles'>{''.join(tiles)}</div>"


def _perf_section(perf: Optional[Dict[str, object]]) -> str:
    if not perf or not isinstance(perf.get("studies"), dict):
        return "<p class='legend'>no committed perf history</p>"
    header = ("<tr><th>study</th><th>direct s</th><th>fused s</th>"
              "<th>lut cold s</th><th>lut warm s</th><th>compiled warm s</th>"
              "<th>cold ×</th><th>warm ×</th><th>fusion ×</th>"
              "<th>compiled÷lut ×</th><th>identical</th></tr>")
    rows = []
    for name, study in sorted(perf["studies"].items()):
        rows.append(
            "<tr>" + "".join(
                f"<td>{_fmt(value)}</td>" for value in (
                    name, study.get("direct_s"),
                    study.get("direct_fused_s"), study.get("lut_cold_s"),
                    study.get("lut_warm_s"), study.get("compiled_warm_s"),
                    study.get("speedup_cold"),
                    study.get("speedup_warm"), study.get("fusion_speedup"),
                    study.get("compiled_vs_lut"),
                    study.get("identical_records"))) + "</tr>")
    version = _fmt(perf.get("repro_version", "?"))
    parts = [f"<p class='legend'>from {_fmt(perf.get('path', '?'))} "
             f"(repro {version})</p>"
             f"<table><thead>{header}</thead>"
             f"<tbody>{''.join(rows)}</tbody></table>"]
    jpeg = perf["studies"].get("jpeg16")
    tables = perf.get("tables")
    tile_entries = []
    if isinstance(jpeg, dict) and jpeg.get("kernel_speedup") is not None:
        tile_entries.append(("jpeg16 multiplier kernels, compiled ÷ lut",
                             jpeg.get("kernel_speedup")))
    if isinstance(tables, dict):
        tile_entries.extend([
            ("table arena attach ÷ cold build", tables.get("attach_speedup")),
            ("cold table build (s)", tables.get("cold_build_s")),
            ("arena attach (s)", tables.get("attach_s")),
        ])
    if tile_entries:
        parts.append(_tiles(tile_entries))
    return "".join(parts)


def _serve_section(serve: Optional[Dict[str, object]]) -> str:
    if not serve:
        return "<p class='legend'>no committed serve history</p>"
    warm = serve.get("warm") if isinstance(serve.get("warm"), dict) else {}
    tiles = _tiles([
        ("warm ÷ cold-process advantage", serve.get("warm_advantage")),
        ("warm p50 (s)", warm.get("p50_s")),
        ("warm p95 (s)", warm.get("p95_s")),
        ("warm p99 (s)", warm.get("p99_s")),
        ("warm throughput (req/s)", warm.get("throughput_rps")),
    ])
    version = _fmt(serve.get("repro_version", "?"))
    return (f"<p class='legend'>from {_fmt(serve.get('path', '?'))} "
            f"(repro {version}, {_fmt(serve.get('clients', '?'))} "
            f"clients)</p>{tiles}")


def render_dashboard(model: Dict[str, object]) -> str:
    """The whole dashboard document as one HTML string."""
    summary = model["summary"]
    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'/>",
        f"<title>{html.escape(str(model['title']))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(str(model['title']))}</h1>",
        f"<p class='subtitle'>repro {_fmt(model['repro'])}"
        + (f" · generated {_fmt(model['generated'])}"
           if model.get("generated") else "") + "</p>",
        _tiles([("experiments", summary["experiments"]),
                ("sweep rows", summary["rows"]),
                ("Pareto fronts", summary["fronts"]),
                ("frontier points", summary["front_points"])]),
    ]
    charted = [e for e in model["experiments"] if e["fronts"]]
    tabular = [e for e in model["experiments"] if not e["fronts"]]
    if charted:
        parts.append("<h2>Quality-versus-energy Pareto fronts</h2>")
        parts.append("<p class='legend'>"
                     "<span class='swatch' style='background:var(--series-1)'>"
                     "</span>Pareto front"
                     "<span class='swatch' style='background:var(--cloud)'>"
                     "</span>every evaluated point</p>")
    for experiment in charted:
        parts.append(f"<h3>{html.escape(str(experiment['name']))}</h3>")
        parts.append(f"<p class='legend'>"
                     f"{html.escape(str(experiment['description']))} — "
                     f"{experiment['rows']} rows</p>")
        search = experiment.get("search")
        if isinstance(search, dict):
            parts.append(
                "<p class='legend'>front discovered by adaptive search — "
                "the cloud is every candidate the driver evaluated, not "
                "an enumeration of the space</p>")
            parts.append(_tiles([
                ("search strategy", search.get("strategy", "?")),
                ("candidates evaluated", search.get("evaluations")),
                ("design space size", search.get("space_size")),
                ("full-density cost units", search.get("cost_units")),
                ("frontier points found", search.get("front_points")),
                ("served warm from store", search.get("store_hits")),
            ]))
        for front in experiment["fronts"]:
            parts.append(_scatter_svg(front))
            parts.append(_front_table(front))
    if tabular:
        parts.append("<h2>Table experiments</h2>")
        parts.append("<table><thead><tr><th>experiment</th><th>rows</th>"
                     "<th>description</th></tr></thead><tbody>")
        for experiment in tabular:
            parts.append(
                f"<tr><td>{html.escape(str(experiment['name']))}</td>"
                f"<td>{experiment['rows']}</td>"
                f"<td style='text-align:left'>"
                f"{html.escape(str(experiment['description']))}</td></tr>")
        parts.append("</tbody></table>")
    resilience = model.get("resilience")
    if isinstance(resilience, dict):
        parts.append("<h2>Resilience</h2>")
        parts.append("<p class='legend'>what this run survived — from the "
                     "fleet harvest's <code>resilience.json</code></p>")
        parts.append(_tiles([
            ("lease reclaims", resilience.get("reclaims", 0)),
            ("worker errors", resilience.get("worker_errors", 0)),
            ("absorb conflicts", resilience.get("conflicts", 0)),
            ("quarantined records", resilience.get("quarantined", 0))]))
    parts.append("<h2>Backend performance trajectory</h2>")
    parts.append(_perf_section(model["bench"].get("perf")))
    parts.append("<h2>Evaluation-server trajectory</h2>")
    parts.append(_serve_section(model["bench"].get("serve")))
    skipped = model["bench"].get("skipped") or []
    if skipped:
        parts.append(f"<p class='legend'>unreadable bench inputs skipped: "
                     f"{_fmt(', '.join(skipped))}</p>")
    parts.append("<footer>Self-contained static dashboard — "
                 "generated by <code>repro report</code>; "
                 "no scripts, no external requests.</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)
