"""Static results dashboard: merged bundle + bench history -> one HTML file.

``repro report`` renders a self-contained dashboard (inline CSS and SVG,
no scripts, no external fetches) from a merged run directory and the
committed ``BENCH_*.json`` history: per-app quality-versus-energy Pareto
fronts, the table experiments, and the perf/serve benchmark
trajectories.  CI publishes it as an artifact on the merge path, so
every merge shows the frontier.

The model/render split lives in :mod:`repro.report.model` (what the
dashboard shows) and :mod:`repro.report.render` (how it is drawn).
"""
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..core.results import ResultBundle
from .model import (
    bench_model,
    dashboard_model,
    front_model,
    point_label,
    resilience_model,
)
from .render import render_dashboard

#: The bench history files the dashboard reads when none are named.
DEFAULT_BENCH_GLOB = "BENCH_*.json"


def generate_report(bundle_dir: Union[str, Path],
                    bench_paths: Optional[Sequence[Union[str, Path]]] = None,
                    output: Union[str, Path] = "report.html",
                    title: str = "repro results dashboard",
                    generated: Optional[str] = None) -> Dict[str, object]:
    """Render the dashboard; returns the ``repro report`` JSON document."""
    bundle = ResultBundle.load_dir(bundle_dir)
    if not bundle.results:
        raise ValueError(f"no experiment results found under {bundle_dir}")
    if bench_paths is None:
        bench_paths = sorted(Path.cwd().glob(DEFAULT_BENCH_GLOB))
    model = dashboard_model(bundle, bench_paths, title=title,
                            generated=generated,
                            resilience=resilience_model(bundle_dir))
    text = render_dashboard(model)
    target = Path(output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    bench = model["bench"]
    return {
        "bundle": str(bundle_dir),
        "output": str(target),
        "bytes": len(text.encode("utf-8")),
        "experiments": model["summary"]["experiments"],
        "fronts": model["summary"]["fronts"],
        "front_points": model["summary"]["front_points"],
        "bench": {
            "perf": bench["perf"]["path"] if bench["perf"] else None,
            "serve": bench["serve"]["path"] if bench["serve"] else None,
            "skipped": bench["skipped"],
        },
        "resilience": model["resilience"],
    }


__all__ = [
    "DEFAULT_BENCH_GLOB",
    "bench_model",
    "dashboard_model",
    "front_model",
    "generate_report",
    "point_label",
    "render_dashboard",
    "resilience_model",
]
