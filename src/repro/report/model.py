"""Dashboard data model: what the report shows, divorced from how.

The renderer (:mod:`repro.report.render`) consumes one plain-dict model
assembled here from a merged result bundle plus the committed
``BENCH_*.json`` history — the schema/render split, so the model is
testable without parsing HTML and the renderer is swappable without
touching experiment code.

Model shape::

    {
      "title": ...,
      "repro": version,
      "generated": optional caller-supplied stamp,
      "summary": {"experiments", "rows", "fronts", "front_points"},
      "experiments": [
        {"name", "description", "rows", "columns",
         "search": {"strategy", "space_size", "evaluations", ...}|None,
         "fronts": [
           {"key", "quality", "cost", "evaluated",
            "points": [{"cost", "quality", "label"}],     # the front
            "cloud":  [{"cost", "quality", "label"}]}]},  # every row
      ],
      "bench": {"perf": {...}|None, "serve": {...}|None},
      "resilience": {"reclaims", "worker_errors",
                     "conflicts", "quarantined"}|None,
    }
"""
from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..core.results import ExperimentResult, ResultBundle

#: Row keys tried, in order, for a point's human-readable label.
LABEL_COLUMNS = ("operator", "adder", "multiplier", "name", "mode")


def point_label(row: Dict[str, object]) -> str:
    """A short identity for one sweep row (operator mnemonic, usually).

    A heterogeneous search row's ``genome`` — its whole per-stage operator
    assignment — *is* the identity, so it wins over the homogeneous
    columns (whose ``operator`` would misleadingly name only one stage).
    """
    genome = row.get("genome")
    if isinstance(genome, str) and genome:
        return genome
    parts = []
    for column in LABEL_COLUMNS:
        value = row.get(column)
        if isinstance(value, str) and value and value not in parts:
            parts.append(value)
    if "word_length" in row and row.get("word_length") is not None:
        parts.append(f"W={row['word_length']}")
    return " / ".join(parts[:2]) if parts else "point"


def _objective(row: Dict[str, object], column: str) -> Optional[float]:
    try:
        value = float(row[column])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError):
        return None
    return None if math.isnan(value) else value


def front_model(result: ExperimentResult) -> List[Dict[str, object]]:
    """Every attached Pareto front of one experiment, chart-ready."""
    fronts = []
    for key in sorted(result.fronts):
        front = result.fronts[key]
        cloud = []
        for row in result.rows:
            quality = _objective(row, front.quality_column)
            cost = _objective(row, front.cost_column)
            if quality is None or cost is None:
                continue
            cloud.append({"cost": cost, "quality": quality,
                          "label": point_label(row)})
        points = [{"cost": record.cost, "quality": record.quality,
                   "label": point_label(record.row)}
                  for record in front.records]
        fronts.append({
            "key": key,
            "quality": front.quality_column,
            "cost": front.cost_column,
            "maximize_quality": front.maximize_quality,
            "evaluated": front.evaluated,
            "points": points,
            "cloud": cloud,
        })
    return fronts


def _read_bench(path: Union[str, Path]) -> Optional[Dict[str, object]]:
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def bench_model(paths: Sequence[Union[str, Path]]) -> Dict[str, object]:
    """Classify committed bench documents into perf / serve trajectories.

    Missing or malformed files are reported, not fatal — the dashboard
    renders from whatever history exists.
    """
    perf = serve = None
    skipped: List[str] = []
    for path in paths:
        document = _read_bench(path)
        if document is None:
            skipped.append(str(path))
            continue
        script = str(document.get("script", ""))
        if "serve" in script or "warm_advantage" in document:
            serve = {"path": str(path), **document}
        else:
            perf = {"path": str(path), **document}
    return {"perf": perf, "serve": serve, "skipped": skipped}


def resilience_model(bundle_dir: Union[str, Path]
                     ) -> Optional[Dict[str, object]]:
    """The ``resilience.json`` a fleet harvest writes, or ``None``.

    The counters of what a run survived — lease reclaims of dead
    workers, worker-reported errors, store absorb conflicts, quarantined
    records.  A plain (non-fleet) run directory has no such file and
    the dashboard simply omits the section.
    """
    try:
        document = json.loads(
            (Path(bundle_dir) / "resilience.json").read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def dashboard_model(bundle: ResultBundle,
                    bench_paths: Sequence[Union[str, Path]] = (),
                    title: str = "repro results dashboard",
                    generated: Optional[str] = None,
                    resilience: Optional[Dict[str, object]] = None
                    ) -> Dict[str, object]:
    """Assemble the whole dashboard model from a merged bundle + history."""
    from .. import __version__

    experiments = []
    total_rows = 0
    total_fronts = 0
    total_front_points = 0
    for name in sorted(bundle.results):
        result = bundle.get(name)
        fronts = front_model(result)
        total_rows += len(result.rows)
        total_fronts += len(fronts)
        total_front_points += sum(len(front["points"]) for front in fronts)
        search = result.metadata.get("search")
        experiments.append({
            "name": name,
            "description": result.description,
            "rows": len(result.rows),
            "columns": list(result.columns),
            "search": dict(search) if isinstance(search, dict) else None,
            "fronts": fronts,
        })
    return {
        "title": title,
        "repro": __version__,
        "generated": generated,
        "summary": {
            "experiments": len(experiments),
            "rows": total_rows,
            "fronts": total_fronts,
            "front_points": total_front_points,
        },
        "experiments": experiments,
        "bench": bench_model(bench_paths),
        "resilience": resilience,
    }
