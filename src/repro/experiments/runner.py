"""Run every reproduced experiment — whole, sharded, or selected.

``run_all`` regenerates each table and figure of the paper's evaluation
section (plus the extension ablations and the joint design-space frontiers)
and returns a :class:`RunAllResult`; with an output directory it also writes
one JSON file per experiment plus a machine-readable ``manifest.json``.

The suite is organised as a *registry* (:data:`EXPERIMENTS`): one
:class:`ExperimentSpec` per reproduced table/figure, each a closure over a
shared :class:`RunConfig` (sweep density, workers, backend, store, shard).
That registry is what the ``python -m repro`` CLI lists, selects from and
shards over:

* ``experiments=`` selects a subset by name (``run_all`` order preserved);
* ``shard=(i, n)`` (or ``"i/n"``) partitions every experiment's design
  points deterministically across ``n`` machines — shard ``i`` runs the
  points whose global sweep index is ``i (mod n)`` — and the emitted
  partial results carry the indices needed to fold them back together;
* :func:`merge_run` is that fold: it reassembles shard outputs into one
  bundle with recomputed Pareto fronts, bit-identical to an unsharded run.

Per-point checkpointing comes from ``store=``: every completed sweep point
is persisted as it finishes, so a killed run — sharded or not — resumes by
skipping the structural keys already on disk, and the resumed rows are
bit-identical to an uninterrupted run.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.backends import BackendLike, backend_spec
from ..core.datapath import DatapathEnergyModel
from ..core.results import ExperimentResult, ResultBundle
from ..core.store import ResultStore, StoreLike
from ..core.study import ShardLike, parse_shard, resolve_workers
from .ablations import multiplier_compensation_ablation, rounding_mode_ablation
from .adders_study import adder_error_cost_study
from .fft_study import fft_adder_sweep, fft_joint_frontier, fft_multiplier_comparison
from .hevc_study import hevc_adder_table, hevc_multiplier_table
from .jpeg_study import jpeg_adder_sweep, jpeg_joint_frontier
from .kmeans_study import kmeans_adder_table, kmeans_multiplier_table
from .multipliers_study import multiplier_comparison
from .search_study import fft_heterogeneous_search


@dataclass
class RunConfig:
    """Shared knobs of one ``run_all`` invocation, handed to every builder.

    The derived properties encode the reduced-versus-full sweep densities
    that used to live inline in ``run_all`` — one place, used by every
    experiment builder.
    """

    reduced: bool = True
    workers: int = 1
    backend: BackendLike = "direct"
    store: Optional[ResultStore] = None
    shard: Optional[Tuple[int, int]] = None
    energy_model: DatapathEnergyModel = field(default_factory=DatapathEnergyModel)

    @property
    def error_samples(self) -> int:
        return 30_000 if self.reduced else 200_000

    @property
    def image_size(self) -> int:
        return 96 if self.reduced else 256

    @property
    def frames(self) -> int:
        return 4 if self.reduced else 16

    @property
    def kmeans_runs(self) -> int:
        return 2 if self.reduced else 5

    @property
    def kmeans_points(self) -> int:
        return 1500 if self.reduced else 5000


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: how to build one reproduced table or figure."""

    #: Registry/selection name — equals the emitted ``result.experiment``.
    name: str
    #: One-line summary shown by ``python -m repro list``.
    title: str
    #: Builds the result from the shared run configuration.
    build: Callable[[RunConfig], ExperimentResult]
    #: Extension ablations are skipped by ``include_ablations=False``.
    ablation: bool = False
    #: Adaptive experiments cannot be partitioned by sweep index — their
    #: candidate schedule depends on earlier results.  Sharded runs execute
    #: them whole on shard 0 only; the merge passes the single result
    #: through, so the folded bundle still matches an unsharded run.
    shardable: bool = True


EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register(name: str, title: str, ablation: bool = False,
              shardable: bool = True):
    def decorator(build: Callable[[RunConfig], ExperimentResult]):
        EXPERIMENTS[name] = ExperimentSpec(name=name, title=title,
                                           build=build, ablation=ablation,
                                           shardable=shardable)
        return build
    return decorator


@_register("fig3_fig4_adders",
           "16-bit adders: error metrics versus hardware cost (Figures 3-4)")
def _build_adders(cfg: RunConfig) -> ExperimentResult:
    return adder_error_cost_study(error_samples=cfg.error_samples,
                                  reduced=cfg.reduced, workers=cfg.workers,
                                  store=cfg.store, shard=cfg.shard)


@_register("table1_multipliers",
           "16-bit fixed-width multipliers characterised (Table I)")
def _build_multipliers(cfg: RunConfig) -> ExperimentResult:
    return multiplier_comparison(error_samples=cfg.error_samples,
                                 workers=cfg.workers, store=cfg.store,
                                 shard=cfg.shard)


@_register("fig5_fft_adders",
           "FFT-32 energy versus PSNR with the adders swept (Figure 5)")
def _build_fft_adders(cfg: RunConfig) -> ExperimentResult:
    return fft_adder_sweep(reduced=cfg.reduced, energy_model=cfg.energy_model,
                           frames=cfg.frames, workers=cfg.workers,
                           backend=cfg.backend, store=cfg.store,
                           shard=cfg.shard)


@_register("table2_fft_multipliers",
           "FFT-32 with fixed-width multipliers swapped (Table II)")
def _build_fft_multipliers(cfg: RunConfig) -> ExperimentResult:
    return fft_multiplier_comparison(energy_model=cfg.energy_model,
                                     frames=cfg.frames, workers=cfg.workers,
                                     backend=cfg.backend, store=cfg.store,
                                     shard=cfg.shard)


@_register("fft_joint_frontier",
           "FFT joint approximate-versus-sized Pareto frontier (headline)")
def _build_fft_frontier(cfg: RunConfig) -> ExperimentResult:
    return fft_joint_frontier(reduced=cfg.reduced,
                              energy_model=cfg.energy_model,
                              frames=cfg.frames, workers=cfg.workers,
                              backend=cfg.backend, store=cfg.store,
                              shard=cfg.shard)


@_register("fig6_jpeg",
           "JPEG DCT energy versus MSSIM with the adders swept (Figure 6)")
def _build_jpeg(cfg: RunConfig) -> ExperimentResult:
    return jpeg_adder_sweep(image_size=cfg.image_size, reduced=cfg.reduced,
                            energy_model=cfg.energy_model,
                            workers=cfg.workers, backend=cfg.backend,
                            store=cfg.store, shard=cfg.shard)


@_register("jpeg_joint_frontier",
           "JPEG joint approximate-versus-sized Pareto frontier (headline)")
def _build_jpeg_frontier(cfg: RunConfig) -> ExperimentResult:
    return jpeg_joint_frontier(image_size=cfg.image_size, reduced=cfg.reduced,
                               energy_model=cfg.energy_model,
                               workers=cfg.workers, backend=cfg.backend,
                               store=cfg.store, shard=cfg.shard)


@_register("table3_hevc_adders",
           "HEVC motion compensation with the adders swapped (Table III)")
def _build_hevc_adders(cfg: RunConfig) -> ExperimentResult:
    return hevc_adder_table(image_size=cfg.image_size,
                            energy_model=cfg.energy_model,
                            workers=cfg.workers, backend=cfg.backend,
                            store=cfg.store, shard=cfg.shard)


@_register("table4_hevc_multipliers",
           "HEVC motion compensation with the multipliers swapped (Table IV)")
def _build_hevc_multipliers(cfg: RunConfig) -> ExperimentResult:
    return hevc_multiplier_table(image_size=cfg.image_size,
                                 energy_model=cfg.energy_model,
                                 workers=cfg.workers, backend=cfg.backend,
                                 store=cfg.store, shard=cfg.shard)


@_register("table5_kmeans_adders",
           "K-means distance datapath with the adders swapped (Table V)")
def _build_kmeans_adders(cfg: RunConfig) -> ExperimentResult:
    return kmeans_adder_table(runs=cfg.kmeans_runs,
                              points_per_run=cfg.kmeans_points,
                              energy_model=cfg.energy_model,
                              workers=cfg.workers, backend=cfg.backend,
                              store=cfg.store, shard=cfg.shard)


@_register("table6_kmeans_multipliers",
           "K-means distance datapath with the multipliers swapped (Table VI)")
def _build_kmeans_multipliers(cfg: RunConfig) -> ExperimentResult:
    return kmeans_multiplier_table(runs=cfg.kmeans_runs,
                                   points_per_run=cfg.kmeans_points,
                                   energy_model=cfg.energy_model,
                                   workers=cfg.workers, backend=cfg.backend,
                                   store=cfg.store, shard=cfg.shard)


@_register("fft_heterogeneous_search",
           "Per-stage heterogeneous FFT datapaths found adaptively (search)",
           shardable=False)
def _build_heterogeneous_search(cfg: RunConfig) -> ExperimentResult:
    return fft_heterogeneous_search(reduced=cfg.reduced, workers=cfg.workers,
                                    backend=cfg.backend, store=cfg.store)


@_register("ablation_compensation",
           "AAM/ABM compensation-circuit contribution (extension ablation)",
           ablation=True)
def _build_ablation_compensation(cfg: RunConfig) -> ExperimentResult:
    return multiplier_compensation_ablation(error_samples=cfg.error_samples,
                                            workers=cfg.workers,
                                            store=cfg.store, shard=cfg.shard)


@_register("ablation_rounding_mode",
           "LSB-elimination rounding-mode comparison (extension ablation)",
           ablation=True)
def _build_ablation_rounding(cfg: RunConfig) -> ExperimentResult:
    return rounding_mode_ablation(error_samples=cfg.error_samples,
                                  workers=cfg.workers, store=cfg.store,
                                  shard=cfg.shard)


def experiment_names(include_ablations: bool = True) -> List[str]:
    """Registry names in ``run_all`` order."""
    return [name for name, spec in EXPERIMENTS.items()
            if include_ablations or not spec.ablation]


def select_experiments(experiments: Optional[Sequence[str]] = None,
                       include_ablations: bool = True) -> List[ExperimentSpec]:
    """Resolve a selection (``None`` = the whole suite) against the registry.

    Unknown names raise a ``ValueError`` listing the registry, so a typo in
    a CI matrix fails before any sweep runs.  Explicit selections may name
    ablations regardless of ``include_ablations``.
    """
    if experiments is None:
        return [EXPERIMENTS[name]
                for name in experiment_names(include_ablations)]
    unknown = [name for name in experiments if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments {unknown}; "
                         f"available: {sorted(EXPERIMENTS)}")
    # Preserve suite order regardless of the selection's order so a merged
    # sharded run lists experiments exactly as an unsharded one does.
    chosen = set(experiments)
    return [spec for name, spec in EXPERIMENTS.items() if name in chosen]


@dataclass
class RunAllResult(ResultBundle):
    """A ``run_all`` outcome: the result bundle plus its run identity.

    ``shard`` is ``None`` for a whole run or the ``(index, count)`` this
    run computed; :meth:`manifest` summarises the run machine-readably and
    :meth:`save_all` (inherited) plus :meth:`save_manifest` lay a run
    directory out as ``<experiment>.json`` files next to a
    ``manifest.json`` — the artifact layout :func:`merge_run` and the CI
    fan-in job consume.
    """

    shard: Optional[Tuple[int, int]] = None
    backend: str = "direct"
    reduced: bool = True

    def manifest(self) -> Dict[str, object]:
        from .. import __version__

        return {
            "repro": __version__,
            "reduced": self.reduced,
            "backend": self.backend,
            "shard": list(self.shard) if self.shard is not None else None,
            "experiments": {
                name: {
                    "rows": len(result.rows),
                    "fronts": sorted(result.fronts),
                    "sharded": result.shard is not None,
                }
                for name, result in sorted(self.results.items())
            },
        }

    def save_manifest(self, directory: Union[str, Path]) -> Path:
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        path = base / "manifest.json"
        path.write_text(json.dumps(self.manifest(), indent=2) + "\n")
        return path


def run_all(output_dir: Optional[Union[str, Path]] = None, reduced: bool = True,
            include_ablations: bool = True, workers: int = 1,
            backend: BackendLike = "direct",
            store: StoreLike = None,
            shard: ShardLike = None,
            experiments: Optional[Sequence[str]] = None) -> RunAllResult:
    """Regenerate the paper's tables and figures (whole suite or one shard).

    ``reduced=True`` (default) runs the laptop-scale configuration: thinner
    operator sweeps, smaller images and point clouds.  ``reduced=False`` runs
    the full sweeps, which takes substantially longer but follows the paper's
    configuration as closely as the substituted substrate allows.

    ``workers`` fans each sweep's functional simulations out over a process
    pool (capped at the CPU count, ``REPRO_WORKERS`` overrides); results are
    identical to the serial run.  ``backend`` selects the execution backend
    of every application-level sweep (``"direct"`` or ``"lut"``); records
    are bit-identical across backends.  ``store`` (a
    :class:`~repro.core.store.ResultStore` or directory path) checkpoints
    every completed sweep point, so a killed run resumes where it stopped.

    ``shard`` (``"i/n"`` or ``(i, n)``) runs only the ``i``-th deterministic
    slice of every experiment's design points; :func:`merge_run` folds the
    ``n`` partial outputs back into a whole that is bit-identical to an
    unsharded run.  Experiments whose candidate schedule is adaptive
    (``shardable`` false in the registry, e.g. the heterogeneous search)
    have no index partition: shard 0 runs them whole and the other shards
    skip them, which the merge folds back losslessly.  ``experiments``
    selects a subset of the suite by registry name (see
    :func:`experiment_names`).
    """
    shard_pair = parse_shard(shard)
    store = ResultStore.of(store)
    config = RunConfig(reduced=reduced, workers=resolve_workers(workers),
                       backend=backend, store=store, shard=shard_pair,
                       energy_model=DatapathEnergyModel(store=store))
    bundle = RunAllResult(shard=shard_pair, backend=backend_spec(backend),
                          reduced=reduced)
    for spec in select_experiments(experiments, include_ablations):
        if shard_pair is not None and not spec.shardable:
            # Adaptive experiments have no index partition; shard 0 runs
            # them whole (unsharded config) and the other shards skip them.
            if shard_pair[0] != 0:
                continue
            bundle.add(spec.build(replace(config, shard=None)))
            continue
        bundle.add(spec.build(config))
    if output_dir is not None:
        bundle.save_all(output_dir)
        bundle.save_manifest(output_dir)
    return bundle


def compare_to_golden(merged: ResultBundle, golden_dir: Union[str, Path]
                      ) -> List[Dict[str, object]]:
    """Row/front divergences of a merged bundle against a golden run.

    The bit-identity gate shared by ``repro merge --golden`` and
    ``repro fleet harvest --golden``: every experiment present on either
    side is compared row by row and front by front; an empty list means
    the merged result is bit-identical to the golden (unsharded) run
    directory.
    """
    golden = ResultBundle.load_dir(golden_dir)
    mismatches: List[Dict[str, object]] = []
    for name in sorted(set(golden.results) | set(merged.results)):
        if name not in golden.results or name not in merged.results:
            mismatches.append({"experiment": name,
                               "kind": "missing",
                               "present_in": "merged" if name in merged.results
                               else "golden"})
            continue
        golden_result = golden.get(name)
        merged_result = merged.get(name)
        if merged_result.rows != golden_result.rows:
            differing = [index for index, (a, b)
                         in enumerate(zip(merged_result.rows,
                                          golden_result.rows)) if a != b]
            mismatches.append({
                "experiment": name, "kind": "rows",
                "merged_rows": len(merged_result.rows),
                "golden_rows": len(golden_result.rows),
                "first_differing_indices": differing[:8],
            })
        merged_fronts = {key: front.to_dict()
                         for key, front in merged_result.fronts.items()}
        golden_fronts = {key: front.to_dict()
                         for key, front in golden_result.fronts.items()}
        if merged_fronts != golden_fronts:
            mismatches.append({"experiment": name, "kind": "fronts",
                               "merged": sorted(merged_fronts),
                               "golden": sorted(golden_fronts)})
    return mismatches


def merge_run(inputs: Sequence[Union[str, Path, ResultBundle]],
              output_dir: Optional[Union[str, Path]] = None,
              store: StoreLike = None) -> RunAllResult:
    """Fold shard run outputs back into one whole-suite result.

    ``inputs`` are shard output directories (as written by
    ``run_all(output_dir=...)`` / ``python -m repro run --out``) or
    already-loaded bundles.  Every experiment's shard rows are reassembled
    at their global sweep indices and its Pareto fronts are recomputed over
    the merged rows — the result is bit-identical to an unsharded run, and
    the disjoint-cover property is validated (a missing or duplicated shard
    fails loudly).

    ``store`` additionally folds any ``.repro_store`` directories found
    inside the input directories into one persistent store, so a later
    resumed run sees the union of every shard's checkpoints.
    """
    bundles: List[ResultBundle] = []
    directories: List[Path] = []
    for item in inputs:
        if isinstance(item, ResultBundle):
            bundles.append(item)
            continue
        path = Path(item)
        directories.append(path)
        bundles.append(ResultBundle.load_dir(path))
    if not any(bundle.results for bundle in bundles):
        raise ValueError("nothing to merge: no experiment results found in "
                         f"{[str(d) for d in directories] or 'the inputs'}")
    merged_store = ResultStore.of(store)
    if merged_store is not None:
        for directory in directories:
            for candidate in sorted(directory.glob("**/.repro_store")):
                merged_store.absorb(ResultStore(candidate))
    merged = ResultBundle.merge(bundles)
    result = RunAllResult(results=merged.results, shard=None)
    # Propagate the run identity from the first shard manifest, if any.
    for directory in directories:
        manifest_path = directory / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(manifest, dict):
            result.backend = str(manifest.get("backend", result.backend))
            result.reduced = bool(manifest.get("reduced", result.reduced))
            break
    if output_dir is not None:
        result.save_all(output_dir)
        result.save_manifest(output_dir)
    return result
