"""Run every reproduced experiment and collect the results.

``run_all`` regenerates each table and figure of the paper's evaluation
section (plus the extension ablations and the joint design-space frontiers)
and returns a :class:`~repro.core.results.ResultBundle`; with an output
directory it also writes one JSON file per experiment.  The ``reduced`` flag
trades sweep density and workload size for runtime and is what the benchmark
harness and the continuous tests use.

Every experiment is a declarative design space over the
:mod:`repro.core.designspace` engine, so ``workers > 1`` parallelises each
sweep over a process pool while the single shared
:class:`~repro.core.datapath.DatapathEnergyModel` keeps hardware
characterisation cached across all of them.  ``store`` points at a
persistent :class:`~repro.core.store.ResultStore` directory: hardware
characterisations and sweep records found there are served from disk (so a
re-run across sessions — or across CI steps, via ``actions/cache`` — skips
re-synthesis and re-simulation), and fresh records are written back.
"""
from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.results import ResultBundle
from ..core.store import ResultStore, StoreLike
from .ablations import multiplier_compensation_ablation, rounding_mode_ablation
from .adders_study import adder_error_cost_study
from .fft_study import fft_adder_sweep, fft_joint_frontier, fft_multiplier_comparison
from .hevc_study import hevc_adder_table, hevc_multiplier_table
from .jpeg_study import jpeg_adder_sweep, jpeg_joint_frontier
from .kmeans_study import kmeans_adder_table, kmeans_multiplier_table
from .multipliers_study import multiplier_comparison


def run_all(output_dir: Optional[Union[str, Path]] = None, reduced: bool = True,
            include_ablations: bool = True, workers: int = 1,
            backend: BackendLike = "direct",
            store: StoreLike = None) -> ResultBundle:
    """Regenerate every table and figure of the paper.

    ``reduced=True`` (default) runs the laptop-scale configuration: thinner
    operator sweeps, smaller images and point clouds.  ``reduced=False`` runs
    the full sweeps, which takes substantially longer but follows the paper's
    configuration as closely as the substituted substrate allows.
    ``workers`` fans each sweep's functional simulations out over a process
    pool; results are identical to the serial run.  ``backend`` selects the
    execution backend of every application-level sweep (``"direct"`` or
    ``"lut"``); records are bit-identical across backends.  ``store`` (a
    :class:`~repro.core.store.ResultStore` or directory path) persists
    hardware characterisations and sweep records across sessions.
    """
    bundle = ResultBundle()
    store = ResultStore.of(store)
    energy_model = DatapathEnergyModel(store=store)

    error_samples = 30_000 if reduced else 200_000
    image_size = 96 if reduced else 256
    kmeans_runs = 2 if reduced else 5
    kmeans_points = 1500 if reduced else 5000

    bundle.add(adder_error_cost_study(error_samples=error_samples,
                                      reduced=reduced, workers=workers,
                                      store=store))
    bundle.add(multiplier_comparison(error_samples=error_samples,
                                     workers=workers, store=store))
    bundle.add(fft_adder_sweep(reduced=reduced, energy_model=energy_model,
                               frames=4 if reduced else 16, workers=workers,
                               backend=backend, store=store))
    bundle.add(fft_multiplier_comparison(energy_model=energy_model,
                                         frames=4 if reduced else 16,
                                         workers=workers, backend=backend,
                                         store=store))
    bundle.add(fft_joint_frontier(reduced=reduced, energy_model=energy_model,
                                  frames=4 if reduced else 16,
                                  workers=workers, backend=backend,
                                  store=store))
    bundle.add(jpeg_adder_sweep(image_size=image_size, reduced=reduced,
                                energy_model=energy_model, workers=workers,
                                backend=backend, store=store))
    bundle.add(jpeg_joint_frontier(image_size=image_size, reduced=reduced,
                                   energy_model=energy_model, workers=workers,
                                   backend=backend, store=store))
    bundle.add(hevc_adder_table(image_size=image_size, energy_model=energy_model,
                                workers=workers, backend=backend, store=store))
    bundle.add(hevc_multiplier_table(image_size=image_size,
                                     energy_model=energy_model,
                                     workers=workers, backend=backend,
                                     store=store))
    bundle.add(kmeans_adder_table(runs=kmeans_runs, points_per_run=kmeans_points,
                                  energy_model=energy_model, workers=workers,
                                  backend=backend, store=store))
    bundle.add(kmeans_multiplier_table(runs=kmeans_runs,
                                       points_per_run=kmeans_points,
                                       energy_model=energy_model,
                                       workers=workers, backend=backend,
                                       store=store))
    if include_ablations:
        bundle.add(multiplier_compensation_ablation(error_samples=error_samples,
                                                    workers=workers,
                                                    store=store))
        bundle.add(rounding_mode_ablation(error_samples=error_samples,
                                          workers=workers, store=store))

    if output_dir is not None:
        bundle.save_all(output_dir)
    return bundle
