"""Figure 6: JPEG encoding quality (MSSIM) versus DCT energy.

The 8x8 DCT inside the JPEG encoder runs with each adder configuration; the
quality axis is the MSSIM between the image encoded with the exact
fixed-point DCT and the one encoded with the operator under test, the energy
axis is the per-operation energy of the DCT datapath (Equation 1 applied to
the DCT's additions and multiplications).

Implemented as a thin wrapper over the :class:`~repro.core.study.Study`
pipeline with the ``"jpeg"`` workload plugin.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..apps.images import synthetic_image
from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_truncated_adders,
    unique_by_name,
)
from ..core.results import ExperimentResult
from ..core.study import Study, SweepOutcome
from ..operators.base import AdderOperator


def default_jpeg_adder_sweep(input_width: int = 16,
                             reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 6."""
    if reduced:
        adders: List[AdderOperator] = []
        adders.extend(sweep_truncated_adders(input_width, [15, 13, 11, 9]))
        adders.extend(sweep_rounded_adders(input_width, [15, 13, 11, 9]))
        adders.extend(sweep_aca_adders(input_width, [8, 14]))
        adders.extend(sweep_etaiv_adders(input_width, [4, 8]))
        adders.extend(sweep_rcaapx_adders(input_width, [4, 8], fa_types=(1, 3)))
        return unique_by_name(adders)
    adders = []
    adders.extend(sweep_truncated_adders(input_width))
    adders.extend(sweep_rounded_adders(input_width))
    adders.extend(sweep_aca_adders(input_width))
    adders.extend(sweep_etaiv_adders(input_width))
    adders.extend(sweep_rcaapx_adders(input_width, range(2, input_width, 2)))
    return unique_by_name(adders)


def jpeg_adder_sweep(image: Optional[np.ndarray] = None, quality: int = 90,
                     input_width: int = 16,
                     adders: Optional[Sequence[AdderOperator]] = None,
                     image_size: int = 128, reduced: bool = False,
                     energy_model: Optional[DatapathEnergyModel] = None,
                     workers: int = 1,
                     backend: BackendLike = "direct") -> ExperimentResult:
    """Regenerate Figure 6 (DCT energy versus JPEG MSSIM, adders swept)."""
    if image is None:
        image = synthetic_image(image_size)
    if adders is None:
        adders = default_jpeg_adder_sweep(input_width, reduced=reduced)

    def row(point: SweepOutcome) -> dict:
        macs = max(point.counts.additions, 1)
        return dict(
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            mssim=point.metrics["mssim"],
            dct_energy_pj=point.energy.total_energy_pj,
            energy_per_mac_pj=point.energy.total_energy_pj / macs,
        )

    return (Study()
            .workload("jpeg", quality=quality, image=image)
            .adders(adders)
            .backend(backend)
            .energy(energy_model)
            .experiment(
                "fig6_jpeg",
                description=("JPEG encoding (quality 90): DCT datapath energy "
                             "versus MSSIM with the adders swapped (Figure 6 "
                             "of the paper)"),
                columns=["adder", "multiplier", "mssim", "dct_energy_pj",
                         "energy_per_mac_pj"],
                metadata={"quality": quality, "image_pixels": int(image.size)})
            .rows(row)
            .run(workers=workers))
