"""Figure 6: JPEG encoding quality (MSSIM) versus DCT energy.

The 8x8 DCT inside the JPEG encoder runs with each adder configuration; the
quality axis is the MSSIM between the image encoded with the exact
fixed-point DCT and the one encoded with the operator under test, the energy
axis is the per-operation energy of the DCT datapath (Equation 1 applied to
the DCT's additions and multiplications).

The sweep is expressed as a declarative design space over
:mod:`repro.core.designspace` — sized and approximate adder axes — and
:func:`jpeg_joint_frontier` extracts the joint MSSIM-versus-energy Pareto
frontier (the paper's "hidden cost" comparison on the JPEG workload).
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..apps.images import synthetic_image
from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.designspace import DesignSpace, adder_axis, joint_adder_space
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
)
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.base import AdderOperator


def jpeg_design_space(input_width: int = 16,
                      reduced: bool = False) -> DesignSpace:
    """The Figure 6 design space: sized and approximate adder axes joined.

    The reduced configuration keeps the representative subset the quick
    benchmark harness always used (slightly thinner than the FFT study's).
    """
    if not reduced:
        return joint_adder_space(input_width)
    approximate = list(sweep_aca_adders(input_width, [8, 14])) \
        + list(sweep_etaiv_adders(input_width, [4, 8])) \
        + list(sweep_rcaapx_adders(input_width, [4, 8], fa_types=(1, 3)))
    return joint_adder_space(input_width, sized_widths=[15, 13, 11, 9],
                             approximate=approximate)


def default_jpeg_adder_sweep(input_width: int = 16,
                             reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 6 (the design space's adder slots)."""
    return [point.adder for point in jpeg_design_space(input_width, reduced)]


def jpeg_adder_sweep(image: Optional[np.ndarray] = None, quality: int = 90,
                     input_width: int = 16,
                     adders: Optional[Sequence[AdderOperator]] = None,
                     image_size: int = 128, reduced: bool = False,
                     energy_model: Optional[DatapathEnergyModel] = None,
                     workers: int = 1,
                     backend: BackendLike = "direct",
                     store: StoreLike = None,
                     shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Figure 6 (DCT energy versus JPEG MSSIM, adders swept)."""
    if image is None:
        image = synthetic_image(image_size)
    if adders is None:
        space = jpeg_design_space(input_width, reduced=reduced)
    else:
        space = adder_axis(adders)

    def row(point: SweepOutcome) -> dict:
        macs = max(point.counts.additions, 1)
        return dict(
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            mssim=point.metrics["mssim"],
            dct_energy_pj=point.energy.total_energy_pj,
            energy_per_mac_pj=point.energy.total_energy_pj / macs,
        )

    return (Study()
            .workload("jpeg", quality=quality, image=image,
                      data_width=input_width)
            .design_space(space)
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "fig6_jpeg",
                description=("JPEG encoding (quality 90): DCT datapath energy "
                             "versus MSSIM with the adders swapped (Figure 6 "
                             "of the paper)"),
                columns=["adder", "multiplier", "mssim", "dct_energy_pj",
                         "energy_per_mac_pj"],
                metadata={"quality": quality, "image_pixels": int(image.size)})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def jpeg_joint_frontier(image: Optional[np.ndarray] = None, quality: int = 90,
                        input_width: int = 16, image_size: int = 128,
                        reduced: bool = False,
                        energy_model: Optional[DatapathEnergyModel] = None,
                        workers: int = 1,
                        backend: BackendLike = "direct",
                        store: StoreLike = None,
                        shard: ShardLike = None) -> ExperimentResult:
    """The paper's headline comparison on JPEG: a joint Pareto frontier.

    Mirrors :func:`repro.experiments.fft_study.fft_joint_frontier` on the
    JPEG workload — both populations (approximate adders, word-length-sized
    exact datapaths with sizing-propagated multiplier energy) compete on
    one MSSIM-versus-energy front, attached under
    ``fronts["mssim_vs_total_energy_pj"]``.
    """
    if image is None:
        image = synthetic_image(image_size)
    space = jpeg_design_space(input_width, reduced=reduced)

    def row(point: SweepOutcome) -> dict:
        info = point.point.describe()
        return dict(
            design=info["design"],
            axis=info["axis"],
            word_length=info["word_length"],
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            mssim=point.metrics["mssim"],
            adder_energy_pj=point.energy.adder_energy_pj,
            multiplier_energy_pj=point.energy.multiplier_energy_pj,
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("jpeg", quality=quality, image=image,
                      data_width=input_width)
            .design_space(space)
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .pareto(quality="mssim", cost="total_energy_pj")
            .experiment(
                "jpeg_joint_frontier",
                description=("JPEG joint design space: approximate operators "
                             "versus word-length-sized exact datapaths on one "
                             "MSSIM-versus-energy frontier (the paper's "
                             "headline comparison)"),
                columns=["design", "axis", "word_length", "adder",
                         "multiplier", "mssim", "adder_energy_pj",
                         "multiplier_energy_pj", "total_energy_pj"],
                metadata={"quality": quality, "image_pixels": int(image.size),
                          "design_points": len(space)})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
