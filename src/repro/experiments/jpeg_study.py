"""Figure 6: JPEG encoding quality (MSSIM) versus DCT energy.

The 8x8 DCT inside the JPEG encoder runs with each adder configuration; the
quality axis is the MSSIM between the image encoded with the exact
fixed-point DCT and the one encoded with the operator under test, the energy
axis is the per-operation energy of the DCT datapath (Equation 1 applied to
the DCT's additions and multiplications).
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..apps.images import synthetic_image
from ..apps.jpeg import JpegEncoder
from ..core.datapath import DatapathEnergyModel, minimal_multiplier_for
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_truncated_adders,
)
from ..core.results import ExperimentResult
from ..metrics.image import mssim
from ..operators.base import AdderOperator


def default_jpeg_adder_sweep(input_width: int = 16,
                             reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 6."""
    if reduced:
        adders: List[AdderOperator] = []
        adders.extend(sweep_truncated_adders(input_width, [15, 13, 11, 9]))
        adders.extend(sweep_rounded_adders(input_width, [15, 13, 11, 9]))
        adders.extend(sweep_aca_adders(input_width, [8, 14]))
        adders.extend(sweep_etaiv_adders(input_width, [4, 8]))
        adders.extend(sweep_rcaapx_adders(input_width, [4, 8], fa_types=(1, 3)))
        return adders
    adders = []
    adders.extend(sweep_truncated_adders(input_width))
    adders.extend(sweep_rounded_adders(input_width))
    adders.extend(sweep_aca_adders(input_width))
    adders.extend(sweep_etaiv_adders(input_width))
    adders.extend(sweep_rcaapx_adders(input_width, range(2, input_width, 2)))
    return adders


def jpeg_adder_sweep(image: Optional[np.ndarray] = None, quality: int = 90,
                     input_width: int = 16,
                     adders: Optional[Sequence[AdderOperator]] = None,
                     image_size: int = 128, reduced: bool = False,
                     energy_model: Optional[DatapathEnergyModel] = None
                     ) -> ExperimentResult:
    """Regenerate Figure 6 (DCT energy versus JPEG MSSIM, adders swept)."""
    if image is None:
        image = synthetic_image(image_size)
    if adders is None:
        adders = default_jpeg_adder_sweep(input_width, reduced=reduced)
    if energy_model is None:
        energy_model = DatapathEnergyModel()

    reference = JpegEncoder(quality=quality).encode_decode(image)

    result = ExperimentResult(
        experiment="fig6_jpeg",
        description=("JPEG encoding (quality 90): DCT datapath energy versus "
                     "MSSIM with the adders swapped (Figure 6 of the paper)"),
        columns=["adder", "multiplier", "mssim", "dct_energy_pj",
                 "energy_per_mac_pj"],
        metadata={"quality": quality, "image_pixels": int(image.size)},
    )
    for adder in adders:
        multiplier = minimal_multiplier_for(adder)
        encoder = JpegEncoder(quality=quality, adder=adder)
        outcome = encoder.encode_decode(image)
        score = mssim(reference.reconstructed, outcome.reconstructed)
        energy = energy_model.application_energy_pj(outcome.counts, adder, multiplier)
        macs = max(outcome.counts.additions, 1)
        result.add_row(
            adder=adder.name,
            multiplier=multiplier.name,
            mssim=score,
            dct_energy_pj=energy.total_energy_pj,
            energy_per_mac_pj=energy.total_energy_pj / macs,
        )
    return result
