"""Table I: direct comparison of the 16-bit fixed-width multipliers.

``MULt(16,16)``, ``AAM(16)`` and ``ABM(16)`` are characterised under the same
conditions (random stimulus, 100 MHz) and the table reports power, delay,
PDP, area, MSE (dB) and BER — the exact columns of Table I.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.characterization import Apxperf
from ..core.exploration import default_multiplier_set
from ..core.results import ExperimentResult
from ..operators.base import Operator


def multiplier_comparison(input_width: int = 16,
                          operators: Optional[Sequence[Operator]] = None,
                          error_samples: int = 50_000,
                          hardware_samples: int = 800) -> ExperimentResult:
    """Regenerate Table I."""
    if operators is None:
        operators = default_multiplier_set(input_width)
    harness = Apxperf(error_samples=error_samples,
                      hardware_samples=hardware_samples)
    result = ExperimentResult(
        experiment="table1_multipliers",
        description=("16-bit fixed-width multipliers: power, delay, PDP, area, "
                     "MSE and BER (Table I of the paper)"),
        columns=["operator", "power_mw", "delay_ns", "pdp_pj", "area_um2",
                 "mse_db", "ber_percent"],
        metadata={"input_width": input_width, "error_samples": error_samples},
    )
    for operator in operators:
        record = harness.characterize(operator)
        result.add_row(
            operator=record.operator,
            power_mw=record.power_mw,
            delay_ns=record.delay_ns,
            pdp_pj=record.pdp_pj,
            area_um2=record.area_um2,
            mse_db=record.mse_db,
            ber_percent=record.ber * 100.0,
        )
    return result
