"""Table I: direct comparison of the 16-bit fixed-width multipliers.

``MULt(16,16)``, ``AAM(16)`` and ``ABM(16)`` are characterised under the same
conditions (random stimulus, 100 MHz) and the table reports power, delay,
PDP, area, MSE (dB) and BER — the exact columns of Table I.

Implemented as a declarative design space (bare-operator axis) over the
:mod:`repro.core.designspace` engine with the ``"characterization"``
workload plugin.
"""
from __future__ import annotations

from typing import Optional, Sequence

from ..core.designspace import operator_axis
from ..core.exploration import default_multiplier_set
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.base import Operator


def multiplier_comparison(input_width: int = 16,
                          operators: Optional[Sequence[Operator]] = None,
                          error_samples: int = 50_000,
                          hardware_samples: int = 800,
                          workers: int = 1,
                          store: StoreLike = None,
                          shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table I."""
    if operators is None:
        operators = default_multiplier_set(input_width)

    def row(point: SweepOutcome) -> dict:
        return dict(
            operator=point.swept.name,
            power_mw=point.metrics["power_mw"],
            delay_ns=point.metrics["delay_ns"],
            pdp_pj=point.metrics["pdp_pj"],
            area_um2=point.metrics["area_um2"],
            mse_db=point.metrics["mse_db"],
            ber_percent=point.metrics["ber"] * 100.0,
        )

    return (Study()
            .workload("characterization", error_samples=error_samples,
                      hardware_samples=hardware_samples)
            .design_space(operator_axis(operators))
            .store(store)
            .experiment(
                "table1_multipliers",
                description=("16-bit fixed-width multipliers: power, delay, "
                             "PDP, area, MSE and BER (Table I of the paper)"),
                columns=["operator", "power_mw", "delay_ns", "pdp_pj",
                         "area_um2", "mse_db", "ber_percent"],
                metadata={"input_width": input_width,
                          "error_samples": error_samples})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
