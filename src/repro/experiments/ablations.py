"""Ablation studies on the design choices DESIGN.md calls out.

These go beyond the paper's own experiments:

* the contribution of the AAM / ABM compensation circuits (and of ABM's
  approximate redundant-to-binary conversion) to their error behaviour;
* the effect of the data-sizing rounding mode (truncation vs round-half-up
  vs round-to-nearest-even) on accuracy at iso bit-width.
"""
from __future__ import annotations

from typing import Optional, Sequence

from ..core.characterization import Apxperf
from ..core.results import ExperimentResult
from ..operators.adders import (
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from ..operators.multipliers import AAMMultiplier, ABMMultiplier


def multiplier_compensation_ablation(input_width: int = 16,
                                     error_samples: int = 50_000,
                                     hardware_samples: int = 600
                                     ) -> ExperimentResult:
    """AAM / ABM with and without their compensation and exact conversion."""
    harness = Apxperf(error_samples=error_samples,
                      hardware_samples=hardware_samples)
    variants = [
        ("AAM compensated", AAMMultiplier(input_width, compensation=True)),
        ("AAM pruned only", AAMMultiplier(input_width, compensation=False)),
        ("ABM compensated", ABMMultiplier(input_width, compensation=True)),
        ("ABM pruned only", ABMMultiplier(input_width, compensation=False)),
        ("ABM exact conversion", ABMMultiplier(input_width, carry_window=None)),
    ]
    result = ExperimentResult(
        experiment="ablation_compensation",
        description=("Contribution of the compensation circuits (and of ABM's "
                     "approximate final conversion) to the multiplier accuracy"),
        columns=["variant", "operator", "mse_db", "ber", "bias", "pdp_pj"],
        metadata={"input_width": input_width},
    )
    for label, operator in variants:
        record = harness.characterize(operator)
        result.add_row(
            variant=label,
            operator=record.operator,
            mse_db=record.mse_db,
            ber=record.ber,
            bias=record.error.bias,
            pdp_pj=record.pdp_pj,
        )
    return result


def rounding_mode_ablation(input_width: int = 16,
                           output_widths: Optional[Sequence[int]] = None,
                           error_samples: int = 50_000,
                           hardware_samples: int = 600) -> ExperimentResult:
    """Truncation vs rounding vs round-to-nearest-even for data sizing."""
    if output_widths is None:
        output_widths = (14, 12, 10, 8, 6)
    harness = Apxperf(error_samples=error_samples,
                      hardware_samples=hardware_samples)
    result = ExperimentResult(
        experiment="ablation_rounding_mode",
        description=("Effect of the LSB-elimination rounding mode on the "
                     "data-sized adder accuracy at iso bit-width"),
        columns=["operator", "mode", "output_width", "mse_db", "bias", "pdp_pj"],
        metadata={"input_width": input_width},
    )
    for width in output_widths:
        for mode, cls in (("truncate", TruncatedAdder), ("round", RoundedAdder),
                          ("round-to-even", RoundToNearestEvenAdder)):
            record = harness.characterize(cls(input_width, width))
            result.add_row(
                operator=record.operator,
                mode=mode,
                output_width=width,
                mse_db=record.mse_db,
                bias=record.error.bias,
                pdp_pj=record.pdp_pj,
            )
    return result
