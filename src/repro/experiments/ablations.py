"""Ablation studies on the design choices DESIGN.md calls out.

These go beyond the paper's own experiments:

* the contribution of the AAM / ABM compensation circuits (and of ABM's
  approximate redundant-to-binary conversion) to their error behaviour;
* the effect of the data-sizing rounding mode (truncation vs round-half-up
  vs round-to-nearest-even) on accuracy at iso bit-width.

Both ablations run as declarative design spaces (bare-operator axis) over
the :mod:`repro.core.designspace` engine with the ``"characterization"``
workload plugin.
"""
from __future__ import annotations

from typing import Optional, Sequence

from ..core.designspace import operator_axis
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.adders import (
    RoundToNearestEvenAdder,
    RoundedAdder,
    TruncatedAdder,
)
from ..operators.multipliers import AAMMultiplier, ABMMultiplier


def multiplier_compensation_ablation(input_width: int = 16,
                                     error_samples: int = 50_000,
                                     hardware_samples: int = 600,
                                     workers: int = 1,
                                     store: StoreLike = None,
                                     shard: ShardLike = None) -> ExperimentResult:
    """AAM / ABM with and without their compensation and exact conversion."""
    variants = [
        ("AAM compensated", AAMMultiplier(input_width, compensation=True)),
        ("AAM pruned only", AAMMultiplier(input_width, compensation=False)),
        ("ABM compensated", ABMMultiplier(input_width, compensation=True)),
        ("ABM pruned only", ABMMultiplier(input_width, compensation=False)),
        ("ABM exact conversion", ABMMultiplier(input_width, carry_window=None)),
    ]
    labels = [label for label, _ in variants]

    def row(point: SweepOutcome) -> dict:
        return dict(
            variant=labels[point.index],
            operator=point.swept.name,
            mse_db=point.metrics["mse_db"],
            ber=point.metrics["ber"],
            bias=point.metrics["bias"],
            pdp_pj=point.metrics["pdp_pj"],
        )

    return (Study()
            .workload("characterization", error_samples=error_samples,
                      hardware_samples=hardware_samples)
            .design_space(operator_axis([operator for _, operator in variants]))
            .store(store)
            .experiment(
                "ablation_compensation",
                description=("Contribution of the compensation circuits (and "
                             "of ABM's approximate final conversion) to the "
                             "multiplier accuracy"),
                columns=["variant", "operator", "mse_db", "ber", "bias",
                         "pdp_pj"],
                metadata={"input_width": input_width})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def rounding_mode_ablation(input_width: int = 16,
                           output_widths: Optional[Sequence[int]] = None,
                           error_samples: int = 50_000,
                           hardware_samples: int = 600,
                           workers: int = 1,
                           store: StoreLike = None,
                           shard: ShardLike = None) -> ExperimentResult:
    """Truncation vs rounding vs round-to-nearest-even for data sizing."""
    if output_widths is None:
        output_widths = (14, 12, 10, 8, 6)
    modes = (("truncate", TruncatedAdder), ("round", RoundedAdder),
             ("round-to-even", RoundToNearestEvenAdder))
    points = [(mode, width, cls(input_width, width))
              for width in output_widths for mode, cls in modes]

    def row(point: SweepOutcome) -> dict:
        mode, width, _ = points[point.index]
        return dict(
            operator=point.swept.name,
            mode=mode,
            output_width=width,
            mse_db=point.metrics["mse_db"],
            bias=point.metrics["bias"],
            pdp_pj=point.metrics["pdp_pj"],
        )

    return (Study()
            .workload("characterization", error_samples=error_samples,
                      hardware_samples=hardware_samples)
            .design_space(operator_axis([operator for _, _, operator in points]))
            .store(store)
            .experiment(
                "ablation_rounding_mode",
                description=("Effect of the LSB-elimination rounding mode on "
                             "the data-sized adder accuracy at iso bit-width"),
                columns=["operator", "mode", "output_width", "mse_db", "bias",
                         "pdp_pj"],
                metadata={"input_width": input_width})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
