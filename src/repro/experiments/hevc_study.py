"""Tables III and IV: HEVC motion-compensation filter accuracy and energy.

Table III swaps the *adders* of the MC interpolation filter (the multipliers
stay exact but are sized to the adder's emitted data width); Table IV swaps
the fixed-width *multipliers* with exact 16-bit adders.  The quality metric
is the MSSIM against the exact filter output; the energy columns report the
per-operation adder energy, the per-operation multiplier energy and the total
datapath energy of the run.

Implemented as declarative design spaces over the
:mod:`repro.core.designspace` engine with the ``"hevc"`` workload plugin;
Table III charges multiplications at the constant-coefficient rate because
the filter taps are small constants.
"""
from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..apps.images import synthetic_image
from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.designspace import DesignSpace, adder_axis, multiplier_point
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.adders import (
    ACAAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    TruncatedAdder,
)
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier

#: Adder configurations of Table III (all reach an MSSIM close to 0.99).
TABLE3_ADDERS = (
    TruncatedAdder(16, 10),
    ACAAdder(16, 12),
    ETAIVAdder(16, 4),
    RCAApxAdder(16, 6, 3),
)

#: Multiplier configurations of Table IV.
TABLE4_MULTIPLIERS = (
    TruncatedMultiplier(16, 16),
    AAMMultiplier(16),
    ABMMultiplier(16),
)


def hevc_adder_space(adders: Sequence[AdderOperator] = TABLE3_ADDERS
                     ) -> DesignSpace:
    """Table III as a design space (sizing-propagated multiplier pairing)."""
    return adder_axis(adders)


def hevc_multiplier_space(
        multipliers: Sequence[MultiplierOperator] = TABLE4_MULTIPLIERS
) -> DesignSpace:
    """Table IV as a design space.

    Each multiplier is paired with the exact adder of its *own* operand
    width (the paper's setup, and what the pre-design-space sweep charged).
    """
    return DesignSpace(
        multiplier_point(multiplier, adder=ExactAdder(multiplier.input_width))
        for multiplier in multipliers)


def hevc_adder_table(image: Optional[np.ndarray] = None, image_size: int = 128,
                     adders: Sequence[AdderOperator] = TABLE3_ADDERS,
                     energy_model: Optional[DatapathEnergyModel] = None,
                     workers: int = 1,
                     backend: BackendLike = "direct",
                     store: StoreLike = None,
                     shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table III (MC filter with approximate / data-sized adders)."""
    if image is None:
        image = synthetic_image(image_size)

    def row(point: SweepOutcome) -> dict:
        return dict(
            adder=point.adder.name,
            mssim_percent=point.metrics["mssim"] * 100.0,
            adder_energy_pj=point.energy_model.energy_per_addition_pj(point.adder),
            mult_energy_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier, constant_coefficient=True),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("hevc", image=image)
            .design_space(hevc_adder_space(adders))
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .constant_coefficient()
            .experiment(
                "table3_hevc_adders",
                description=("HEVC motion-compensation filter with 16-bit "
                             "adders swapped: MSSIM and energy (Table III of "
                             "the paper)"),
                columns=["adder", "mssim_percent", "adder_energy_pj",
                         "mult_energy_pj", "total_energy_pj"],
                metadata={"image_pixels": int(image.size)})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def hevc_multiplier_table(image: Optional[np.ndarray] = None, image_size: int = 128,
                          multipliers: Sequence[MultiplierOperator] = TABLE4_MULTIPLIERS,
                          energy_model: Optional[DatapathEnergyModel] = None,
                          workers: int = 1,
                          backend: BackendLike = "direct",
                          store: StoreLike = None,
                          shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table IV (MC filter with fixed-width multipliers swapped)."""
    if image is None:
        image = synthetic_image(image_size)

    def row(point: SweepOutcome) -> dict:
        return dict(
            multiplier=point.multiplier.name,
            mssim_percent=point.metrics["mssim"] * 100.0,
            mult_energy_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier),
            adder_energy_pj=point.energy_model.energy_per_addition_pj(point.adder),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("hevc", image=image)
            .design_space(hevc_multiplier_space(multipliers))
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "table4_hevc_multipliers",
                description=("HEVC motion-compensation filter with 16-bit "
                             "multipliers swapped: MSSIM and energy (Table IV "
                             "of the paper)"),
                columns=["multiplier", "mssim_percent", "mult_energy_pj",
                         "adder_energy_pj", "total_energy_pj"],
                metadata={"image_pixels": int(image.size)})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
