"""Tables V and VI: K-means clustering success rate and distance-datapath energy.

Table V swaps the *adders* of the distance computation, at two accuracy
levels (the ~99 % group and the ~86 % group of the paper); Table VI swaps the
fixed-width *multipliers*.  The success rate is measured against the exact
fixed-point run started from the same initial centroids, averaged over
several generated point clouds (the paper uses 5 sets of 5000 points around
10 random centres).

Implemented as declarative design spaces over the
:mod:`repro.core.designspace` engine with the ``"kmeans"`` workload plugin.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..apps.kmeans import PointCloud, generate_point_cloud
from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.designspace import DesignSpace, adder_axis, multiplier_point
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.adders import (
    ACAAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    TruncatedAdder,
)
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier

#: Adder configurations of Table V (high-accuracy group then low-accuracy group).
TABLE5_ADDERS = (
    TruncatedAdder(16, 11),
    ACAAdder(16, 12),
    ETAIVAdder(16, 4),
    RCAApxAdder(16, 6, 3),
    TruncatedAdder(16, 8),
    ACAAdder(16, 8),
    ETAIVAdder(16, 2),
    RCAApxAdder(16, 10, 1),
)

#: Multiplier configurations of Table VI.
TABLE6_MULTIPLIERS = (
    TruncatedMultiplier(16, 16),
    AAMMultiplier(16),
    ABMMultiplier(16),
    TruncatedMultiplier(16, 4),
)


def default_point_clouds(runs: int = 5, points_per_run: int = 5000,
                         clusters: int = 10) -> List[PointCloud]:
    """The paper's workload: five Gaussian point clouds of 5000 points."""
    return [generate_point_cloud(points_per_run, clusters, seed=seed)
            for seed in range(runs)]


def kmeans_adder_space(adders: Sequence[AdderOperator] = TABLE5_ADDERS
                       ) -> DesignSpace:
    """Table V as a design space (sizing-propagated multiplier pairing)."""
    return adder_axis(adders)


def kmeans_multiplier_space(
        multipliers: Sequence[MultiplierOperator] = TABLE6_MULTIPLIERS
) -> DesignSpace:
    """Table VI as a design space.

    Each multiplier is paired with the exact adder of its *own* operand
    width (the paper's setup, and what the pre-design-space sweep charged).
    """
    return DesignSpace(
        multiplier_point(multiplier, adder=ExactAdder(multiplier.input_width))
        for multiplier in multipliers)


def kmeans_adder_table(clouds: Optional[Sequence[PointCloud]] = None,
                       adders: Sequence[AdderOperator] = TABLE5_ADDERS,
                       runs: int = 3, points_per_run: int = 2000,
                       iterations: int = 8,
                       energy_model: Optional[DatapathEnergyModel] = None,
                       workers: int = 1,
                       backend: BackendLike = "direct",
                       store: StoreLike = None,
                       shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table V (distance computation with the adders swapped)."""
    if clouds is None:
        clouds = default_point_clouds(runs, points_per_run)

    def row(point: SweepOutcome) -> dict:
        return dict(
            adder=point.adder.name,
            success_rate_percent=point.metrics["success_rate"] * 100.0,
            adder_energy_pj=point.energy_model.energy_per_addition_pj(point.adder),
            mult_energy_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("kmeans", clouds=tuple(clouds), iterations=iterations)
            .design_space(kmeans_adder_space(adders))
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "table5_kmeans_adders",
                description=("K-means distance computation with 16-bit adders "
                             "swapped: success rate and energy (Table V of "
                             "the paper)"),
                columns=["adder", "success_rate_percent", "adder_energy_pj",
                         "mult_energy_pj", "total_energy_pj"],
                metadata={"runs": len(clouds),
                          "points_per_run": int(clouds[0].points.shape[0])})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def kmeans_multiplier_table(clouds: Optional[Sequence[PointCloud]] = None,
                            multipliers: Sequence[MultiplierOperator] = TABLE6_MULTIPLIERS,
                            runs: int = 3, points_per_run: int = 2000,
                            iterations: int = 8,
                            energy_model: Optional[DatapathEnergyModel] = None,
                            workers: int = 1,
                            backend: BackendLike = "direct",
                            store: StoreLike = None,
                            shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table VI (distance computation with the multipliers swapped)."""
    if clouds is None:
        clouds = default_point_clouds(runs, points_per_run)

    def row(point: SweepOutcome) -> dict:
        return dict(
            multiplier=point.multiplier.name,
            success_rate_percent=point.metrics["success_rate"] * 100.0,
            mult_energy_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier),
            adder_energy_pj=point.energy_model.energy_per_addition_pj(point.adder),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("kmeans", clouds=tuple(clouds), iterations=iterations)
            .design_space(kmeans_multiplier_space(multipliers))
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "table6_kmeans_multipliers",
                description=("K-means distance computation with 16-bit "
                             "multipliers swapped: success rate and energy "
                             "(Table VI of the paper)"),
                columns=["multiplier", "success_rate_percent", "mult_energy_pj",
                         "adder_energy_pj", "total_energy_pj"],
                metadata={"runs": len(clouds),
                          "points_per_run": int(clouds[0].points.shape[0])})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
