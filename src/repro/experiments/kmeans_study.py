"""Tables V and VI: K-means clustering success rate and distance-datapath energy.

Table V swaps the *adders* of the distance computation, at two accuracy
levels (the ~99 % group and the ~86 % group of the paper); Table VI swaps the
fixed-width *multipliers*.  The success rate is measured against the exact
fixed-point run started from the same initial centroids, averaged over
several generated point clouds (the paper uses 5 sets of 5000 points around
10 random centres).
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..apps.kmeans import PointCloud, generate_point_cloud, kmeans_success_rate
from ..core.datapath import DatapathEnergyModel, minimal_multiplier_for
from ..core.results import ExperimentResult
from ..operators.adders import (
    ACAAdder,
    ETAIVAdder,
    ExactAdder,
    RCAApxAdder,
    TruncatedAdder,
)
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier

#: Adder configurations of Table V (high-accuracy group then low-accuracy group).
TABLE5_ADDERS = (
    TruncatedAdder(16, 11),
    ACAAdder(16, 12),
    ETAIVAdder(16, 4),
    RCAApxAdder(16, 6, 3),
    TruncatedAdder(16, 8),
    ACAAdder(16, 8),
    ETAIVAdder(16, 2),
    RCAApxAdder(16, 10, 1),
)

#: Multiplier configurations of Table VI.
TABLE6_MULTIPLIERS = (
    TruncatedMultiplier(16, 16),
    AAMMultiplier(16),
    ABMMultiplier(16),
    TruncatedMultiplier(16, 4),
)


def default_point_clouds(runs: int = 5, points_per_run: int = 5000,
                         clusters: int = 10) -> List[PointCloud]:
    """The paper's workload: five Gaussian point clouds of 5000 points."""
    return [generate_point_cloud(points_per_run, clusters, seed=seed)
            for seed in range(runs)]


def _average_success(clouds: Sequence[PointCloud],
                     adder: Optional[AdderOperator] = None,
                     multiplier: Optional[MultiplierOperator] = None,
                     iterations: int = 8) -> Tuple[float, "np.ndarray"]:
    rates = []
    counts = None
    for cloud in clouds:
        rate, run_counts = kmeans_success_rate(cloud, adder=adder,
                                               multiplier=multiplier,
                                               iterations=iterations)
        rates.append(rate)
        counts = run_counts
    return float(np.mean(rates)), counts


def kmeans_adder_table(clouds: Optional[Sequence[PointCloud]] = None,
                       adders: Sequence[AdderOperator] = TABLE5_ADDERS,
                       runs: int = 3, points_per_run: int = 2000,
                       iterations: int = 8,
                       energy_model: Optional[DatapathEnergyModel] = None
                       ) -> ExperimentResult:
    """Regenerate Table V (distance computation with the adders swapped)."""
    if clouds is None:
        clouds = default_point_clouds(runs, points_per_run)
    if energy_model is None:
        energy_model = DatapathEnergyModel()

    result = ExperimentResult(
        experiment="table5_kmeans_adders",
        description=("K-means distance computation with 16-bit adders swapped: "
                     "success rate and energy (Table V of the paper)"),
        columns=["adder", "success_rate_percent", "adder_energy_pj",
                 "mult_energy_pj", "total_energy_pj"],
        metadata={"runs": len(clouds), "points_per_run": int(clouds[0].points.shape[0])},
    )
    for adder in adders:
        rate, counts = _average_success(clouds, adder=adder, iterations=iterations)
        multiplier = minimal_multiplier_for(adder)
        energy = energy_model.application_energy_pj(counts, adder, multiplier)
        result.add_row(
            adder=adder.name,
            success_rate_percent=rate * 100.0,
            adder_energy_pj=energy_model.energy_per_addition_pj(adder),
            mult_energy_pj=energy_model.energy_per_multiplication_pj(multiplier),
            total_energy_pj=energy.total_energy_pj,
        )
    return result


def kmeans_multiplier_table(clouds: Optional[Sequence[PointCloud]] = None,
                            multipliers: Sequence[MultiplierOperator] = TABLE6_MULTIPLIERS,
                            runs: int = 3, points_per_run: int = 2000,
                            iterations: int = 8,
                            energy_model: Optional[DatapathEnergyModel] = None
                            ) -> ExperimentResult:
    """Regenerate Table VI (distance computation with the multipliers swapped)."""
    if clouds is None:
        clouds = default_point_clouds(runs, points_per_run)
    if energy_model is None:
        energy_model = DatapathEnergyModel()
    adder = ExactAdder(16)

    result = ExperimentResult(
        experiment="table6_kmeans_multipliers",
        description=("K-means distance computation with 16-bit multipliers swapped: "
                     "success rate and energy (Table VI of the paper)"),
        columns=["multiplier", "success_rate_percent", "mult_energy_pj",
                 "adder_energy_pj", "total_energy_pj"],
        metadata={"runs": len(clouds), "points_per_run": int(clouds[0].points.shape[0])},
    )
    for multiplier in multipliers:
        rate, counts = _average_success(clouds, multiplier=multiplier,
                                        iterations=iterations)
        energy = energy_model.application_energy_pj(counts, adder, multiplier)
        result.add_row(
            multiplier=multiplier.name,
            success_rate_percent=rate * 100.0,
            mult_energy_pj=energy_model.energy_per_multiplication_pj(multiplier),
            adder_energy_pj=energy_model.energy_per_addition_pj(adder),
            total_energy_pj=energy.total_energy_pj,
        )
    return result
