"""Figures 3 and 4: operator-level comparison of the 16-bit adders.

For every adder configuration swept in the paper (truncated and rounded
fixed-point outputs from 15 down to 2 bits, every ACA prediction depth, every
ETAIV block size, every RCAApx configuration) this experiment reports the
error metrics (MSE in dB, BER) against the hardware metrics (power, delay,
PDP, area) — i.e. the data behind the eight scatter plots of Figures 3a-3d
and 4a-4d.

Implemented as a declarative design space (bare-operator axis) over the
:mod:`repro.core.designspace` engine with the ``"characterization"``
workload plugin.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.designspace import operator_axis
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_truncated_adders,
    unique_by_name,
)
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.base import Operator


def _group_name(operator: Operator) -> str:
    """Legend group of an operator, matching the paper's figure legends."""
    name = operator.name
    if name.startswith("ADDt"):
        return "Fxp add. - trunc."
    if name.startswith("ADDr"):
        return "Fxp add. - round."
    if name.startswith("ACA"):
        return "ACA"
    if name.startswith("ETAIV"):
        return "ETAIV"
    if name.startswith("ETAII"):
        return "ETAII"
    if name.startswith("RCAApx"):
        return "RCAApx"
    return "other"


def default_figure_sweep(input_width: int = 16,
                         reduced: bool = False) -> List[Operator]:
    """The adder configurations plotted in Figures 3 and 4.

    ``reduced=True`` keeps a representative subset (used by the quick
    benchmark harness); the full sweep mirrors the paper.
    """
    if reduced:
        operators: List[Operator] = []
        operators.extend(sweep_truncated_adders(input_width, [15, 12, 10, 8, 5, 2]))
        operators.extend(sweep_rounded_adders(input_width, [15, 12, 10, 8, 5, 2]))
        operators.extend(sweep_aca_adders(input_width, [4, 8, 12]))
        operators.extend(sweep_etaiv_adders(input_width, [2, 4, 8]))
        operators.extend(sweep_rcaapx_adders(input_width, [4, 8, 12]))
        return unique_by_name(operators)
    operators = []
    operators.extend(sweep_truncated_adders(input_width))
    operators.extend(sweep_rounded_adders(input_width))
    operators.extend(sweep_aca_adders(input_width))
    operators.extend(sweep_etaiv_adders(input_width))
    operators.extend(sweep_rcaapx_adders(input_width))
    return unique_by_name(operators)


def adder_error_cost_study(input_width: int = 16,
                           operators: Optional[Sequence[Operator]] = None,
                           error_samples: int = 50_000,
                           hardware_samples: int = 800,
                           reduced: bool = False,
                           workers: int = 1,
                           store: StoreLike = None,
                           shard: ShardLike = None) -> ExperimentResult:
    """Regenerate the data of Figures 3 (MSE) and 4 (BER) in one table."""
    if operators is None:
        operators = default_figure_sweep(input_width, reduced=reduced)

    def row(point: SweepOutcome) -> dict:
        return dict(
            operator=point.swept.name,
            group=_group_name(point.swept),
            mse_db=point.metrics["mse_db"],
            ber=point.metrics["ber"],
            power_mw=point.metrics["power_mw"],
            delay_ns=point.metrics["delay_ns"],
            pdp_pj=point.metrics["pdp_pj"],
            area_um2=point.metrics["area_um2"],
        )

    return (Study()
            .workload("characterization", error_samples=error_samples,
                      hardware_samples=hardware_samples)
            .design_space(operator_axis(operators))
            .store(store)
            .experiment(
                "fig3_fig4_adders",
                description=("16-bit adders: MSE/BER versus power, delay, PDP "
                             "and area (Figures 3 and 4 of the paper)"),
                columns=["operator", "group", "mse_db", "ber", "power_mw",
                         "delay_ns", "pdp_pj", "area_um2"],
                metadata={"input_width": input_width,
                          "error_samples": error_samples})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
