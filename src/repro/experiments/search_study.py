"""Heterogeneous per-stage search: the adaptive-exploration experiment.

The exhaustive experiments enumerate homogeneous datapaths — one adder for
the whole application.  This experiment explores the space the paper's
methodology points at but exhaustive sweeps cannot reach: one adder *per
FFT stage*, ``12^6`` (~3 million) candidate datapaths, driven by the
NSGA-II evolutionary search (:mod:`repro.search`) over the same Study
engine every other experiment uses.  Rows are bit-deterministic for a
seed, flow through the shared result store by structural key, and the
searched quality-versus-energy front is attached like any exhaustive
front — so the dashboard, the merge machinery and the golden gates treat
it uniformly.

The experiment is *not shardable*: an adaptive schedule depends on its own
earlier results, so there is no index partition to carve.  The registry
marks it so, and sharded runs execute it whole on shard 0 only.
"""
from __future__ import annotations

from typing import Optional

from ..core.backends import BackendLike, backend_spec
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..search import SearchEvaluator, get_target

#: Search seed of the registry run — part of the experiment's identity:
#: same seed, same schedule, same rows, same front, on any machine.
REGISTRY_SEED = 7

COLUMNS = ["genome", "axis", "psnr_db", "additions", "multiplications",
           "adder_energy_pj", "multiplier_energy_pj", "total_energy_pj"]


def fft_heterogeneous_search(reduced: bool = True,
                             seed: int = REGISTRY_SEED,
                             population: Optional[int] = None,
                             generations: Optional[int] = None,
                             workers: int = 1,
                             backend: BackendLike = "direct",
                             store: StoreLike = None) -> ExperimentResult:
    """Search the per-stage FFT space and report the discovered frontier.

    Every candidate the driver proposes is one heterogeneous datapath —
    an adder assignment per FFT stage, energy charged stage by stage with
    the paper's sizing-propagated multiplier pairing.  The result carries
    every evaluated candidate as a row (the dashboard's cloud), the
    searched Pareto front, and a ``metadata["search"]`` block with the
    honest accounting: candidates evaluated versus the size of the space
    they were drawn from.
    """
    target = get_target("fft_per_stage")
    study = target.study(reduced=reduced, backend=backend, store=store,
                         seed=REGISTRY_SEED)
    strategy = target.strategy("nsga2", seed=seed,
                               population=population,
                               generations=generations)
    outcome = study.search(strategy, workers=workers)

    result = ExperimentResult(
        experiment="fft_heterogeneous_search",
        description=("Per-stage heterogeneous adder assignment on the "
                     "64-point FFT, explored adaptively (NSGA-II) — the "
                     "design space the paper's per-operator methodology "
                     "opens up but exhaustive enumeration cannot reach"),
        columns=list(COLUMNS),
        metadata={
            "target": target.name,
            "seed": int(seed),
            "backend": backend_spec(backend),
            "search": {
                "strategy": outcome.strategy,
                "space_size": outcome.space_size,
                "evaluations": outcome.evaluations,
                "fresh_evaluations": outcome.fresh_evaluations,
                "store_hits": outcome.store_hits,
                "cost_units": outcome.cost_units,
                "front_points": len(outcome.front.records),
                "rounds": len(outcome.rounds),
            },
        })
    for row in outcome.rows:
        result.add_row(**row)
    result.fronts[outcome.front.key] = outcome.front
    return result
