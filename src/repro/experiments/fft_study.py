"""Figure 5 and Table II: FFT-32 accuracy versus datapath energy.

Figure 5 swaps the *adders* of the 32-point, 16-bit FFT for every approximate
and data-sized configuration, pairs each adder with the smallest exact
multiplier its emitted data width allows (the coupling the paper emphasises),
and reports the output PSNR against the total datapath energy of Equation 1.
Table II keeps exact 16-bit adders and swaps the fixed-width multipliers.

Both experiments are expressed as *declarative design spaces* over the
:mod:`repro.core.designspace` engine: the Figure 5 sweep is literally the
joint sized + approximate adder space
(:func:`~repro.core.designspace.joint_adder_space`), and
:func:`fft_joint_frontier` extracts the paper's headline
quality-versus-energy Pareto frontier from it incrementally while the sweep
runs.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.designspace import DesignSpace, adder_axis, joint_adder_space, multiplier_axis
from ..core.results import ExperimentResult
from ..core.store import StoreLike
from ..core.study import ShardLike, Study, SweepOutcome
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier


def fft_design_space(input_width: int = 16,
                     reduced: bool = False) -> DesignSpace:
    """The Figure 5 design space: sized and approximate adder axes joined."""
    return joint_adder_space(input_width, reduced=reduced)


def default_fft_adder_sweep(input_width: int = 16,
                            reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 5 (the design space's adder slots)."""
    return [point.adder for point in fft_design_space(input_width, reduced)]


def fft_adder_sweep(size: int = 32, input_width: int = 16,
                    adders: Optional[Sequence[AdderOperator]] = None,
                    frames: int = 8, reduced: bool = False,
                    energy_model: Optional[DatapathEnergyModel] = None,
                    workers: int = 1,
                    backend: BackendLike = "direct",
                    store: StoreLike = None,
                    shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Figure 5 (PDP of FFT-32 versus output PSNR, adders swept)."""
    if adders is None:
        space = fft_design_space(input_width, reduced=reduced)
    else:
        space = adder_axis(adders)

    def row(point: SweepOutcome) -> dict:
        return dict(
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            psnr_db=point.metrics["psnr_db"],
            adder_energy_pj=point.energy.adder_energy_pj,
            multiplier_energy_pj=point.energy.multiplier_energy_pj,
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("fft", size=size, data_width=input_width, frames=frames)
            .design_space(space)
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "fig5_fft_adders",
                description=("FFT-32 on 16-bit data: total datapath energy "
                             "versus output PSNR with the adders swapped "
                             "(Figure 5 of the paper)"),
                columns=["adder", "multiplier", "psnr_db", "adder_energy_pj",
                         "multiplier_energy_pj", "total_energy_pj"],
                metadata={"fft_size": size, "frames": frames})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def fft_joint_frontier(size: int = 32, input_width: int = 16,
                       frames: int = 8, reduced: bool = False,
                       energy_model: Optional[DatapathEnergyModel] = None,
                       workers: int = 1,
                       backend: BackendLike = "direct",
                       store: StoreLike = None,
                       shard: ShardLike = None) -> ExperimentResult:
    """The paper's headline comparison on the FFT: a joint Pareto frontier.

    Sweeps the unified design space — functionally approximate adders and
    word-length-sized exact datapaths, each with its sizing-propagated
    multiplier pairing — and extracts the PSNR-versus-energy Pareto front
    incrementally as sweep points complete.  The front is attached to the
    result under ``fronts["psnr_db_vs_total_energy_pj"]`` and its rows
    carry the ``axis`` / ``word_length`` columns that tell the two
    populations apart.
    """
    space = fft_design_space(input_width, reduced=reduced)

    def row(point: SweepOutcome) -> dict:
        info = point.point.describe()
        return dict(
            design=info["design"],
            axis=info["axis"],
            word_length=info["word_length"],
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            psnr_db=point.metrics["psnr_db"],
            adder_energy_pj=point.energy.adder_energy_pj,
            multiplier_energy_pj=point.energy.multiplier_energy_pj,
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("fft", size=size, data_width=input_width, frames=frames)
            .design_space(space)
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .pareto(quality="psnr_db", cost="total_energy_pj")
            .experiment(
                "fft_joint_frontier",
                description=("FFT-32 joint design space: approximate "
                             "operators versus word-length-sized exact "
                             "datapaths on one PSNR-versus-energy frontier "
                             "(the paper's headline comparison)"),
                columns=["design", "axis", "word_length", "adder",
                         "multiplier", "psnr_db", "adder_energy_pj",
                         "multiplier_energy_pj", "total_energy_pj"],
                metadata={"fft_size": size, "frames": frames,
                          "design_points": len(space)})
            .rows(row)
            .shard(shard)
            .run(workers=workers))


def fft_multiplier_comparison(size: int = 32, input_width: int = 16,
                              multipliers: Optional[Sequence[MultiplierOperator]] = None,
                              frames: int = 8,
                              energy_model: Optional[DatapathEnergyModel] = None,
                              workers: int = 1,
                              backend: BackendLike = "direct",
                              store: StoreLike = None,
                              shard: ShardLike = None) -> ExperimentResult:
    """Regenerate Table II (FFT-32 accuracy/energy with fixed-width multipliers)."""
    if multipliers is None:
        multipliers = [TruncatedMultiplier(input_width, input_width),
                       AAMMultiplier(input_width), ABMMultiplier(input_width)]
    space = multiplier_axis(multipliers, pair=ExactAdder(input_width))

    def row(point: SweepOutcome) -> dict:
        return dict(
            multiplier=point.multiplier.name,
            psnr_db=point.metrics["psnr_db"],
            multiplier_pdp_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("fft", size=size, data_width=input_width, frames=frames)
            .design_space(space)
            .backend(backend)
            .energy(energy_model)
            .store(store)
            .experiment(
                "table2_fft_multipliers",
                description=("FFT-32 with 16-bit fixed-width multipliers and "
                             "exact adders: PSNR and per-multiplication energy "
                             "(Table II of the paper)"),
                columns=["multiplier", "psnr_db", "multiplier_pdp_pj",
                         "total_energy_pj"],
                metadata={"fft_size": size, "frames": frames})
            .rows(row)
            .shard(shard)
            .run(workers=workers))
