"""Figure 5 and Table II: FFT-32 accuracy versus datapath energy.

Figure 5 swaps the *adders* of the 32-point, 16-bit FFT for every approximate
and data-sized configuration, pairs each adder with the smallest exact
multiplier its emitted data width allows (the coupling the paper emphasises),
and reports the output PSNR against the total datapath energy of Equation 1.
Table II keeps exact 16-bit adders and swaps the fixed-width multipliers.

Both experiments are thin declarative wrappers over the fluent
:class:`~repro.core.study.Study` pipeline — see that module for the general
API (custom workloads, parallel sweeps, shared energy cache).
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.backends import BackendLike
from ..core.datapath import DatapathEnergyModel
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_truncated_adders,
    unique_by_name,
)
from ..core.results import ExperimentResult
from ..core.study import Study, SweepOutcome
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier


def default_fft_adder_sweep(input_width: int = 16,
                            reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 5."""
    if reduced:
        adders: List[AdderOperator] = []
        adders.extend(sweep_truncated_adders(input_width, [15, 13, 11, 9, 7]))
        adders.extend(sweep_rounded_adders(input_width, [15, 13, 11, 9, 7]))
        adders.extend(sweep_aca_adders(input_width, [6, 10, 14]))
        adders.extend(sweep_etaiv_adders(input_width, [2, 4, 8]))
        adders.extend(sweep_rcaapx_adders(input_width, [4, 8], fa_types=(1, 2, 3)))
        return unique_by_name(adders)
    adders = []
    adders.extend(sweep_truncated_adders(input_width))
    adders.extend(sweep_rounded_adders(input_width))
    adders.extend(sweep_aca_adders(input_width))
    adders.extend(sweep_etaiv_adders(input_width))
    adders.extend(sweep_rcaapx_adders(input_width, range(2, input_width, 2)))
    return unique_by_name(adders)


def fft_adder_sweep(size: int = 32, input_width: int = 16,
                    adders: Optional[Sequence[AdderOperator]] = None,
                    frames: int = 8, reduced: bool = False,
                    energy_model: Optional[DatapathEnergyModel] = None,
                    workers: int = 1,
                    backend: BackendLike = "direct") -> ExperimentResult:
    """Regenerate Figure 5 (PDP of FFT-32 versus output PSNR, adders swept)."""
    if adders is None:
        adders = default_fft_adder_sweep(input_width, reduced=reduced)

    def row(point: SweepOutcome) -> dict:
        return dict(
            adder=point.adder.name,
            multiplier=point.multiplier.name,
            psnr_db=point.metrics["psnr_db"],
            adder_energy_pj=point.energy.adder_energy_pj,
            multiplier_energy_pj=point.energy.multiplier_energy_pj,
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("fft", size=size, data_width=input_width, frames=frames)
            .adders(adders)
            .backend(backend)
            .energy(energy_model)
            .experiment(
                "fig5_fft_adders",
                description=("FFT-32 on 16-bit data: total datapath energy "
                             "versus output PSNR with the adders swapped "
                             "(Figure 5 of the paper)"),
                columns=["adder", "multiplier", "psnr_db", "adder_energy_pj",
                         "multiplier_energy_pj", "total_energy_pj"],
                metadata={"fft_size": size, "frames": frames})
            .rows(row)
            .run(workers=workers))


def fft_multiplier_comparison(size: int = 32, input_width: int = 16,
                              multipliers: Optional[Sequence[MultiplierOperator]] = None,
                              frames: int = 8,
                              energy_model: Optional[DatapathEnergyModel] = None,
                              workers: int = 1,
                              backend: BackendLike = "direct") -> ExperimentResult:
    """Regenerate Table II (FFT-32 accuracy/energy with fixed-width multipliers)."""
    if multipliers is None:
        multipliers = [TruncatedMultiplier(input_width, input_width),
                       AAMMultiplier(input_width), ABMMultiplier(input_width)]

    def row(point: SweepOutcome) -> dict:
        return dict(
            multiplier=point.multiplier.name,
            psnr_db=point.metrics["psnr_db"],
            multiplier_pdp_pj=point.energy_model.energy_per_multiplication_pj(
                point.multiplier),
            total_energy_pj=point.energy.total_energy_pj,
        )

    return (Study()
            .workload("fft", size=size, data_width=input_width, frames=frames)
            .multipliers(multipliers)
            .pair_with(ExactAdder(input_width))
            .backend(backend)
            .energy(energy_model)
            .experiment(
                "table2_fft_multipliers",
                description=("FFT-32 with 16-bit fixed-width multipliers and "
                             "exact adders: PSNR and per-multiplication energy "
                             "(Table II of the paper)"),
                columns=["multiplier", "psnr_db", "multiplier_pdp_pj",
                         "total_energy_pj"],
                metadata={"fft_size": size, "frames": frames})
            .rows(row)
            .run(workers=workers))
