"""Figure 5 and Table II: FFT-32 accuracy versus datapath energy.

Figure 5 swaps the *adders* of the 32-point, 16-bit FFT for every approximate
and data-sized configuration, pairs each adder with the smallest exact
multiplier its emitted data width allows (the coupling the paper emphasises),
and reports the output PSNR against the total datapath energy of Equation 1.
Table II keeps exact 16-bit adders and swaps the fixed-width multipliers.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..apps.fft import FixedPointFFT, random_q15_signal
from ..core.datapath import DatapathEnergyModel, minimal_multiplier_for
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
    sweep_rounded_adders,
    sweep_truncated_adders,
)
from ..core.results import ExperimentResult
from ..metrics.signal import psnr_db
from ..operators.adders import ExactAdder
from ..operators.base import AdderOperator, MultiplierOperator
from ..operators.multipliers import AAMMultiplier, ABMMultiplier, TruncatedMultiplier


def default_fft_adder_sweep(input_width: int = 16,
                            reduced: bool = False) -> List[AdderOperator]:
    """Adder configurations of Figure 5."""
    if reduced:
        adders: List[AdderOperator] = []
        adders.extend(sweep_truncated_adders(input_width, [15, 13, 11, 9, 7]))
        adders.extend(sweep_rounded_adders(input_width, [15, 13, 11, 9, 7]))
        adders.extend(sweep_aca_adders(input_width, [6, 10, 14]))
        adders.extend(sweep_etaiv_adders(input_width, [2, 4, 8]))
        adders.extend(sweep_rcaapx_adders(input_width, [4, 8], fa_types=(1, 2, 3)))
        return adders
    adders = []
    adders.extend(sweep_truncated_adders(input_width))
    adders.extend(sweep_rounded_adders(input_width))
    adders.extend(sweep_aca_adders(input_width))
    adders.extend(sweep_etaiv_adders(input_width))
    adders.extend(sweep_rcaapx_adders(input_width, range(2, input_width, 2)))
    return adders


def _fft_psnr(fft: FixedPointFFT, signals: Sequence[np.ndarray]) -> float:
    """Average output PSNR over several random input frames."""
    references = []
    outputs = []
    for signal in signals:
        result = fft.forward(signal)
        spectrum = result.as_complex(frac_bits=fft.frac_bits)
        reference = fft.reference_spectrum(signal)
        references.append(np.concatenate([reference.real, reference.imag]))
        outputs.append(np.concatenate([spectrum.real, spectrum.imag]))
    return psnr_db(np.concatenate(references), np.concatenate(outputs))


def fft_adder_sweep(size: int = 32, input_width: int = 16,
                    adders: Optional[Sequence[AdderOperator]] = None,
                    frames: int = 8, reduced: bool = False,
                    energy_model: Optional[DatapathEnergyModel] = None
                    ) -> ExperimentResult:
    """Regenerate Figure 5 (PDP of FFT-32 versus output PSNR, adders swept)."""
    if adders is None:
        adders = default_fft_adder_sweep(input_width, reduced=reduced)
    if energy_model is None:
        energy_model = DatapathEnergyModel()
    signals = [random_q15_signal(size, seed=seed) for seed in range(frames)]

    result = ExperimentResult(
        experiment="fig5_fft_adders",
        description=("FFT-32 on 16-bit data: total datapath energy versus output "
                     "PSNR with the adders swapped (Figure 5 of the paper)"),
        columns=["adder", "multiplier", "psnr_db", "adder_energy_pj",
                 "multiplier_energy_pj", "total_energy_pj"],
        metadata={"fft_size": size, "frames": frames},
    )
    for adder in adders:
        multiplier = minimal_multiplier_for(adder)
        fft = FixedPointFFT(size, input_width, adder=adder)
        psnr = _fft_psnr(fft, signals)
        counts = fft.operation_counts()
        energy = energy_model.application_energy_pj(counts, adder, multiplier)
        result.add_row(
            adder=adder.name,
            multiplier=multiplier.name,
            psnr_db=psnr,
            adder_energy_pj=energy.adder_energy_pj,
            multiplier_energy_pj=energy.multiplier_energy_pj,
            total_energy_pj=energy.total_energy_pj,
        )
    return result


def fft_multiplier_comparison(size: int = 32, input_width: int = 16,
                              multipliers: Optional[Sequence[MultiplierOperator]] = None,
                              frames: int = 8,
                              energy_model: Optional[DatapathEnergyModel] = None
                              ) -> ExperimentResult:
    """Regenerate Table II (FFT-32 accuracy/energy with fixed-width multipliers)."""
    if multipliers is None:
        multipliers = [TruncatedMultiplier(input_width, input_width),
                       AAMMultiplier(input_width), ABMMultiplier(input_width)]
    if energy_model is None:
        energy_model = DatapathEnergyModel()
    signals = [random_q15_signal(size, seed=seed) for seed in range(frames)]
    adder = ExactAdder(input_width)

    result = ExperimentResult(
        experiment="table2_fft_multipliers",
        description=("FFT-32 with 16-bit fixed-width multipliers and exact adders: "
                     "PSNR and per-multiplication energy (Table II of the paper)"),
        columns=["multiplier", "psnr_db", "multiplier_pdp_pj", "total_energy_pj"],
        metadata={"fft_size": size, "frames": frames},
    )
    for multiplier in multipliers:
        fft = FixedPointFFT(size, input_width, multiplier=multiplier)
        psnr = _fft_psnr(fft, signals)
        counts = fft.operation_counts()
        energy = energy_model.application_energy_pj(counts, adder, multiplier)
        result.add_row(
            multiplier=multiplier.name,
            psnr_db=psnr,
            multiplier_pdp_pj=energy_model.energy_per_multiplication_pj(multiplier),
            total_energy_pj=energy.total_energy_pj,
        )
    return result
