"""One module per reproduced table / figure of the paper, plus ablations.

Every function here is a declarative design space over the
:mod:`repro.core.designspace` engine driven through the fluent
:class:`repro.core.study.Study` pipeline — new scenarios should be written
as :mod:`repro.workloads` plugins with their own design spaces rather than
as new modules in this package.
"""
from .ablations import multiplier_compensation_ablation, rounding_mode_ablation
from .adders_study import adder_error_cost_study, default_figure_sweep
from .fft_study import (
    default_fft_adder_sweep,
    fft_adder_sweep,
    fft_design_space,
    fft_joint_frontier,
    fft_multiplier_comparison,
)
from .hevc_study import (
    TABLE3_ADDERS,
    TABLE4_MULTIPLIERS,
    hevc_adder_space,
    hevc_adder_table,
    hevc_multiplier_space,
    hevc_multiplier_table,
)
from .jpeg_study import (
    default_jpeg_adder_sweep,
    jpeg_adder_sweep,
    jpeg_design_space,
    jpeg_joint_frontier,
)
from .kmeans_study import (
    TABLE5_ADDERS,
    TABLE6_MULTIPLIERS,
    default_point_clouds,
    kmeans_adder_space,
    kmeans_adder_table,
    kmeans_multiplier_space,
    kmeans_multiplier_table,
)
from .multipliers_study import multiplier_comparison
from .runner import (
    EXPERIMENTS,
    ExperimentSpec,
    RunAllResult,
    RunConfig,
    experiment_names,
    merge_run,
    run_all,
    select_experiments,
)
from .search_study import fft_heterogeneous_search

__all__ = [
    "adder_error_cost_study",
    "default_figure_sweep",
    "multiplier_comparison",
    "fft_adder_sweep",
    "fft_design_space",
    "fft_joint_frontier",
    "fft_multiplier_comparison",
    "default_fft_adder_sweep",
    "jpeg_adder_sweep",
    "jpeg_design_space",
    "jpeg_joint_frontier",
    "default_jpeg_adder_sweep",
    "hevc_adder_space",
    "hevc_adder_table",
    "hevc_multiplier_space",
    "hevc_multiplier_table",
    "TABLE3_ADDERS",
    "TABLE4_MULTIPLIERS",
    "kmeans_adder_space",
    "kmeans_adder_table",
    "kmeans_multiplier_space",
    "kmeans_multiplier_table",
    "default_point_clouds",
    "TABLE5_ADDERS",
    "TABLE6_MULTIPLIERS",
    "multiplier_compensation_ablation",
    "rounding_mode_ablation",
    "fft_heterogeneous_search",
    "run_all",
    "merge_run",
    "RunAllResult",
    "RunConfig",
    "ExperimentSpec",
    "EXPERIMENTS",
    "experiment_names",
    "select_experiments",
]
