"""Operator-characterisation workload (Figures 3-4, Table I, ablations).

The fifth "application" of the framework is APXPERF itself: joint error +
hardware characterisation of a single operator.  Exposing it as a workload
lets the :class:`~repro.core.study.Study` pipeline sweep operator sets with
the same machinery (and the same process-pool parallelism) as the
application-level experiments.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..core.characterization import Apxperf
from ..core.datapath import OperationCounts
from .base import OperatorMap, Workload, WorkloadResult


@dataclass(frozen=True)
class CharacterizationWorkload(Workload):
    """APXPERF error + hardware characterisation of the swept operator.

    Metrics: ``mse_db``, ``ber``, ``bias``, ``power_mw``, ``delay_ns``,
    ``pdp_pj``, ``area_um2``.  The full
    :class:`~repro.core.characterization.OperatorCharacterization` record is
    available under ``details["characterization"]`` in its serialised
    (``to_dict``) form — keeping the result JSON-safe is what lets the
    persistent result store skip whole characterisation sweeps across
    sessions.
    """

    error_samples: int = 100_000
    hardware_samples: int = 1500
    frequency_hz: float = 100e6
    calibrated: bool = True
    verify: bool = False
    seed: int = 2017

    name = "characterization"

    def default_config(self) -> Dict[str, object]:
        return {"error_samples": self.error_samples,
                "hardware_samples": self.hardware_samples,
                "frequency_hz": self.frequency_hz,
                "calibrated": self.calibrated,
                "verify": self.verify,
                "seed": self.seed}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        harness = Apxperf(error_samples=int(config["error_samples"]),
                          hardware_samples=int(config["hardware_samples"]),
                          frequency_hz=float(config["frequency_hz"]),
                          calibrated=bool(config["calibrated"]),
                          seed=int(config["seed"]))
        record = harness.characterize(operators.swept,
                                      verify=bool(config["verify"]))
        return WorkloadResult(
            metrics={"mse_db": record.mse_db,
                     "ber": record.ber,
                     "bias": record.error.bias,
                     "power_mw": record.power_mw,
                     "delay_ns": record.delay_ns,
                     "pdp_pj": record.pdp_pj,
                     "area_um2": record.area_um2},
            counts=OperationCounts(),
            details={"characterization": record.to_dict()},
        )
