"""Workload registry and string-spec factory (mirrors ``core.registry``).

Workloads are referred to by short specification strings — ``"fft"``,
``"fft(1024)"``, ``"jpeg(size=96)"``, ``"kmeans(runs=5, points_per_run=5000)"``
— and this module turns those strings into configured workload instances.
Downstream users plug their own scenarios in with :func:`register_workload`.
"""
from __future__ import annotations

from typing import Callable, Dict, List

from ..core.registry import parse_spec
from .base import Workload

WorkloadFactory = Callable[..., Workload]

_REGISTRY: Dict[str, WorkloadFactory] = {}


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register (or override) a workload factory under a short name."""
    if not name:
        raise ValueError("workload name must be a non-empty string")
    _REGISTRY[name.lower()] = factory


def registered_workloads() -> List[str]:
    """Sorted list of known workload names."""
    return sorted(_REGISTRY)


def create_workload(name: str, *args: object, **kwargs: object) -> Workload:
    """Instantiate a workload from its registry name and parameters."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {', '.join(registered_workloads())}")
    return _REGISTRY[key](*args, **kwargs)


def parse_workload(spec: str) -> Workload:
    """Parse a workload specification string into a workload instance.

    Examples: ``"fft"``, ``"fft(1024)"``, ``"jpeg(size=96, quality=75)"``,
    ``"hevc(size=128)"``, ``"kmeans(runs=5)"``, ``"characterization"``.
    """
    name, args, kwargs = parse_spec(spec)
    try:
        return create_workload(name, *args, **kwargs)
    except TypeError as exc:
        raise ValueError(f"invalid arguments for workload {name!r} in "
                         f"specification {spec!r}: {exc}") from exc
