"""K-means workload: clustering success against the exact fixed-point run."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..apps.kmeans import PointCloud, generate_point_cloud, kmeans_success_rate
from .base import OperatorMap, Workload, WorkloadResult


@dataclass(frozen=True)
class KmeansWorkload(Workload):
    """Lloyd's K-means whose distance datapath uses the operators under test.

    Metrics: ``success_rate`` — fraction of points assigned to the same
    cluster as the exact fixed-point run, averaged over ``runs`` generated
    point clouds (seeded from the study seed unless explicit ``clouds`` are
    supplied).
    """

    runs: int = 3
    points_per_run: int = 2000
    clusters: int = 10
    iterations: int = 8
    clouds: Optional[Tuple[PointCloud, ...]] = None
    #: ``False`` replays the seed-style per-centroid loops (bit-identical;
    #: kept for equivalence tests and benchmarks).
    fused: bool = True

    name = "kmeans"

    def default_config(self) -> Dict[str, object]:
        return {"runs": self.runs, "points_per_run": self.points_per_run,
                "clusters": self.clusters, "iterations": self.iterations,
                "clouds": self.clouds, "fused": self.fused}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        clouds: Optional[Sequence[PointCloud]] = config.get("clouds")
        if clouds is None:
            base_seed = int(config.get("seed", 0))
            clouds = [generate_point_cloud(int(config["points_per_run"]),
                                           int(config["clusters"]),
                                           seed=base_seed + run)
                      for run in range(int(config["runs"]))]
        rates = []
        counts = None
        for cloud in clouds:
            rate, run_counts = kmeans_success_rate(
                cloud, context=operators.context(),
                iterations=int(config["iterations"]),
                fused=bool(config["fused"]))
            rates.append(rate)
            counts = run_counts
        return WorkloadResult(
            metrics={"success_rate": float(np.mean(rates))},
            counts=counts,
            details={"runs": len(clouds),
                     "points_per_run": int(clouds[0].points.shape[0])},
        )
