"""K-means workload: clustering success against the exact fixed-point run."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..apps.kmeans import PointCloud, generate_point_cloud, kmeans_success_rate
from .base import OperatorMap, Workload, WorkloadResult


def _requantize_cloud(cloud: PointCloud, data_width: int) -> PointCloud:
    """Requantise a Q1.15 point cloud onto a ``data_width``-bit grid.

    An arithmetic right shift drops the LSBs the narrower datapath cannot
    carry (a wider datapath re-expands them as zeros), keeping the cloud's
    geometry while putting every code on the target word-length grid.
    """
    shift = 16 - int(data_width)
    if shift == 0:
        return cloud
    if shift > 0:
        points = cloud.points >> shift
        centers = cloud.centers >> shift
    else:
        points = cloud.points << -shift
        centers = cloud.centers << -shift
    return PointCloud(points=points, labels=cloud.labels, centers=centers)


@dataclass(frozen=True)
class KmeansWorkload(Workload):
    """Lloyd's K-means whose distance datapath uses the operators under test.

    Metrics: ``success_rate`` — fraction of points assigned to the same
    cluster as the exact fixed-point run, averaged over ``runs`` generated
    point clouds (seeded from the study seed unless explicit ``clouds`` are
    supplied).
    """

    runs: int = 3
    points_per_run: int = 2000
    clusters: int = 10
    iterations: int = 8
    clouds: Optional[Tuple[PointCloud, ...]] = None
    #: Word length of the distance datapath (the design-space word-length
    #: axis).  Generated clouds are quantised to ``data_width - 1``
    #: fractional bits; explicit Q1.15 clouds are requantised on the fly.
    data_width: int = 16
    #: ``False`` replays the seed-style per-centroid loops (bit-identical;
    #: kept for equivalence tests and benchmarks).
    fused: bool = True

    name = "kmeans"

    def default_config(self) -> Dict[str, object]:
        return {"runs": self.runs, "points_per_run": self.points_per_run,
                "clusters": self.clusters, "iterations": self.iterations,
                "clouds": self.clouds, "data_width": self.data_width,
                "fused": self.fused}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        width = int(config["data_width"])
        clouds: Optional[Sequence[PointCloud]] = config.get("clouds")
        if clouds is None:
            base_seed = int(config.get("seed", 0))
            clouds = [generate_point_cloud(int(config["points_per_run"]),
                                           int(config["clusters"]),
                                           seed=base_seed + run,
                                           frac_bits=width - 1)
                      for run in range(int(config["runs"]))]
        elif width != 16:
            clouds = [_requantize_cloud(cloud, width) for cloud in clouds]
        rates = []
        counts = None
        for cloud in clouds:
            rate, run_counts = kmeans_success_rate(
                cloud, context=operators.context(data_width=width),
                iterations=int(config["iterations"]),
                fused=bool(config["fused"]))
            rates.append(rate)
            counts = run_counts
        return WorkloadResult(
            metrics={"success_rate": float(np.mean(rates))},
            counts=counts,
            details={"runs": len(clouds),
                     "points_per_run": int(clouds[0].points.shape[0])},
        )
