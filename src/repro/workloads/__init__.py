"""Unified workload plugin API.

Every application of the paper — and any scenario a user plugs in — is a
:class:`Workload`: a named, configurable unit mapping an operator selection
to quality metrics plus an operation inventory.  The registry turns spec
strings such as ``"fft(1024)"`` or ``"jpeg(size=96)"`` into configured
instances, mirroring the operator registry in :mod:`repro.core.registry`.
"""
from .base import OperatorMap, Workload, WorkloadResult
from .characterization import CharacterizationWorkload
from .fft import FftWorkload, fft_output_psnr
from .hevc import HevcWorkload
from .jpeg import JpegWorkload
from .kmeans import KmeansWorkload
from .registry import (
    create_workload,
    parse_workload,
    register_workload,
    registered_workloads,
)

# --------------------------------------------------------------------------- #
# Built-in registrations (the paper's applications)
# --------------------------------------------------------------------------- #
register_workload("fft", FftWorkload)
register_workload("jpeg", JpegWorkload)
register_workload("hevc", HevcWorkload)
register_workload("kmeans", KmeansWorkload)
register_workload("characterization", CharacterizationWorkload)

__all__ = [
    "Workload",
    "WorkloadResult",
    "OperatorMap",
    "FftWorkload",
    "JpegWorkload",
    "HevcWorkload",
    "KmeansWorkload",
    "CharacterizationWorkload",
    "fft_output_psnr",
    "register_workload",
    "registered_workloads",
    "create_workload",
    "parse_workload",
]
