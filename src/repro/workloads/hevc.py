"""HEVC motion-compensation workload (Tables III and IV)."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..apps.hevc_mc import mc_quality_score
from ..apps.images import synthetic_image
from .base import OperatorMap, Workload, WorkloadResult


@dataclass(frozen=True)
class HevcWorkload(Workload):
    """HEVC fractional-pel interpolation with swappable operators.

    Metrics: ``mssim`` — similarity of the interpolated image against the
    exact filter output.  The filter multiplies by small constant
    coefficients, so studies over this workload typically charge
    multiplications at the constant-coefficient rate
    (``Study.constant_coefficient()``).
    """

    size: int = 128
    horizontal_phase: int = 2
    vertical_phase: int = 2
    image: Optional[np.ndarray] = None
    #: Word length of the interpolation datapath (the design-space
    #: word-length axis).  The quality reference stays the full-precision
    #: 16-bit exact filter, so an undersized exact datapath exposes its own
    #: quality cost.
    data_width: int = 16
    #: ``False`` replays the seed-style per-tap loops (bit-identical;
    #: kept for equivalence tests and benchmarks).
    fused: bool = True

    name = "hevc"

    #: Reference word length for the quality metric.
    REFERENCE_WIDTH = 16

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "horizontal_phase": self.horizontal_phase,
                "vertical_phase": self.vertical_phase, "image": self.image,
                "data_width": self.data_width, "fused": self.fused}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        image = config.get("image")
        if image is None:
            image = synthetic_image(int(config["size"]))
        width = int(config["data_width"])
        score, counts = mc_quality_score(
            image, context=operators.context(data_width=width),
            horizontal_phase=int(config["horizontal_phase"]),
            vertical_phase=int(config["vertical_phase"]),
            fused=bool(config["fused"]),
            reference_width=max(width, self.REFERENCE_WIDTH))
        return WorkloadResult(metrics={"mssim": score}, counts=counts,
                              details={"image_pixels": int(image.size)})
