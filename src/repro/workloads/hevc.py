"""HEVC motion-compensation workload (Tables III and IV)."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..apps.hevc_mc import mc_quality_score
from ..apps.images import synthetic_image
from .base import OperatorMap, Workload, WorkloadResult


@dataclass(frozen=True)
class HevcWorkload(Workload):
    """HEVC fractional-pel interpolation with swappable operators.

    Metrics: ``mssim`` — similarity of the interpolated image against the
    exact filter output.  The filter multiplies by small constant
    coefficients, so studies over this workload typically charge
    multiplications at the constant-coefficient rate
    (``Study.constant_coefficient()``).
    """

    size: int = 128
    horizontal_phase: int = 2
    vertical_phase: int = 2
    image: Optional[np.ndarray] = None
    #: ``False`` replays the seed-style per-tap loops (bit-identical;
    #: kept for equivalence tests and benchmarks).
    fused: bool = True

    name = "hevc"

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "horizontal_phase": self.horizontal_phase,
                "vertical_phase": self.vertical_phase, "image": self.image,
                "fused": self.fused}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        image = config.get("image")
        if image is None:
            image = synthetic_image(int(config["size"]))
        score, counts = mc_quality_score(
            image, context=operators.context(),
            horizontal_phase=int(config["horizontal_phase"]),
            vertical_phase=int(config["vertical_phase"]),
            fused=bool(config["fused"]))
        return WorkloadResult(metrics={"mssim": score}, counts=counts,
                              details={"image_pixels": int(image.size)})
