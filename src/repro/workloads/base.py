"""Workload plugin API: the unified contract every application implements.

The paper's comparison is *application level*: each operator configuration is
run through FFT, JPEG, HEVC motion compensation and K-means, and charged with
the datapath energy of Equation 1.  A :class:`Workload` packages one such
application behind a uniform interface — a name, a default configuration and
a ``run`` method mapping operators to quality metrics plus an operation
inventory — so the :class:`~repro.core.study.Study` pipeline can sweep any
workload without knowing its internals, serially or across a process pool.

Writing a new scenario is therefore a ~50-line plugin::

    from repro.workloads import Workload, WorkloadResult, register_workload

    class FirWorkload(Workload):
        name = "fir"
        ...

    register_workload("fir", FirWorkload)

after which ``Study().workload("fir(taps=32)")`` just works.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.backends import BackendLike
from ..core.context import ApproxContext
from ..core.datapath import OperationCounter, OperationCounts
from ..operators.base import AdderOperator, MultiplierOperator, Operator


@dataclass(frozen=True)
class OperatorMap:
    """The operators (and execution backend) a sweep point injects.

    ``swept`` is the operator under test; ``adder`` / ``multiplier`` are the
    slots the application kernels consume (``None`` means the workload's own
    exact default, matching the paper's setup where only one operator family
    is swapped at a time).  ``backend`` selects how the kernels evaluate
    operator calls — a registry spec such as ``"lut"`` or an
    :class:`~repro.core.backends.ExecutionBackend` instance; results are
    required to be bit-identical across backends.
    """

    swept: Operator
    adder: Optional[AdderOperator] = None
    multiplier: Optional[MultiplierOperator] = None
    backend: BackendLike = "direct"

    def context(self, data_width: int = 16,
                counter: Optional[OperationCounter] = None) -> ApproxContext:
        """Build the :class:`ApproxContext` the application kernels consume."""
        return ApproxContext(adder=self.adder, multiplier=self.multiplier,
                             data_width=data_width, backend=self.backend,
                             counter=counter)


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one workload run: quality metrics plus operation counts."""

    metrics: Mapping[str, float]
    counts: OperationCounts
    details: Mapping[str, object] = field(default_factory=dict)


class Workload(ABC):
    """Base class of every pluggable application workload.

    Subclasses set :attr:`name`, describe their tunables via
    :meth:`default_config` and implement :meth:`run`.  ``run`` must be a pure
    function of its arguments (no hidden global state): the study executor
    may invoke it in worker processes, and serial and parallel execution are
    required to produce identical results.
    """

    #: Registry name, e.g. ``"fft"`` — also the default spec prefix.
    name: str = "workload"

    @abstractmethod
    def default_config(self) -> Dict[str, object]:
        """The workload's tunable parameters with their default values."""

    @abstractmethod
    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        """Execute the workload with the given operators and configuration.

        ``config`` is the merged dictionary of :meth:`default_config`, the
        spec-string arguments and any :meth:`Study.config` overrides; the
        reserved ``"seed"`` key carries the study's stimulus seed.  ``rng``
        is a generator derived from that seed for workloads that prefer
        drawing directly from it.
        """

    def merged_config(self, overrides: Mapping[str, object]) -> Dict[str, object]:
        """Defaults updated with ``overrides``; unknown keys are rejected."""
        config = self.default_config()
        known = set(config) | {"seed"}
        unknown = [key for key in overrides if key not in known]
        if unknown:
            raise ValueError(
                f"unknown configuration keys {unknown} for workload "
                f"{self.name!r}; known: {sorted(known)}")
        config.update(overrides)
        return config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.__class__.__name__} {self.name}>"
