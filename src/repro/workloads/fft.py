"""FFT workload: the paper's first application, behind the plugin API."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..apps.fft import FixedPointFFT, random_q15_signal
from ..core.context import ApproxContext
from ..metrics.signal import psnr_db
from .base import OperatorMap, Workload, WorkloadResult


def fft_output_psnr(fft: FixedPointFFT, signals: Sequence[np.ndarray]) -> float:
    """Average output PSNR of the fixed-point FFT over several input frames."""
    references = []
    outputs = []
    for signal in signals:
        result = fft.forward(signal)
        spectrum = result.as_complex(frac_bits=fft.frac_bits)
        reference = fft.reference_spectrum(signal)
        references.append(np.concatenate([reference.real, reference.imag]))
        outputs.append(np.concatenate([spectrum.real, spectrum.imag]))
    return psnr_db(np.concatenate(references), np.concatenate(outputs))


@dataclass(frozen=True)
class FftWorkload(Workload):
    """Fixed-point FFT on random Q1.15 frames (Figure 5 / Table II setup).

    Metrics: ``psnr_db`` — output PSNR against the double-precision FFT,
    averaged over ``frames`` random frames seeded from the study seed.
    """

    size: int = 32
    data_width: int = 16
    frames: int = 8
    amplitude: float = 0.5
    #: ``False`` replays the seed-style per-twiddle loops (bit-identical;
    #: kept for equivalence tests and as the benchmark baseline).
    fused: bool = True
    #: Heterogeneous datapath: one adder spec string per ``log2(size)``
    #: stage (``None`` keeps the homogeneous operator map).  When set, the
    #: operator map's adder slot must be empty — the stages own their
    #: operators — and the result's details carry the per-stage adder
    #: names and analytic per-stage operation counts for the search's
    #: stage-by-stage energy accounting.
    stage_adders: Optional[Tuple[str, ...]] = None

    name = "fft"

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "data_width": self.data_width,
                "frames": self.frames, "amplitude": self.amplitude,
                "fused": self.fused, "stage_adders": self.stage_adders}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        size = int(config["size"])
        width = int(config["data_width"])
        base_seed = int(config.get("seed", 0))
        # Stimulus codes live on the datapath grid: Q1.(width-1) fractions
        # (identical to the seed setup at the default 16-bit width).
        signals = [random_q15_signal(size, amplitude=float(config["amplitude"]),
                                     seed=base_seed + frame,
                                     frac_bits=width - 1)
                   for frame in range(int(config["frames"]))]
        stage_adders = config.get("stage_adders")
        if stage_adders:
            if operators.adder is not None:
                raise ValueError(
                    "stage_adders assigns one adder per FFT stage; sweep "
                    "heterogeneous points on the bare-operator axis instead "
                    "of injecting an adder into the operator map")
            names = [str(name) for name in stage_adders]
            contexts = [ApproxContext(adder=name, data_width=width,
                                      backend=operators.backend)
                        for name in names]
            fft = FixedPointFFT(size, width, stage_contexts=contexts,
                                fused=bool(config["fused"]))
            psnr = fft_output_psnr(fft, signals)
            stage_counts = [[counts.additions, counts.multiplications]
                            for counts in fft.stage_operation_counts()]
            return WorkloadResult(
                metrics={"psnr_db": psnr},
                counts=fft.operation_counts(),
                details={"stage_adders": names,
                         "stage_counts": stage_counts})
        fft = FixedPointFFT(size, width,
                            context=operators.context(data_width=width),
                            fused=bool(config["fused"]))
        psnr = fft_output_psnr(fft, signals)
        return WorkloadResult(metrics={"psnr_db": psnr},
                              counts=fft.operation_counts())
