"""JPEG workload: encoding quality versus DCT datapath cost (Figure 6)."""
from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..apps.images import synthetic_image
from ..apps.jpeg import JpegEncoder
from ..metrics.image import mssim
from .base import OperatorMap, Workload, WorkloadResult

#: Exact-DCT reconstructions memoised by (quality, image fingerprint) so a
#: sweep encodes the reference once, not once per sweep point.
_REFERENCE_CACHE: Dict[Tuple[int, str], np.ndarray] = {}


def _reference_reconstruction(image: np.ndarray, quality: int) -> np.ndarray:
    key = (int(quality), hashlib.sha1(np.ascontiguousarray(image).tobytes()).hexdigest())
    if key not in _REFERENCE_CACHE:
        if len(_REFERENCE_CACHE) > 32:  # sweeps reuse one image; stay bounded
            _REFERENCE_CACHE.clear()
        reference = JpegEncoder(quality=quality).encode_decode(image)
        _REFERENCE_CACHE[key] = reference.reconstructed
    return _REFERENCE_CACHE[key]


@dataclass(frozen=True)
class JpegWorkload(Workload):
    """JPEG luminance encode/decode with a swappable forward DCT.

    Metrics: ``mssim`` — structural similarity between the image encoded
    with the exact fixed-point DCT and the one encoded with the operators
    under test; ``estimated_bits`` — run-length size estimate of the latter.
    """

    size: int = 128
    quality: int = 90
    image: Optional[np.ndarray] = None

    name = "jpeg"

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "quality": self.quality, "image": self.image}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        image = config.get("image")
        if image is None:
            image = synthetic_image(int(config["size"]))
        quality = int(config["quality"])
        reference = _reference_reconstruction(image, quality)
        encoder = JpegEncoder(quality=quality, adder=operators.adder,
                              multiplier=operators.multiplier)
        outcome = encoder.encode_decode(image)
        score = mssim(reference, outcome.reconstructed)
        return WorkloadResult(
            metrics={"mssim": score,
                     "estimated_bits": float(outcome.estimated_bits)},
            counts=outcome.counts,
            details={"image_pixels": int(image.size)},
        )
