"""JPEG workload: encoding quality versus DCT datapath cost (Figure 6)."""
from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..apps.images import synthetic_image
from ..apps.jpeg import JpegEncoder
from ..metrics.image import mssim
from .base import OperatorMap, Workload, WorkloadResult

#: Exact-DCT reconstructions memoised by (quality, image fingerprint) so a
#: sweep encodes the reference once, not once per sweep point.
_REFERENCE_CACHE: Dict[Tuple[int, str], np.ndarray] = {}


def _reference_reconstruction(image: np.ndarray, quality: int) -> np.ndarray:
    key = (int(quality), hashlib.sha1(np.ascontiguousarray(image).tobytes()).hexdigest())
    if key not in _REFERENCE_CACHE:
        if len(_REFERENCE_CACHE) > 32:  # sweeps reuse one image; stay bounded
            _REFERENCE_CACHE.clear()
        reference = JpegEncoder(quality=quality).encode_decode(image)
        _REFERENCE_CACHE[key] = reference.reconstructed
    return _REFERENCE_CACHE[key]


@dataclass(frozen=True)
class JpegWorkload(Workload):
    """JPEG luminance encode/decode with a swappable forward DCT.

    Metrics: ``mssim`` — structural similarity between the image encoded
    with the exact fixed-point DCT and the one encoded with the operators
    under test (averaged over ``frames``); ``estimated_bits`` — run-length
    size estimate of the latter (summed over ``frames``).

    ``frames > 1`` encodes a short synthetic sequence (one image per frame
    seed) with the *same* operator configuration — the motion-JPEG-style
    setup used by the performance benchmarks, where table-based backends
    amortise their precomputation across frames.
    """

    size: int = 128
    quality: int = 90
    frames: int = 1
    image: Optional[np.ndarray] = None
    #: Word length of the DCT datapath (the design-space word-length axis).
    #: The quality reference always stays the full-precision 16-bit exact
    #: encoder, so narrower datapaths expose their own quality cost.
    data_width: int = 16
    #: ``False`` replays the seed-style per-coefficient DCT loops
    #: (bit-identical; kept for equivalence tests and benchmarks).
    fused: bool = True

    name = "jpeg"

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "quality": self.quality,
                "frames": self.frames, "image": self.image,
                "data_width": self.data_width, "fused": self.fused}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        quality = int(config["quality"])
        frames = max(1, int(config["frames"]))
        base_seed = int(config.get("seed", 0))
        fixed_image = config.get("image")
        width = int(config["data_width"])
        encoder = JpegEncoder(quality=quality,
                              context=operators.context(data_width=width),
                              data_width=width,
                              fused=bool(config["fused"]))

        scores = []
        total_bits = 0
        total_pixels = 0
        counts = None
        for frame in range(frames):
            if fixed_image is not None:
                image = fixed_image
            else:
                image = synthetic_image(int(config["size"]),
                                        seed=2017 + base_seed + frame)
            reference = _reference_reconstruction(image, quality)
            outcome = encoder.encode_decode(image)
            scores.append(mssim(reference, outcome.reconstructed))
            total_bits += outcome.estimated_bits
            total_pixels += int(image.size)
            counts = outcome.counts if counts is None \
                else counts + outcome.counts
        return WorkloadResult(
            metrics={"mssim": float(np.mean(scores)),
                     "estimated_bits": float(total_bits)},
            counts=counts,
            details={"image_pixels": total_pixels, "frames": frames},
        )
