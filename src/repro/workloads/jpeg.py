"""JPEG workload: encoding quality versus DCT datapath cost (Figure 6)."""
from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..apps.images import synthetic_image
from ..apps.jpeg import JpegEncoder
from ..core.context import ApproxContext
from ..metrics.image import mssim
from .base import OperatorMap, Workload, WorkloadResult

#: Exact-DCT reconstructions memoised by (quality, image fingerprint) so a
#: sweep encodes the reference once, not once per sweep point.
_REFERENCE_CACHE: Dict[Tuple[int, str], np.ndarray] = {}


def _reference_reconstruction(image: np.ndarray, quality: int) -> np.ndarray:
    key = (int(quality), hashlib.sha1(np.ascontiguousarray(image).tobytes()).hexdigest())
    if key not in _REFERENCE_CACHE:
        if len(_REFERENCE_CACHE) > 32:  # sweeps reuse one image; stay bounded
            _REFERENCE_CACHE.clear()
        reference = JpegEncoder(quality=quality).encode_decode(image)
        _REFERENCE_CACHE[key] = reference.reconstructed
    return _REFERENCE_CACHE[key]


@dataclass(frozen=True)
class JpegWorkload(Workload):
    """JPEG luminance encode/decode with a swappable forward DCT.

    Metrics: ``mssim`` — structural similarity between the image encoded
    with the exact fixed-point DCT and the one encoded with the operators
    under test (averaged over ``frames``); ``estimated_bits`` — run-length
    size estimate of the latter (summed over ``frames``).

    ``frames > 1`` encodes a short synthetic sequence (one image per frame
    seed) with the *same* operator configuration — the motion-JPEG-style
    setup used by the performance benchmarks, where table-based backends
    amortise their precomputation across frames.
    """

    size: int = 128
    quality: int = 90
    frames: int = 1
    image: Optional[np.ndarray] = None
    #: Word length of the DCT datapath (the design-space word-length axis).
    #: The quality reference always stays the full-precision 16-bit exact
    #: encoder, so narrower datapaths expose their own quality cost.
    data_width: int = 16
    #: ``False`` replays the seed-style per-coefficient DCT loops
    #: (bit-identical; kept for equivalence tests and benchmarks).
    fused: bool = True
    #: Heterogeneous datapath: one adder spec string per DCT matrix pass
    #: (row pass, column pass; ``None`` keeps the homogeneous operator
    #: map).  When set, the operator map's adder slot must be empty — the
    #: passes own their operators — and the result's details carry the
    #: per-pass adder names and measured per-pass operation counts.
    pass_adders: Optional[Tuple[str, str]] = None

    name = "jpeg"

    def default_config(self) -> Dict[str, object]:
        return {"size": self.size, "quality": self.quality,
                "frames": self.frames, "image": self.image,
                "data_width": self.data_width, "fused": self.fused,
                "pass_adders": self.pass_adders}

    def run(self, operators: OperatorMap, config: Mapping[str, object],
            rng: np.random.Generator) -> WorkloadResult:
        quality = int(config["quality"])
        frames = max(1, int(config["frames"]))
        base_seed = int(config.get("seed", 0))
        fixed_image = config.get("image")
        width = int(config["data_width"])
        pass_adders = config.get("pass_adders")
        pass_contexts = None
        if pass_adders:
            if operators.adder is not None:
                raise ValueError(
                    "pass_adders assigns one adder per DCT pass; sweep "
                    "heterogeneous points on the bare-operator axis instead "
                    "of injecting an adder into the operator map")
            pass_names = [str(name) for name in pass_adders]
            pass_contexts = [ApproxContext(adder=name, data_width=width,
                                           backend=operators.backend)
                             for name in pass_names]
        encoder = JpegEncoder(quality=quality,
                              context=operators.context(data_width=width),
                              data_width=width,
                              fused=bool(config["fused"]),
                              pass_contexts=pass_contexts)

        scores = []
        total_bits = 0
        total_pixels = 0
        counts = None
        for frame in range(frames):
            if fixed_image is not None:
                image = fixed_image
            else:
                image = synthetic_image(int(config["size"]),
                                        seed=2017 + base_seed + frame)
            reference = _reference_reconstruction(image, quality)
            outcome = encoder.encode_decode(image)
            scores.append(mssim(reference, outcome.reconstructed))
            total_bits += outcome.estimated_bits
            total_pixels += int(image.size)
            counts = outcome.counts if counts is None \
                else counts + outcome.counts
        details: Dict[str, object] = {"image_pixels": total_pixels,
                                      "frames": frames}
        if pass_contexts is not None:
            # Measured per-pass inventory (summed over frames), keyed the
            # same way the FFT's per-stage details are so the search's
            # heterogeneous energy accounting is workload-agnostic.
            details["stage_adders"] = pass_names
            details["stage_counts"] = [
                [ctx.counts.additions, ctx.counts.multiplications]
                for ctx in pass_contexts]
        return WorkloadResult(
            metrics={"mssim": float(np.mean(scores)),
                     "estimated_bits": float(total_bits)},
            counts=counts,
            details=details,
        )
