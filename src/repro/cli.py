"""``python -m repro`` — the reproduction's command-line front end.

Six subcommands wrap the experiment registry behind machine-readable JSON
output (one document on stdout; progress and diagnostics go to stderr,
which ``--quiet`` / ``REPRO_QUIET=1`` silences):

* ``run`` — execute the suite (or a named subset), optionally one
  deterministic shard of it (``--shard i/n``), with per-point
  checkpointing (``--store``) and a run directory of per-experiment JSON
  artifacts plus a manifest (``--out``).  A killed run re-invoked with the
  same ``--store`` resumes where it stopped.
* ``merge`` — fold shard run directories back into one whole-suite result
  (rows and Pareto fronts bit-identical to an unsharded run), optionally
  folding the shards' stores into one (``--store``) and gating against a
  golden unsharded run (``--golden``, non-zero exit on any divergence).
* ``list`` — the experiment registry, names and titles.
* ``bench`` — wall-clock comparison of the execution backends on a named
  experiment, the CLI face of ``benchmarks/perf_bench.py``'s quick mode.
* ``serve`` — the long-lived evaluation server (:mod:`repro.server`):
  warm caches, request batching, JSON-over-HTTP.
* ``query`` — one protocol request against a running server, envelope on
  stdout (exit 0 only for an ``ok`` envelope).

The fan-out/fan-in CI workflow is literally ``run --shard i/n`` in an
``n``-way job matrix followed by one ``merge --golden`` job.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core.backends import backend_spec, registered_backends
from .core.study import parse_shard, resolve_workers

PROG = "python -m repro"


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (also what the README snippet test walks)."""
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Sharded, resumable runner for the reproduced "
                    "experiment suite.")
    from . import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress messages on stderr (the "
                             "JSON document on stdout is unaffected; "
                             "REPRO_QUIET=1 does the same)")
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    run = commands.add_parser(
        "run", help="run the experiment suite (or one shard of it)",
        description="Run all or selected experiments; every completed sweep "
                    "point is checkpointed to --store, so re-running after "
                    "a kill resumes instead of recomputing.")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment names (default: the whole suite; "
                          "see 'list')")
    run.add_argument("--reduced", dest="reduced", action="store_true",
                     help="laptop-scale sweep densities (the default)")
    run.add_argument("--full", dest="reduced", action="store_false",
                     help="the paper's full sweep densities")
    run.set_defaults(reduced=True)
    run.add_argument("--shard", metavar="I/N", default=None,
                     help="run only shard I of N (deterministic round-robin "
                          "partition of every experiment's design points)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="process-pool workers per sweep (capped at the "
                          "CPU count; REPRO_WORKERS overrides)")
    run.add_argument("--backend", default="direct", metavar="SPEC",
                     help="execution backend of the application sweeps "
                          "(e.g. 'direct', 'lut'; records are bit-identical)")
    run.add_argument("--store", metavar="DIR", default=None,
                     help="persistent result store: checkpoints every sweep "
                          "point and serves completed ones on re-runs")
    run.add_argument("--out", metavar="DIR", default=None,
                     help="write <experiment>.json artifacts plus "
                          "manifest.json under DIR")
    run.add_argument("--no-ablations", dest="ablations", action="store_false",
                     help="skip the extension ablation experiments")

    merge = commands.add_parser(
        "merge", help="fold shard run directories into one result",
        description="Merge the outputs of 'run --shard i/n' jobs; rows and "
                    "Pareto fronts are bit-identical to an unsharded run "
                    "and the disjoint-cover property is validated.")
    merge.add_argument("inputs", nargs="+", metavar="DIR",
                       help="shard output directories (from 'run --out')")
    merge.add_argument("--out", metavar="DIR", default=None,
                       help="write the merged artifacts plus manifest.json "
                            "under DIR")
    merge.add_argument("--store", metavar="DIR", default=None,
                       help="fold every shard's .repro_store into DIR")
    merge.add_argument("--golden", metavar="DIR", default=None,
                       help="compare the merged rows and fronts against a "
                            "golden (unsharded) run directory; exit non-zero "
                            "on any divergence")

    lister = commands.add_parser(
        "list", help="list the experiment registry",
        description="The experiment registry: selection names for 'run' "
                    "with one-line titles.")
    lister.add_argument("--no-ablations", dest="ablations",
                        action="store_false",
                        help="hide the extension ablation experiments")

    bench = commands.add_parser(
        "bench", help="time the execution backends on one experiment",
        description="Run one experiment per execution backend and report "
                    "wall seconds plus record identity — a quick CLI "
                    "counterpart of benchmarks/perf_bench.py.")
    bench.add_argument("--experiment", default="fft_joint_frontier",
                       metavar="NAME",
                       help="experiment to time (default: %(default)s)")
    bench.add_argument("--backends", nargs="+", default=["direct", "lut"],
                       metavar="SPEC",
                       help="backends to compare (default: direct lut)")
    bench.add_argument("--full", dest="reduced", action="store_false",
                       help="time the full sweep density instead of the "
                            "reduced one")
    bench.set_defaults(reduced=True)
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="also write the JSON document to PATH")

    serve = commands.add_parser(
        "serve", help="run the long-lived evaluation server",
        description="Serve evaluate/pareto/experiments/status requests over "
                    "JSON-over-HTTP, keeping the LUT tables, the hardware "
                    "characterisation cache and the result store warm "
                    "between requests and batching concurrent same-workload "
                    "evaluations into single sweeps.")
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="interface to bind (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8023, metavar="PORT",
                       help="TCP port to bind; 0 picks a free port "
                            "(default: %(default)s)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="maximum concurrent sweep computations "
                            "(default: %(default)s)")
    serve.add_argument("--backend", default="lut", metavar="SPEC",
                       help="default execution backend for requests that "
                            "do not name one (default: %(default)s)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="persistent result store shared by all "
                            "requests; warm hits are served from it")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       metavar="SECONDS",
                       help="how long a cold evaluate waits to coalesce "
                            "with concurrent requests; 0 disables batching "
                            "(default: %(default)s)")
    serve.add_argument("--table-cache-limit", type=int, default=None,
                       metavar="N",
                       help="LRU cap on the process-wide LUT table cache "
                            "(default: REPRO_TABLE_CACHE_LIMIT or 128)")

    query = commands.add_parser(
        "query", help="send one request to a running evaluation server",
        description="POST one {action, params} request and print the "
                    "response envelope; exits 0 only for an 'ok' envelope, "
                    "1 for an error envelope, 2 if no server answered.")
    query.add_argument("action", metavar="ACTION",
                       help="protocol action (evaluate, pareto, "
                            "experiments, status)")
    query.add_argument("--url", default="http://127.0.0.1:8023",
                       metavar="URL",
                       help="server base URL (default: %(default)s)")
    query.add_argument("--params", metavar="JSON", default=None,
                       help="request parameters as one JSON object")
    query.add_argument("--param", metavar="KEY=VALUE", action="append",
                       default=[], dest="param_items",
                       help="set one parameter (VALUE parsed as JSON when "
                            "possible, kept as a string otherwise; "
                            "repeatable, applied after --params)")
    query.add_argument("--timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="give up waiting for the response after this "
                            "long (default: %(default)s)")
    return parser


def _emit(document: Dict[str, object],
          output: Optional[str] = None) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`; not an error
        pass
    if output is not None:
        Path(output).write_text(text + "\n")


#: Set by ``--quiet``; ``REPRO_QUIET`` (any non-empty value but ``0``)
#: covers invocations the flag cannot reach, e.g. inside test harnesses.
_QUIET = False


def _quiet() -> bool:
    return _QUIET or os.environ.get("REPRO_QUIET", "0") not in ("", "0")


def _log(message: str) -> None:
    if not _quiet():
        print(message, file=sys.stderr)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import run_all

    shard = parse_shard(args.shard)
    experiments = args.experiments or None
    started = time.perf_counter()
    bundle = run_all(output_dir=args.out, reduced=args.reduced,
                     include_ablations=args.ablations, workers=args.workers,
                     backend=args.backend, store=args.store, shard=shard,
                     experiments=experiments)
    seconds = time.perf_counter() - started
    _log(f"ran {len(bundle.results)} experiments in {seconds:.1f}s"
         + (f" (shard {shard[0]}/{shard[1]})" if shard else ""))
    document = {
        "command": "run",
        "seconds": round(seconds, 3),
        "workers": resolve_workers(args.workers),
        "store": args.store,
        "out": args.out,
        **bundle.manifest(),
    }
    _emit(document)
    return 0


def _compare_to_golden(merged, golden_dir: str) -> List[Dict[str, object]]:
    """Row/front divergences of the merged bundle against a golden run."""
    from .core.results import ResultBundle

    golden = ResultBundle.load_dir(golden_dir)
    mismatches: List[Dict[str, object]] = []
    for name in sorted(set(golden.results) | set(merged.results)):
        if name not in golden.results or name not in merged.results:
            mismatches.append({"experiment": name,
                               "kind": "missing",
                               "present_in": "merged" if name in merged.results
                               else "golden"})
            continue
        golden_result = golden.get(name)
        merged_result = merged.get(name)
        if merged_result.rows != golden_result.rows:
            differing = [index for index, (a, b)
                         in enumerate(zip(merged_result.rows,
                                          golden_result.rows)) if a != b]
            mismatches.append({
                "experiment": name, "kind": "rows",
                "merged_rows": len(merged_result.rows),
                "golden_rows": len(golden_result.rows),
                "first_differing_indices": differing[:8],
            })
        merged_fronts = {key: front.to_dict()
                         for key, front in merged_result.fronts.items()}
        golden_fronts = {key: front.to_dict()
                         for key, front in golden_result.fronts.items()}
        if merged_fronts != golden_fronts:
            mismatches.append({"experiment": name, "kind": "fronts",
                               "merged": sorted(merged_fronts),
                               "golden": sorted(golden_fronts)})
    return mismatches


def _cmd_merge(args: argparse.Namespace) -> int:
    from .experiments import merge_run

    started = time.perf_counter()
    merged = merge_run(args.inputs, output_dir=args.out, store=args.store)
    document: Dict[str, object] = {
        "command": "merge",
        "inputs": list(args.inputs),
        "out": args.out,
        "seconds": round(time.perf_counter() - started, 3),
        **merged.manifest(),
    }
    status = 0
    if args.golden is not None:
        mismatches = _compare_to_golden(merged, args.golden)
        document["golden"] = args.golden
        document["identical_to_golden"] = not mismatches
        if mismatches:
            document["mismatches"] = mismatches
            _log(f"FAIL: merged result diverges from the golden run in "
                 f"{len(mismatches)} place(s)")
            status = 1
        else:
            _log("merged rows and fronts are bit-identical to the golden run")
    _emit(document)
    return status


def _cmd_list(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, experiment_names

    names = experiment_names(include_ablations=args.ablations)
    _emit({
        "command": "list",
        "experiments": [
            {"name": name, "title": EXPERIMENTS[name].title,
             "ablation": EXPERIMENTS[name].ablation}
            for name in names
        ],
    })
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.backends import clear_table_cache
    from .experiments import run_all

    runs: Dict[str, Dict[str, object]] = {}
    rows_by_backend: Dict[str, List[Dict[str, object]]] = {}
    for backend in args.backends:
        clear_table_cache()
        started = time.perf_counter()
        bundle = run_all(reduced=args.reduced, backend=backend,
                         experiments=[args.experiment])
        seconds = time.perf_counter() - started
        result = bundle.get(args.experiment)
        rows_by_backend[backend_spec(backend)] = result.rows
        runs[backend_spec(backend)] = {"seconds": round(seconds, 4),
                                       "rows": len(result.rows)}
        _log(f"{args.experiment} on {backend!r}: {seconds:.2f}s")
    baseline = backend_spec(args.backends[0])
    for backend, record in runs.items():
        record["speedup"] = round(
            runs[baseline]["seconds"] / record["seconds"], 2) \
            if record["seconds"] else None
    identical = all(rows == rows_by_backend[baseline]
                    for rows in rows_by_backend.values())
    document = {
        "command": "bench",
        "experiment": args.experiment,
        "reduced": args.reduced,
        "available_backends": sorted(registered_backends()),
        "backends": runs,
        "identical_records": identical,
    }
    _emit(document, output=args.output)
    if not identical:
        _log("FAIL: backend records diverged")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .server import EvalServer
    from .server.dispatch import _status

    server = EvalServer(host=args.host, port=args.port, store=args.store,
                        backend=args.backend, workers=args.workers,
                        batch_window_s=args.batch_window,
                        table_cache_limit=args.table_cache_limit)
    _log(f"serving on {server.url} (workers={args.workers}, "
         f"backend={args.backend!r}, store={args.store!r}); Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _log("interrupted; shutting down")
    finally:
        final = _status(server.state, {})
        server.stop()
    _emit({"command": "serve", "url": server.url, **final})
    return 0


def _parse_query_params(args: argparse.Namespace) -> Dict[str, object]:
    params: Dict[str, object] = {}
    if args.params is not None:
        document = json.loads(args.params)
        if not isinstance(document, dict):
            raise ValueError("--params must be a JSON object")
        params.update(document)
    for item in args.param_items:
        key, separator, raw = item.partition("=")
        if not separator or not key:
            raise ValueError(f"--param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw  # bare strings stay strings: --param adder=ADD(16)
    return params


def _cmd_query(args: argparse.Namespace) -> int:
    from .server import ServerUnavailable, query

    try:
        envelope = query(args.url, args.action,
                         params=_parse_query_params(args),
                         timeout=args.timeout)
    except ServerUnavailable as error:
        _log(f"error: {error}")
        return 2
    _emit(envelope)
    if envelope.get("status") != "ok":
        _log(f"error [{envelope.get('code')}]: {envelope.get('message')}")
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    global _QUIET
    parser = build_parser()
    args = parser.parse_args(argv)
    _QUIET = bool(getattr(args, "quiet", False))
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    handlers = {"run": _cmd_run, "merge": _cmd_merge,
                "list": _cmd_list, "bench": _cmd_bench,
                "serve": _cmd_serve, "query": _cmd_query}
    try:
        return handlers[args.command](args)
    except (ValueError, FileNotFoundError) as error:
        _log(f"error: {error}")
        return 2
