"""``python -m repro`` — the reproduction's command-line front end.

Four subcommands wrap the experiment registry behind machine-readable JSON
output (one document on stdout; progress and diagnostics go to stderr):

* ``run`` — execute the suite (or a named subset), optionally one
  deterministic shard of it (``--shard i/n``), with per-point
  checkpointing (``--store``) and a run directory of per-experiment JSON
  artifacts plus a manifest (``--out``).  A killed run re-invoked with the
  same ``--store`` resumes where it stopped.
* ``merge`` — fold shard run directories back into one whole-suite result
  (rows and Pareto fronts bit-identical to an unsharded run), optionally
  folding the shards' stores into one (``--store``) and gating against a
  golden unsharded run (``--golden``, non-zero exit on any divergence).
* ``list`` — the experiment registry, names and titles.
* ``bench`` — wall-clock comparison of the execution backends on a named
  experiment, the CLI face of ``benchmarks/perf_bench.py``'s quick mode.

The fan-out/fan-in CI workflow is literally ``run --shard i/n`` in an
``n``-way job matrix followed by one ``merge --golden`` job.
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core.backends import backend_spec, registered_backends
from .core.study import parse_shard, resolve_workers

PROG = "python -m repro"


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (also what the README snippet test walks)."""
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Sharded, resumable runner for the reproduced "
                    "experiment suite.")
    from . import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    run = commands.add_parser(
        "run", help="run the experiment suite (or one shard of it)",
        description="Run all or selected experiments; every completed sweep "
                    "point is checkpointed to --store, so re-running after "
                    "a kill resumes instead of recomputing.")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment names (default: the whole suite; "
                          "see 'list')")
    run.add_argument("--reduced", dest="reduced", action="store_true",
                     help="laptop-scale sweep densities (the default)")
    run.add_argument("--full", dest="reduced", action="store_false",
                     help="the paper's full sweep densities")
    run.set_defaults(reduced=True)
    run.add_argument("--shard", metavar="I/N", default=None,
                     help="run only shard I of N (deterministic round-robin "
                          "partition of every experiment's design points)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="process-pool workers per sweep (capped at the "
                          "CPU count; REPRO_WORKERS overrides)")
    run.add_argument("--backend", default="direct", metavar="SPEC",
                     help="execution backend of the application sweeps "
                          "(e.g. 'direct', 'lut'; records are bit-identical)")
    run.add_argument("--store", metavar="DIR", default=None,
                     help="persistent result store: checkpoints every sweep "
                          "point and serves completed ones on re-runs")
    run.add_argument("--out", metavar="DIR", default=None,
                     help="write <experiment>.json artifacts plus "
                          "manifest.json under DIR")
    run.add_argument("--no-ablations", dest="ablations", action="store_false",
                     help="skip the extension ablation experiments")

    merge = commands.add_parser(
        "merge", help="fold shard run directories into one result",
        description="Merge the outputs of 'run --shard i/n' jobs; rows and "
                    "Pareto fronts are bit-identical to an unsharded run "
                    "and the disjoint-cover property is validated.")
    merge.add_argument("inputs", nargs="+", metavar="DIR",
                       help="shard output directories (from 'run --out')")
    merge.add_argument("--out", metavar="DIR", default=None,
                       help="write the merged artifacts plus manifest.json "
                            "under DIR")
    merge.add_argument("--store", metavar="DIR", default=None,
                       help="fold every shard's .repro_store into DIR")
    merge.add_argument("--golden", metavar="DIR", default=None,
                       help="compare the merged rows and fronts against a "
                            "golden (unsharded) run directory; exit non-zero "
                            "on any divergence")

    lister = commands.add_parser(
        "list", help="list the experiment registry",
        description="The experiment registry: selection names for 'run' "
                    "with one-line titles.")
    lister.add_argument("--no-ablations", dest="ablations",
                        action="store_false",
                        help="hide the extension ablation experiments")

    bench = commands.add_parser(
        "bench", help="time the execution backends on one experiment",
        description="Run one experiment per execution backend and report "
                    "wall seconds plus record identity — a quick CLI "
                    "counterpart of benchmarks/perf_bench.py.")
    bench.add_argument("--experiment", default="fft_joint_frontier",
                       metavar="NAME",
                       help="experiment to time (default: %(default)s)")
    bench.add_argument("--backends", nargs="+", default=["direct", "lut"],
                       metavar="SPEC",
                       help="backends to compare (default: direct lut)")
    bench.add_argument("--full", dest="reduced", action="store_false",
                       help="time the full sweep density instead of the "
                            "reduced one")
    bench.set_defaults(reduced=True)
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="also write the JSON document to PATH")
    return parser


def _emit(document: Dict[str, object],
          output: Optional[str] = None) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`; not an error
        pass
    if output is not None:
        Path(output).write_text(text + "\n")


def _log(message: str) -> None:
    print(message, file=sys.stderr)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import run_all

    shard = parse_shard(args.shard)
    experiments = args.experiments or None
    started = time.perf_counter()
    bundle = run_all(output_dir=args.out, reduced=args.reduced,
                     include_ablations=args.ablations, workers=args.workers,
                     backend=args.backend, store=args.store, shard=shard,
                     experiments=experiments)
    seconds = time.perf_counter() - started
    _log(f"ran {len(bundle.results)} experiments in {seconds:.1f}s"
         + (f" (shard {shard[0]}/{shard[1]})" if shard else ""))
    document = {
        "command": "run",
        "seconds": round(seconds, 3),
        "workers": resolve_workers(args.workers),
        "store": args.store,
        "out": args.out,
        **bundle.manifest(),
    }
    _emit(document)
    return 0


def _compare_to_golden(merged, golden_dir: str) -> List[Dict[str, object]]:
    """Row/front divergences of the merged bundle against a golden run."""
    from .core.results import ResultBundle

    golden = ResultBundle.load_dir(golden_dir)
    mismatches: List[Dict[str, object]] = []
    for name in sorted(set(golden.results) | set(merged.results)):
        if name not in golden.results or name not in merged.results:
            mismatches.append({"experiment": name,
                               "kind": "missing",
                               "present_in": "merged" if name in merged.results
                               else "golden"})
            continue
        golden_result = golden.get(name)
        merged_result = merged.get(name)
        if merged_result.rows != golden_result.rows:
            differing = [index for index, (a, b)
                         in enumerate(zip(merged_result.rows,
                                          golden_result.rows)) if a != b]
            mismatches.append({
                "experiment": name, "kind": "rows",
                "merged_rows": len(merged_result.rows),
                "golden_rows": len(golden_result.rows),
                "first_differing_indices": differing[:8],
            })
        merged_fronts = {key: front.to_dict()
                         for key, front in merged_result.fronts.items()}
        golden_fronts = {key: front.to_dict()
                         for key, front in golden_result.fronts.items()}
        if merged_fronts != golden_fronts:
            mismatches.append({"experiment": name, "kind": "fronts",
                               "merged": sorted(merged_fronts),
                               "golden": sorted(golden_fronts)})
    return mismatches


def _cmd_merge(args: argparse.Namespace) -> int:
    from .experiments import merge_run

    started = time.perf_counter()
    merged = merge_run(args.inputs, output_dir=args.out, store=args.store)
    document: Dict[str, object] = {
        "command": "merge",
        "inputs": list(args.inputs),
        "out": args.out,
        "seconds": round(time.perf_counter() - started, 3),
        **merged.manifest(),
    }
    status = 0
    if args.golden is not None:
        mismatches = _compare_to_golden(merged, args.golden)
        document["golden"] = args.golden
        document["identical_to_golden"] = not mismatches
        if mismatches:
            document["mismatches"] = mismatches
            _log(f"FAIL: merged result diverges from the golden run in "
                 f"{len(mismatches)} place(s)")
            status = 1
        else:
            _log("merged rows and fronts are bit-identical to the golden run")
    _emit(document)
    return status


def _cmd_list(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, experiment_names

    names = experiment_names(include_ablations=args.ablations)
    _emit({
        "command": "list",
        "experiments": [
            {"name": name, "title": EXPERIMENTS[name].title,
             "ablation": EXPERIMENTS[name].ablation}
            for name in names
        ],
    })
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.backends import clear_table_cache
    from .experiments import run_all

    runs: Dict[str, Dict[str, object]] = {}
    rows_by_backend: Dict[str, List[Dict[str, object]]] = {}
    for backend in args.backends:
        clear_table_cache()
        started = time.perf_counter()
        bundle = run_all(reduced=args.reduced, backend=backend,
                         experiments=[args.experiment])
        seconds = time.perf_counter() - started
        result = bundle.get(args.experiment)
        rows_by_backend[backend_spec(backend)] = result.rows
        runs[backend_spec(backend)] = {"seconds": round(seconds, 4),
                                       "rows": len(result.rows)}
        _log(f"{args.experiment} on {backend!r}: {seconds:.2f}s")
    baseline = backend_spec(args.backends[0])
    for backend, record in runs.items():
        record["speedup"] = round(
            runs[baseline]["seconds"] / record["seconds"], 2) \
            if record["seconds"] else None
    identical = all(rows == rows_by_backend[baseline]
                    for rows in rows_by_backend.values())
    document = {
        "command": "bench",
        "experiment": args.experiment,
        "reduced": args.reduced,
        "available_backends": sorted(registered_backends()),
        "backends": runs,
        "identical_records": identical,
    }
    _emit(document, output=args.output)
    if not identical:
        _log("FAIL: backend records diverged")
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    handlers = {"run": _cmd_run, "merge": _cmd_merge,
                "list": _cmd_list, "bench": _cmd_bench}
    try:
        return handlers[args.command](args)
    except (ValueError, FileNotFoundError) as error:
        _log(f"error: {error}")
        return 2
