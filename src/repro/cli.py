"""``python -m repro`` — the reproduction's command-line front end.

Ten subcommands wrap the experiment registry behind machine-readable JSON
output (one document on stdout; progress and diagnostics go to stderr,
which ``--quiet`` / ``REPRO_QUIET=1`` silences):

* ``run`` — execute the suite (or a named subset), optionally one
  deterministic shard of it (``--shard i/n``), with per-point
  checkpointing (``--store``) and a run directory of per-experiment JSON
  artifacts plus a manifest (``--out``).  A killed run re-invoked with the
  same ``--store`` resumes where it stopped.
* ``merge`` — fold shard run directories back into one whole-suite result
  (rows and Pareto fronts bit-identical to an unsharded run), optionally
  folding the shards' stores into one (``--store``) and gating against a
  golden unsharded run (``--golden``, non-zero exit on any divergence).
* ``list`` — the experiment registry, names and titles.
* ``search`` — adaptive design-space search (:mod:`repro.search`) over a
  named target: successive halving on enumerable spaces, the NSGA-II
  evolutionary driver on spaces too large to enumerate.  One seed fixes
  the whole candidate schedule; re-running against the same ``--store``
  replays warm.  ``--gate-exhaustive`` / ``--max-cost-fraction`` turn the
  run into the CI gate: the searched front must equal the exhaustively
  enumerated front at a bounded fraction of its evaluation cost.
* ``bench`` — wall-clock comparison of the execution backends on a named
  experiment, the CLI face of ``benchmarks/perf_bench.py``'s quick mode.
* ``fleet`` — lease-based fleet execution over a shared queue directory
  (:mod:`repro.fleet`): ``plan`` carves the suite into shard tasks,
  ``work`` runs a crash-safe claim/heartbeat/commit worker, ``status``
  watches progress and reclaims expired leases, ``harvest`` folds the
  partial results back together bit-identically.
* ``report`` — the static self-contained HTML results dashboard
  (:mod:`repro.report`) from a merged run directory plus the committed
  ``BENCH_*.json`` history.
* ``serve`` — the long-lived evaluation server (:mod:`repro.server`):
  warm caches, request batching, JSON-over-HTTP, deadline-based load
  shedding and a SIGTERM drain that finishes in-flight requests.
* ``query`` — one protocol request against a running server, envelope on
  stdout (exit 0 only for an ``ok`` envelope).
* ``store`` — result-store maintenance: ``scrub`` detects corrupt or
  truncated records and quarantines them out of every future read path.

``run``, ``fleet work`` and ``serve`` accept ``--fault-plan`` — a seeded
fault-injection plan (:mod:`repro.faults`) that deterministically breaks
the store/fleet/server I/O paths for chaos testing; the CI chaos matrix
drives exactly these flags.

The fan-out/fan-in CI workflow is literally ``run --shard i/n`` in an
``n``-way job matrix followed by one ``merge --golden`` job; the fleet
CI job is the dynamic version — 6 planned shards, 3 workers, one of
them SIGKILLed mid-lease, same golden gate.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core.backends import backend_spec, describe_backends, registered_backends
from .core.study import parse_shard, resolve_workers

PROG = "python -m repro"


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (also what the README snippet test walks)."""
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Sharded, resumable runner for the reproduced "
                    "experiment suite.")
    from . import __version__
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress messages on stderr (the "
                             "JSON document on stdout is unaffected; "
                             "REPRO_QUIET=1 does the same)")
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    run = commands.add_parser(
        "run", help="run the experiment suite (or one shard of it)",
        description="Run all or selected experiments; every completed sweep "
                    "point is checkpointed to --store, so re-running after "
                    "a kill resumes instead of recomputing.")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment names (default: the whole suite; "
                          "see 'list')")
    run.add_argument("--reduced", dest="reduced", action="store_true",
                     help="laptop-scale sweep densities (the default)")
    run.add_argument("--full", dest="reduced", action="store_false",
                     help="the paper's full sweep densities")
    run.set_defaults(reduced=True)
    run.add_argument("--shard", metavar="I/N", default=None,
                     help="run only shard I of N (deterministic round-robin "
                          "partition of every experiment's design points)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="process-pool workers per sweep (capped at the "
                          "CPU count; REPRO_WORKERS overrides)")
    run.add_argument("--backend", default="direct", metavar="SPEC",
                     help="execution backend of the application sweeps "
                          "(e.g. 'direct', 'lut'; records are bit-identical)")
    run.add_argument("--store", metavar="DIR", default=None,
                     help="persistent result store: checkpoints every sweep "
                          "point and serves completed ones on re-runs")
    run.add_argument("--out", metavar="DIR", default=None,
                     help="write <experiment>.json artifacts plus "
                          "manifest.json under DIR")
    run.add_argument("--no-ablations", dest="ablations", action="store_false",
                     help="skip the extension ablation experiments")
    run.add_argument("--fault-plan", metavar="PATH", default=None,
                     help="activate a seeded fault-injection plan for this "
                          "run (chaos testing; exported to spawned workers "
                          "via REPRO_FAULT_PLAN)")

    merge = commands.add_parser(
        "merge", help="fold shard run directories into one result",
        description="Merge the outputs of 'run --shard i/n' jobs; rows and "
                    "Pareto fronts are bit-identical to an unsharded run "
                    "and the disjoint-cover property is validated.")
    merge.add_argument("inputs", nargs="+", metavar="DIR",
                       help="shard output directories (from 'run --out')")
    merge.add_argument("--out", metavar="DIR", default=None,
                       help="write the merged artifacts plus manifest.json "
                            "under DIR")
    merge.add_argument("--store", metavar="DIR", default=None,
                       help="fold every shard's .repro_store into DIR")
    merge.add_argument("--golden", metavar="DIR", default=None,
                       help="compare the merged rows and fronts against a "
                            "golden (unsharded) run directory; exit non-zero "
                            "on any divergence")

    lister = commands.add_parser(
        "list", help="list the experiment registry",
        description="The experiment registry: selection names for 'run' "
                    "with one-line titles.")
    lister.add_argument("--no-ablations", dest="ablations",
                        action="store_false",
                        help="hide the extension ablation experiments")

    bench = commands.add_parser(
        "bench", help="time the execution backends on one experiment",
        description="Run one experiment per execution backend and report "
                    "wall seconds plus record identity — a quick CLI "
                    "counterpart of benchmarks/perf_bench.py.")
    bench.add_argument("--experiment", default="fft_joint_frontier",
                       metavar="NAME",
                       help="experiment to time (default: %(default)s)")
    bench.add_argument("--backends", nargs="+", default=["direct", "lut"],
                       metavar="SPEC",
                       help="backends to compare (default: direct lut)")
    bench.add_argument("--full", dest="reduced", action="store_false",
                       help="time the full sweep density instead of the "
                            "reduced one")
    bench.set_defaults(reduced=True)
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="also write the JSON document to PATH")

    search = commands.add_parser(
        "search", help="adaptively search a design space for its front",
        description="Explore a named design-space target with an adaptive "
                    "driver (successive halving or the NSGA-II evolutionary "
                    "loop) instead of enumerating it; one seed fixes the "
                    "whole candidate schedule, every evaluation flows "
                    "through --store, and re-running the same seed against "
                    "the same store replays at zero simulation cost.")
    search.add_argument("target", nargs="?", default="fft_joint",
                        metavar="TARGET",
                        help="search target: fft_joint (enumerable, gated), "
                             "fft_per_stage or dct_per_pass (heterogeneous; "
                             "default: %(default)s)")
    search.add_argument("--strategy", default=None, metavar="NAME",
                        help="search driver: 'halving' (enumerable spaces) "
                             "or 'nsga2' (default: the target's own)")
    search.add_argument("--seed", type=int, default=7, metavar="N",
                        help="seed of the single random stream driving the "
                             "candidate schedule (default: %(default)s)")
    search.add_argument("--budget", type=int, default=None, metavar="N",
                        help="hard cap on candidate evaluations "
                             "(default: the driver's own schedule)")
    search.add_argument("--population", type=int, default=None, metavar="N",
                        help="nsga2 population size (default: driver's)")
    search.add_argument("--generations", type=int, default=None, metavar="N",
                        help="nsga2 generation count (default: driver's)")
    search.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool workers per evaluation batch "
                             "(capped at the CPU count)")
    search.add_argument("--backend", default="direct", metavar="SPEC",
                        help="execution backend of the candidate sweeps "
                             "(default: %(default)s)")
    search.add_argument("--store", metavar="DIR", default=None,
                        help="persistent result store: checkpoints every "
                             "candidate, serves completed ones on re-runs")
    search.add_argument("--reduced", dest="reduced", action="store_true",
                        help="the target's reduced stimulus density "
                             "(the default)")
    search.add_argument("--full", dest="reduced", action="store_false",
                        help="the target's full stimulus density (what the "
                             "CI gate runs)")
    search.set_defaults(reduced=True)
    search.add_argument("--gate-exhaustive", action="store_true",
                        help="also enumerate the whole space and fail "
                             "unless the searched front equals the "
                             "exhaustive front exactly (enumerable "
                             "targets only)")
    search.add_argument("--max-cost-fraction", type=float, default=None,
                        metavar="F",
                        help="fail if the search spent more than this "
                             "fraction of the exhaustive evaluation cost "
                             "(e.g. 0.35; enumerable targets only)")
    search.add_argument("--front-out", metavar="PATH", default=None,
                        help="also write the searched front as a "
                             "standalone JSON document to PATH")

    serve = commands.add_parser(
        "serve", help="run the long-lived evaluation server",
        description="Serve evaluate/pareto/experiments/status requests over "
                    "JSON-over-HTTP, keeping the LUT tables, the hardware "
                    "characterisation cache and the result store warm "
                    "between requests and batching concurrent same-workload "
                    "evaluations into single sweeps.")
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="interface to bind (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8023, metavar="PORT",
                       help="TCP port to bind; 0 picks a free port "
                            "(default: %(default)s)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="maximum concurrent sweep computations "
                            "(default: %(default)s)")
    serve.add_argument("--backend", default="lut", metavar="SPEC",
                       help="default execution backend for requests that "
                            "do not name one (default: %(default)s)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="persistent result store shared by all "
                            "requests; warm hits are served from it")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       metavar="SECONDS",
                       help="how long a cold evaluate waits to coalesce "
                            "with concurrent requests; 0 disables batching "
                            "(default: %(default)s)")
    serve.add_argument("--table-cache-limit", type=int, default=None,
                       metavar="N",
                       help="LRU cap on the process-wide LUT table cache "
                            "(default: REPRO_TABLE_CACHE_LIMIT or 128)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="request deadline for load shedding: a request "
                            "that cannot get a compute slot within this "
                            "long is refused with HTTP 503 + Retry-After "
                            "(default: queue without bound)")
    serve.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="activate a seeded fault-injection plan "
                            "(chaos testing: dropped connections, slow "
                            "handlers, injected 500s)")

    fleet = commands.add_parser(
        "fleet", help="coordinate many machines over a shared work queue",
        description="Lease-based fleet execution: 'plan' carves the suite "
                    "into shard tasks inside a shared directory, any number "
                    "of 'work' processes claim leases / heartbeat / push "
                    "partial results (crash-safe: dead workers' leases "
                    "expire and are reclaimed), 'status' watches progress "
                    "and 'harvest' folds everything back together, "
                    "bit-identical to a single-process run.")
    fleet_commands = fleet.add_subparsers(dest="fleet_command",
                                          metavar="VERB")

    fleet_plan = fleet_commands.add_parser(
        "plan", help="lay out a new work queue of shard tasks",
        description="Create the queue directory: one lease-able task per "
                    "shard of the selected experiments.")
    fleet_plan.add_argument("queue", metavar="QUEUE_DIR",
                            help="queue directory (shared between workers; "
                                 "must not already hold a plan)")
    fleet_plan.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                            help="experiment names (default: the whole "
                                 "suite; see 'list')")
    fleet_plan.add_argument("--shards", type=int, default=4, metavar="N",
                            help="number of shard tasks to carve the suite "
                                 "into (default: %(default)s)")
    fleet_plan.add_argument("--reduced", dest="reduced", action="store_true",
                            help="laptop-scale sweep densities (the default)")
    fleet_plan.add_argument("--full", dest="reduced", action="store_false",
                            help="the paper's full sweep densities")
    fleet_plan.set_defaults(reduced=True)
    fleet_plan.add_argument("--backend", default="direct", metavar="SPEC",
                            help="execution backend every worker uses "
                                 "(default: %(default)s)")
    fleet_plan.add_argument("--ttl", type=float, default=60.0,
                            metavar="SECONDS",
                            help="lease time-to-live: a lease whose "
                                 "heartbeat is older than this is "
                                 "reclaimable (default: %(default)s)")
    fleet_plan.add_argument("--max-attempts", type=int, default=3,
                            metavar="N",
                            help="failed attempts (crashes or errors) before "
                                 "a task is tombstoned as failed "
                                 "(default: %(default)s)")
    fleet_plan.add_argument("--no-ablations", dest="ablations",
                            action="store_false",
                            help="skip the extension ablation experiments")

    fleet_work = fleet_commands.add_parser(
        "work", help="run one fleet worker until the queue drains",
        description="Claim shard leases, heartbeat while computing, push "
                    "per-attempt artifacts and a per-worker store back into "
                    "the queue; backs off with jitter when nothing is "
                    "claimable and exits with a JSON summary once every "
                    "task is terminal.")
    fleet_work.add_argument("queue", metavar="QUEUE_DIR",
                            help="planned queue directory")
    fleet_work.add_argument("--owner", default=None, metavar="NAME",
                            help="worker identity recorded in leases "
                                 "(default: host-pid-thread)")
    fleet_work.add_argument("--workers", type=int, default=1, metavar="N",
                            help="process-pool workers per sweep inside "
                                 "this fleet worker (default: %(default)s)")
    fleet_work.add_argument("--max-tasks", type=int, default=None,
                            metavar="N",
                            help="stop after completing N tasks "
                                 "(default: run until drained)")
    fleet_work.add_argument("--poll-retries", type=int, default=20,
                            metavar="N",
                            help="polls of a busy queue before giving up "
                                 "(default: %(default)s)")
    fleet_work.add_argument("--poll-delay", type=float, default=0.25,
                            metavar="SECONDS",
                            help="base delay of the jittered exponential "
                                 "poll backoff (default: %(default)s)")
    fleet_work.add_argument("--poll-deadline", type=float, default=None,
                            metavar="SECONDS",
                            help="give up polling a busy queue once the "
                                 "next backoff sleep would cross this "
                                 "wall-time budget (default: attempts "
                                 "bound only)")
    fleet_work.add_argument("--fault-plan", metavar="PATH", default=None,
                            help="activate a seeded fault-injection plan in "
                                 "this worker (chaos testing: injected "
                                 "crashes, heartbeat stalls, torn writes)")

    fleet_status = fleet_commands.add_parser(
        "status", help="report live queue progress counters",
        description="One observation pass: reclaim expired leases (unless "
                    "--no-reclaim), then report pending/leased/done/failed "
                    "counts, reclaim totals and per-worker heartbeats.")
    fleet_status.add_argument("queue", metavar="QUEUE_DIR",
                              help="planned queue directory")
    fleet_status.add_argument("--no-reclaim", dest="reclaim",
                              action="store_false",
                              help="observe only; do not reclaim expired "
                                   "leases")

    fleet_harvest = fleet_commands.add_parser(
        "harvest", help="fold a drained queue into one merged result",
        description="Merge every completed task's artifacts (bit-identical "
                    "to an unsharded run), absorb the per-worker stores, "
                    "and optionally gate against a golden run directory; "
                    "non-zero exit while tasks are outstanding or any task "
                    "exhausted its retries.")
    fleet_harvest.add_argument("queue", metavar="QUEUE_DIR",
                               help="planned queue directory")
    fleet_harvest.add_argument("--out", metavar="DIR", default=None,
                               help="write the merged artifacts plus "
                                    "manifest.json under DIR")
    fleet_harvest.add_argument("--store", metavar="DIR", default=None,
                               help="fold every per-worker store into DIR")
    fleet_harvest.add_argument("--golden", metavar="DIR", default=None,
                               help="compare the harvested rows and fronts "
                                    "against a golden (unsharded) run "
                                    "directory; exit non-zero on divergence")

    report = commands.add_parser(
        "report", help="render the static HTML results dashboard",
        description="Generate a self-contained HTML dashboard (inline SVG, "
                    "no scripts) from a merged run directory plus the "
                    "committed BENCH_*.json history: per-app "
                    "quality-versus-energy Pareto fronts and the perf/serve "
                    "benchmark trajectories.")
    report.add_argument("bundle", metavar="RUN_DIR",
                        help="merged run directory (from 'run --out', "
                             "'merge --out' or 'fleet harvest --out')")
    report.add_argument("--bench", metavar="PATH", action="append",
                        default=None, dest="bench_paths",
                        help="bench history JSON to include (repeatable; "
                             "default: BENCH_*.json in the working "
                             "directory)")
    report.add_argument("--output", metavar="PATH", default="report.html",
                        help="dashboard file to write "
                             "(default: %(default)s)")
    report.add_argument("--title", metavar="TEXT",
                        default="repro results dashboard",
                        help="dashboard heading (default: %(default)s)")

    query = commands.add_parser(
        "query", help="send one request to a running evaluation server",
        description="POST one {action, params} request and print the "
                    "response envelope; exits 0 only for an 'ok' envelope, "
                    "1 for an error envelope, 2 if no server answered.")
    query.add_argument("action", metavar="ACTION",
                       help="protocol action (evaluate, pareto, "
                            "experiments, status)")
    query.add_argument("--url", default="http://127.0.0.1:8023",
                       metavar="URL",
                       help="server base URL (default: %(default)s)")
    query.add_argument("--params", metavar="JSON", default=None,
                       help="request parameters as one JSON object")
    query.add_argument("--param", metavar="KEY=VALUE", action="append",
                       default=[], dest="param_items",
                       help="set one parameter (VALUE parsed as JSON when "
                            "possible, kept as a string otherwise; "
                            "repeatable, applied after --params)")
    query.add_argument("--timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="give up waiting for the response after this "
                            "long (default: %(default)s)")
    query.add_argument("--retries", type=int, default=2, metavar="N",
                       help="transport-failure retries with exponential "
                            "backoff before giving up; 0 fails on the "
                            "first connect error (default: %(default)s)")
    query.add_argument("--retry-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="bound the whole retry loop in wall time: "
                            "once the next backoff sleep would cross this "
                            "budget, fail (or return the 503 envelope) "
                            "immediately (default: retries bound only)")

    store = commands.add_parser(
        "store", help="inspect and repair a persistent result store",
        description="Maintenance verbs for a --store directory; 'scrub' "
                    "detects corrupt or truncated records (torn writes, "
                    "bit rot, hand edits) and quarantines them so no "
                    "future load or absorb ever reads them.")
    store_commands = store.add_subparsers(dest="store_command",
                                          metavar="VERB")
    store_scrub = store_commands.add_parser(
        "scrub", help="quarantine corrupt or truncated store records",
        description="Validate every record file (JSON shape, store "
                    "version, kind, content digest) and move the invalid "
                    "ones into quarantine/ inside the store, preserving "
                    "their relative paths for forensics; reports counts "
                    "by corruption reason.")
    store_scrub.add_argument("store", metavar="DIR",
                             help="result store directory to scrub")
    store_scrub.add_argument("--dry-run", action="store_true",
                             help="detect and report only; move nothing")
    return parser


def _emit(document: Dict[str, object],
          output: Optional[str] = None) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into `head`; not an error
        pass
    if output is not None:
        Path(output).write_text(text + "\n")


#: Set by ``--quiet``; ``REPRO_QUIET`` (any non-empty value but ``0``)
#: covers invocations the flag cannot reach, e.g. inside test harnesses.
_QUIET = False


def _quiet() -> bool:
    return _QUIET or os.environ.get("REPRO_QUIET", "0") not in ("", "0")


def _log(message: str) -> None:
    if not _quiet():
        print(message, file=sys.stderr)


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import run_all

    shard = parse_shard(args.shard)
    experiments = args.experiments or None
    started = time.perf_counter()
    bundle = run_all(output_dir=args.out, reduced=args.reduced,
                     include_ablations=args.ablations, workers=args.workers,
                     backend=args.backend, store=args.store, shard=shard,
                     experiments=experiments)
    seconds = time.perf_counter() - started
    _log(f"ran {len(bundle.results)} experiments in {seconds:.1f}s"
         + (f" (shard {shard[0]}/{shard[1]})" if shard else ""))
    document = {
        "command": "run",
        "seconds": round(seconds, 3),
        "workers": resolve_workers(args.workers),
        "store": args.store,
        "out": args.out,
        **bundle.manifest(),
    }
    _emit(document)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .experiments import merge_run
    from .experiments.runner import compare_to_golden

    started = time.perf_counter()
    merged = merge_run(args.inputs, output_dir=args.out, store=args.store)
    document: Dict[str, object] = {
        "command": "merge",
        "inputs": list(args.inputs),
        "out": args.out,
        "seconds": round(time.perf_counter() - started, 3),
        **merged.manifest(),
    }
    status = 0
    if args.golden is not None:
        mismatches = compare_to_golden(merged, args.golden)
        document["golden"] = args.golden
        document["identical_to_golden"] = not mismatches
        if mismatches:
            document["mismatches"] = mismatches
            _log(f"FAIL: merged result diverges from the golden run in "
                 f"{len(mismatches)} place(s)")
            status = 1
        else:
            _log("merged rows and fronts are bit-identical to the golden run")
    _emit(document)
    return status


def _cmd_list(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, experiment_names

    names = experiment_names(include_ablations=args.ablations)
    _emit({
        "command": "list",
        "experiments": [
            {"name": name, "title": EXPERIMENTS[name].title,
             "ablation": EXPERIMENTS[name].ablation}
            for name in names
        ],
        "backends": describe_backends(),
    })
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.backends import clear_table_cache
    from .experiments import run_all

    runs: Dict[str, Dict[str, object]] = {}
    rows_by_backend: Dict[str, List[Dict[str, object]]] = {}
    for backend in args.backends:
        clear_table_cache()
        started = time.perf_counter()
        bundle = run_all(reduced=args.reduced, backend=backend,
                         experiments=[args.experiment])
        seconds = time.perf_counter() - started
        result = bundle.get(args.experiment)
        rows_by_backend[backend_spec(backend)] = result.rows
        runs[backend_spec(backend)] = {"seconds": round(seconds, 4),
                                       "rows": len(result.rows)}
        _log(f"{args.experiment} on {backend!r}: {seconds:.2f}s")
    baseline = backend_spec(args.backends[0])
    for backend, record in runs.items():
        record["speedup"] = round(
            runs[baseline]["seconds"] / record["seconds"], 2) \
            if record["seconds"] else None
    identical = all(rows == rows_by_backend[baseline]
                    for rows in rows_by_backend.values())
    document = {
        "command": "bench",
        "experiment": args.experiment,
        "reduced": args.reduced,
        "available_backends": sorted(registered_backends()),
        "backend_details": describe_backends(),
        "backends": runs,
        "identical_records": identical,
    }
    _emit(document, output=args.output)
    if not identical:
        _log("FAIL: backend records diverged")
        return 1
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .search import get_target
    from .search.evaluator import search_row

    target = get_target(args.target)
    gating = args.gate_exhaustive or args.max_cost_fraction is not None
    if gating and not target.enumerable:
        raise ValueError(
            f"target {target.name!r} is not enumerable; the exhaustive "
            f"gates need a finite space (use 'fft_joint')")
    strategy = target.strategy(args.strategy, seed=args.seed,
                               budget=args.budget,
                               population=args.population,
                               generations=args.generations)
    study = target.study(reduced=args.reduced, backend=args.backend,
                         store=args.store)
    started = time.perf_counter()
    outcome = study.search(strategy, workers=args.workers)
    seconds = time.perf_counter() - started
    _log(f"{target.name}: {strategy.name} evaluated {outcome.evaluations} "
         f"candidate(s) of {outcome.space_size} in {seconds:.1f}s — "
         f"{len(outcome.front.records)} on the front, "
         f"{outcome.store_hits} served warm")
    document: Dict[str, object] = {
        "command": "search",
        "target": target.name,
        "reduced": args.reduced,
        "seed": args.seed,
        "workers": resolve_workers(args.workers),
        "store": args.store,
        "seconds": round(seconds, 3),
        **outcome.to_dict(),
    }
    status = 0
    if args.max_cost_fraction is not None:
        fraction = outcome.cost_units / float(outcome.space_size)
        document["cost_fraction"] = fraction
        document["max_cost_fraction"] = args.max_cost_fraction
        if fraction > args.max_cost_fraction:
            _log(f"FAIL: search cost {fraction:.1%} of the exhaustive "
                 f"evaluations (gate: {args.max_cost_fraction:.1%})")
            status = 1
    if args.gate_exhaustive:
        exhaustive = (target.study(reduced=args.reduced,
                                   backend=args.backend, store=args.store)
                      .design_space(target.space())
                      .rows(search_row)
                      .run(workers=args.workers))
        reference = exhaustive.front(target.quality, target.cost)
        recall = outcome.front.rows == reference.rows
        document["exhaustive_evaluations"] = len(exhaustive.rows)
        document["exhaustive_front_points"] = len(reference.records)
        document["front_matches_exhaustive"] = recall
        if recall:
            _log("searched front is exactly the exhaustive front "
                 f"({len(reference.records)} point(s))")
        else:
            _log("FAIL: searched front diverges from the exhaustive front")
            status = 1
    if args.front_out is not None:
        outcome.front.save_json(args.front_out)
        document["front_out"] = args.front_out
    _emit(document)
    return status


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command is None:
        build_parser().parse_args(["fleet", "--help"])  # prints and exits
        return 2  # pragma: no cover - parse_args exits above

    if args.fleet_command == "plan":
        from .fleet import plan_queue

        document = plan_queue(args.queue,
                              experiments=args.experiments or None,
                              shards=args.shards, reduced=args.reduced,
                              backend=args.backend, ttl_s=args.ttl,
                              max_attempts=args.max_attempts,
                              include_ablations=args.ablations)
        _log(f"planned {len(document['tasks'])} task(s) under {args.queue}")
        _emit({"command": "fleet plan", **document})
        return 0

    if args.fleet_command == "work":
        import signal

        from .fleet import FleetWorker

        worker = FleetWorker(args.queue, owner=args.owner,
                             workers=args.workers, max_tasks=args.max_tasks,
                             poll_retries=args.poll_retries,
                             poll_base_delay=args.poll_delay,
                             poll_deadline_s=args.poll_deadline)
        _log(f"worker {worker.owner!r} joining {args.queue}")

        def _on_term(signum: int, frame: object) -> None:
            _log(f"worker {worker.owner!r}: SIGTERM — finishing the task "
                 f"in flight, then draining")
            worker.request_drain()

        previous = signal.signal(signal.SIGTERM, _on_term)
        try:
            summary = worker.run()
        finally:
            signal.signal(signal.SIGTERM, previous)
        _log(f"worker {worker.owner!r}: {summary['completed']} task(s) "
             f"completed, drained={summary['drained']}")
        _emit({"command": "fleet work", **summary})
        reached_cap = (args.max_tasks is not None
                       and len(summary["tasks"]) >= args.max_tasks)
        return 0 if (summary["drained"] or reached_cap
                     or summary["drain_requested"]) else 1

    if args.fleet_command == "status":
        from .fleet import queue_status

        status = queue_status(args.queue, reclaim=args.reclaim)
        _emit({"command": "fleet status", **status})
        return 0

    if args.fleet_command == "harvest":
        from .fleet import harvest

        document, status = harvest(args.queue, output_dir=args.out,
                                   store=args.store, golden=args.golden)
        if status:
            _log(f"FAIL: {document.get('error', 'harvest diverged from the golden run')}")
        elif args.golden is not None:
            _log("harvested rows and fronts are bit-identical to the "
                 "golden run")
        _emit({"command": "fleet harvest", **document})
        return status

    raise ValueError(f"unknown fleet verb {args.fleet_command!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import generate_report

    document = generate_report(args.bundle, bench_paths=args.bench_paths,
                               output=args.output, title=args.title,
                               generated=time.strftime("%Y-%m-%d %H:%M:%S"))
    _log(f"wrote {document['output']} ({document['bytes']} bytes, "
         f"{document['fronts']} front(s))")
    _emit({"command": "report", **document})
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .server import EvalServer
    from .server.dispatch import _status

    server = EvalServer(host=args.host, port=args.port, store=args.store,
                        backend=args.backend, workers=args.workers,
                        batch_window_s=args.batch_window,
                        table_cache_limit=args.table_cache_limit,
                        deadline_s=args.deadline)
    _log(f"serving on {server.url} (workers={args.workers}, "
         f"backend={args.backend!r}, store={args.store!r}); Ctrl-C to stop")

    # SIGTERM = graceful drain: stop accepting, let in-flight requests
    # finish.  The handler only spawns a thread — EvalServer.drain cannot
    # run on serve_forever's own (this) thread, which shutdown() blocks.
    drain: Dict[str, object] = {}

    def _on_term(signum: int, frame: object) -> None:
        if "thread" in drain:
            return  # a second SIGTERM changes nothing
        _log("SIGTERM: draining — refusing new connections, finishing "
             "in-flight requests")
        thread = threading.Thread(target=lambda: drain.update(
            remaining=server.drain()), name="serve-drain", daemon=True)
        drain["thread"] = thread
        thread.start()

    previous = signal.signal(signal.SIGTERM, _on_term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _log("interrupted; shutting down")
    finally:
        thread = drain.get("thread")
        if isinstance(thread, threading.Thread):
            thread.join(timeout=30.0)
        signal.signal(signal.SIGTERM, previous)
        final = _status(server.state, {})
        server.stop()
    document = {"command": "serve", "url": server.url, **final}
    if "thread" in drain:
        document["drained"] = True
        document["in_flight_at_close"] = drain.get("remaining")
    _emit(document)
    return 0


def _parse_query_params(args: argparse.Namespace) -> Dict[str, object]:
    params: Dict[str, object] = {}
    if args.params is not None:
        document = json.loads(args.params)
        if not isinstance(document, dict):
            raise ValueError("--params must be a JSON object")
        params.update(document)
    for item in args.param_items:
        key, separator, raw = item.partition("=")
        if not separator or not key:
            raise ValueError(f"--param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw  # bare strings stay strings: --param adder=ADD(16)
    return params


def _cmd_query(args: argparse.Namespace) -> int:
    from .server import ServerUnavailable, query

    try:
        envelope = query(args.url, args.action,
                         params=_parse_query_params(args),
                         timeout=args.timeout, retries=args.retries,
                         retry_deadline_s=args.retry_deadline)
    except ServerUnavailable as error:
        _log(f"error: {error}")
        return 2
    _emit(envelope)
    if envelope.get("status") != "ok":
        _log(f"error [{envelope.get('code')}]: {envelope.get('message')}")
        return 1
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command is None:
        build_parser().parse_args(["store", "--help"])  # prints and exits
        return 2  # pragma: no cover - parse_args exits above

    if args.store_command == "scrub":
        from .core.store import ResultStore

        store = ResultStore(args.store)
        document = store.scrub(quarantine=not args.dry_run)
        document["dry_run"] = bool(args.dry_run)
        _log(f"scrubbed {document['scanned']} record(s): "
             f"{document['corrupt']} corrupt, "
             f"{document['quarantined']} quarantined")
        _emit({"command": "store scrub", **document})
        return 0

    raise ValueError(f"unknown store verb {args.store_command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    global _QUIET
    parser = build_parser()
    args = parser.parse_args(argv)
    _QUIET = bool(getattr(args, "quiet", False))
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    handlers = {"run": _cmd_run, "merge": _cmd_merge,
                "list": _cmd_list, "bench": _cmd_bench,
                "search": _cmd_search, "fleet": _cmd_fleet,
                "report": _cmd_report, "serve": _cmd_serve,
                "query": _cmd_query, "store": _cmd_store}
    fault_plan = getattr(args, "fault_plan", None)
    activated = False
    try:
        if fault_plan:
            from .faults import activate

            injector = activate(fault_plan, export_env=True)
            activated = True
            _log(f"fault plan active: {fault_plan} "
                 f"(seed {injector.plan.seed}, "
                 f"{len(injector.plan.rules)} rule(s))")
        return handlers[args.command](args)
    except (ValueError, FileNotFoundError) as error:
        _log(f"error: {error}")
        return 2
    finally:
        if activated:
            from .faults import deactivate

            deactivate()
