"""Adaptive design-space search over the DesignSpace/ParetoFront engine.

Two drivers behind one :class:`~repro.search.strategy.SearchStrategy`
protocol — :class:`~repro.search.halving.SuccessiveHalving` for enumerable
spaces (reduced-stimulus rung, multi-objective rank, full-density
survivors) and :class:`~repro.search.evolutionary.EvolutionarySearch`
(NSGA-II: non-dominated sort + crowding, operator/word-length genes) for
spaces that cannot be enumerated, such as the per-stage heterogeneous
datapaths of :func:`~repro.search.genes.per_stage_fft_space`.  Entry point:
``Study().pareto(...).search(strategy)`` or the ``repro search`` CLI.
"""
from .evaluator import SearchEvaluator, search_row
from .evolutionary import EvolutionarySearch
from .genes import (
    DEFAULT_STAGE_POOL,
    EnumeratedGeneSpace,
    GeneSpace,
    StagedGeneSpace,
    as_gene_space,
    per_pass_dct_space,
    per_stage_fft_space,
)
from .halving import SuccessiveHalving
from .rank import crowding_distance, dominates, non_dominated_sort, ranked_order
from .strategy import STRATEGY_NAMES, SearchOutcome, SearchStrategy
from .targets import SEARCH_TARGETS, SearchTarget, get_target

__all__ = [
    "DEFAULT_STAGE_POOL",
    "EnumeratedGeneSpace",
    "EvolutionarySearch",
    "GeneSpace",
    "STRATEGY_NAMES",
    "SEARCH_TARGETS",
    "SearchEvaluator",
    "SearchOutcome",
    "SearchStrategy",
    "SearchTarget",
    "StagedGeneSpace",
    "SuccessiveHalving",
    "as_gene_space",
    "crowding_distance",
    "dominates",
    "get_target",
    "non_dominated_sort",
    "per_pass_dct_space",
    "per_stage_fft_space",
    "ranked_order",
    "search_row",
]
