"""Successive halving over an enumerable design space.

The driver evaluates a (seeded) sample of the space on a *reduced stimulus*
— fewer frames of the same workload, overlaid through the per-point
configuration so the cheap rung gets its own store records — ranks the
candidates with the NSGA-II total order (non-domination rank, then crowding)
and re-evaluates only the survivors at full density.  Survivors are the
union of

* every candidate in the first ``rank_slack + 1`` non-domination fronts of
  the reduced rung (recall protection: a true-front point whose reduced
  estimate is slightly off survives unless it drops below rank
  ``rank_slack``), and
* the top ``keep`` fraction of the rung's total order (pressure when the
  reduced fronts are small).

On the CI-gated space this reproduces the exhaustive front exactly at a
fraction of the evaluation cost: the reduced rung charges ``1/density``
cost units per point, and only survivors pay full price.
"""
from __future__ import annotations

import math
from random import Random
from typing import Dict, Mapping, Optional, Sequence, Union

from ..core.designspace import DesignPoint, DesignSpace
from .evaluator import SearchEvaluator
from .rank import non_dominated_sort, ranked_order
from .strategy import SearchOutcome


class SuccessiveHalving:
    """Reduced-stimulus rung, multi-objective rank, full-density survivors.

    Parameters
    ----------
    space:
        The enumerable :class:`DesignSpace` (or point sequence) to search.
    seed:
        Drives the (optional) sampling draw — the only randomness here.
    sample:
        Evaluate only this many sampled points on the reduced rung
        (``None`` evaluates the whole space there).
    keep:
        Fraction of rung candidates the total order always promotes.
    rank_slack:
        Promote every candidate within this many non-domination fronts of
        the reduced rung's front (0 = rank-0 only).
    reduced:
        Per-point configuration overlay of the cheap rung, e.g.
        ``{"frames": 1}`` (the default).
    budget:
        Hard cap on candidate evaluations (reduced + full); the rung
        sample is trimmed to ``budget - 1`` (reserving room for at least
        one full-density survivor) and then the survivor list is trimmed
        to whatever budget remains.  Minimum 2.
    """

    name = "halving"

    def __init__(self, space: Union[DesignSpace, Sequence[DesignPoint]],
                 seed: int = 0,
                 sample: Optional[int] = None,
                 keep: float = 0.15,
                 rank_slack: int = 1,
                 reduced: Optional[Mapping[str, object]] = None,
                 budget: Optional[int] = None) -> None:
        self.space = DesignSpace.of(space)
        if not len(self.space):
            raise ValueError("cannot search an empty design space")
        self.seed = int(seed)
        self.sample = None if sample is None else max(1, int(sample))
        if not 0.0 < keep <= 1.0:
            raise ValueError(f"keep fraction must be in (0, 1], got {keep}")
        self.keep = float(keep)
        self.rank_slack = max(0, int(rank_slack))
        self.reduced: Dict[str, object] = dict(reduced) \
            if reduced is not None else {"frames": 1}
        self.budget = None if budget is None else max(2, int(budget))

    def search(self, evaluator: SearchEvaluator) -> SearchOutcome:
        rng = Random(self.seed)
        points = list(self.space)
        if self.sample is not None and self.sample < len(points):
            chosen = sorted(rng.sample(range(len(points)), self.sample))
            points = [points[index] for index in chosen]
        if self.budget is not None and len(points) > self.budget - 1:
            # Reserve at least one evaluation for a full-density survivor.
            chosen = sorted(rng.sample(range(len(points)), self.budget - 1))
            points = [points[index] for index in chosen]

        rung_rows = evaluator.evaluate(points, density=self.reduced)
        objectives = [evaluator.objectives(row) for row in rung_rows]
        order = ranked_order(objectives)
        fronts = non_dominated_sort(objectives)
        protected = {index
                     for rank, members in enumerate(fronts)
                     if rank <= self.rank_slack
                     for index in members}
        keep_count = max(1, math.ceil(self.keep * len(points)))
        promoted = set(order[:keep_count]) | protected
        if self.budget is not None:
            room = self.budget - len(points)  # >= 1 by the rung trim
            if len(promoted) > room:  # trim worst-ranked first
                promoted = set(
                    [index for index in order if index in promoted][:room])
        survivors = [points[index] for index in sorted(promoted)]

        final_rows = evaluator.evaluate(survivors)
        front = evaluator.front(final_rows)
        rounds = [
            {"rung": "reduced", "density": dict(self.reduced),
             "candidates": [point.label for point in points]},
            {"rung": "full", "density": {},
             "candidates": [point.label for point in survivors]},
        ]
        return SearchOutcome(
            strategy=self.name,
            front=front,
            rows=final_rows,
            evaluations=evaluator.evaluations,
            fresh_evaluations=evaluator.fresh_evaluations,
            store_hits=evaluator.store_hits,
            cost_units=evaluator.cost_units,
            space_size=len(self.space),
            rounds=rounds,
        )
