"""SearchStrategy protocol and the outcome both drivers emit.

A strategy is anything with a ``name`` and a ``search(evaluator)`` method
returning a :class:`SearchOutcome`.  Determinism contract: given the same
seed, a strategy must propose the same candidates in the same order — all
randomness comes from one ``random.Random(seed)`` stream, and no wall-clock
or set-iteration order may influence the schedule.  Combined with the
evaluator's bit-deterministic rows, that makes a whole search replayable:
one seed, one result, on any machine.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from ..core.results import ParetoFront
from .evaluator import SearchEvaluator


@dataclass
class SearchOutcome:
    """What a search produced, plus its honest evaluation accounting.

    ``rows`` are the full-density rows of every candidate the search
    evaluated (in evaluation order — the dashboard's cloud); ``front`` is
    their Pareto front.  ``evaluations`` counts candidate simulations
    submitted (reduced rungs included), ``cost_units`` the
    full-density-equivalent work, and ``rounds`` the per-round candidate
    schedule — which is what the determinism tests compare across seeds.
    """

    strategy: str
    front: ParetoFront
    rows: List[Dict[str, object]]
    evaluations: int
    fresh_evaluations: int
    store_hits: int
    cost_units: float
    space_size: Optional[int] = None
    rounds: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """One JSON-plain document (bit-identical across identical runs
        except for ``store_hits`` / ``fresh_evaluations``, which reflect
        how warm the store was)."""
        return {
            "strategy": self.strategy,
            "quality": self.front.quality_column,
            "cost": self.front.cost_column,
            "evaluations": self.evaluations,
            "fresh_evaluations": self.fresh_evaluations,
            "store_hits": self.store_hits,
            "cost_units": self.cost_units,
            "space_size": self.space_size,
            "front": self.front.to_dict(),
            "rounds": [dict(entry) for entry in self.rounds],
        }


@runtime_checkable
class SearchStrategy(Protocol):
    """Anything that can drive a :class:`SearchEvaluator` to a front."""

    name: str

    def search(self, evaluator: SearchEvaluator) -> SearchOutcome:
        """Explore and return the outcome (front + accounting)."""
        ...  # pragma: no cover - protocol


#: CLI / registry names of the built-in drivers.
STRATEGY_NAMES = ("halving", "nsga2")
