"""SearchEvaluator: the bridge between search drivers and the Study engine.

Every candidate a driver proposes is executed through the *same* machinery
the exhaustive sweeps use — a configured :class:`~repro.core.study.Study`
over :class:`~repro.core.designspace.DesignPoint` candidates — so search
rows are bit-identical to the rows an exhaustive enumeration of the same
points would produce, and every evaluation flows through the study's
:class:`~repro.core.store.ResultStore` by structural key.  That gives the
drivers three properties for free:

* **resumability** — a killed search re-run with the same seed replays its
  completed evaluations from the store at zero simulation cost;
* **bit-determinism** — rows depend only on (workload, config, operators,
  backend, seed, version), never on wall clock or iteration order;
* **honest accounting** — ``evaluations`` counts candidate simulations
  submitted, ``store_hits`` how many the store served warm, and
  ``cost_units`` the full-density-equivalent work (a reduced-stimulus rung
  evaluation is charged at its density fraction).

Heterogeneous candidates (per-stage / per-pass operator genomes) carry
their genome in the per-point configuration; their energy is charged stage
by stage — each stage's adder paired with the minimal exact multiplier its
emitted width allows, the paper's sizing-propagation convention — from the
per-stage counts the workload reports.
"""
from __future__ import annotations

from dataclasses import replace
from numbers import Number
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.datapath import minimal_multiplier_for
from ..core.designspace import DesignPoint
from ..core.registry import parse_operator
from ..core.results import ParetoFront
from ..core.study import Study, SweepOutcome, _default_row


def search_row(outcome: SweepOutcome) -> Dict[str, object]:
    """Default search row: the study row plus heterogeneous energy.

    Homogeneous points keep the study's own energy charging.  Heterogeneous
    points (no single charged adder, but per-stage details from the
    workload) get their energy summed stage by stage and a ``genome``
    column naming the per-stage operators.
    """
    row = _default_row(outcome)
    details = outcome.details
    stage_adders = details.get("stage_adders")
    stage_counts = details.get("stage_counts")
    if stage_adders and stage_counts and outcome.energy is None \
            and outcome.energy_model is not None:
        model = outcome.energy_model
        adder_energy = 0.0
        multiplier_energy = 0.0
        for name, counts in zip(stage_adders, stage_counts):
            additions, multiplications = int(counts[0]), int(counts[1])
            adder = parse_operator(str(name))
            multiplier = minimal_multiplier_for(adder)
            adder_energy += additions * model.energy_per_addition_pj(adder)
            multiplier_energy += multiplications * \
                model.energy_per_multiplication_pj(multiplier)
        row["adder_energy_pj"] = adder_energy
        row["multiplier_energy_pj"] = multiplier_energy
        row["total_energy_pj"] = adder_energy + multiplier_energy
    if stage_adders:
        row["genome"] = "|".join(str(name) for name in stage_adders)
    return row


class SearchEvaluator:
    """Executes candidate design points for a search strategy.

    Built by :meth:`Study.search <repro.core.study.Study.search>` from a
    fully configured study (workload, backend, seed, store, energy model and
    Pareto axes); the strategy only ever sees points, rows and objective
    vectors.
    """

    def __init__(self, study: Study, workers: int = 1) -> None:
        if study._workload is None:
            raise ValueError("no workload selected; call .workload(...) first")
        if study._pareto_axes is None:
            raise ValueError(
                "search needs the objective axes; call "
                ".pareto(quality=..., cost=...) before .search(...)")
        if study._shard is not None:
            raise ValueError("search cannot run on a sharded study")
        self._study = study
        self._workers = max(1, int(workers))
        if study._row_builder is None:
            study.rows(search_row)
        quality, cost, maximize_quality, minimize_cost = study._pareto_axes
        self.quality = quality
        self.cost = cost
        self.maximize_quality = maximize_quality
        self.minimize_cost = minimize_cost
        self._full_config, _ = study._merged_config(study._workload)
        self.evaluations = 0
        self.fresh_evaluations = 0
        self.store_hits = 0
        self.cost_units = 0.0

    # ------------------------------------------------------------------ #
    # Candidate execution
    # ------------------------------------------------------------------ #
    def density_weight(self, density: Optional[Mapping[str, object]]) -> float:
        """Full-density-equivalent cost of one evaluation at ``density``.

        The fraction multiplies the ratios of every overridden numeric
        stimulus knob (e.g. ``frames: 1`` against a full density of 16
        weighs 1/16) — the accounting the ≤35%-of-exhaustive CI gate runs
        on.
        """
        if not density:
            return 1.0
        weight = 1.0
        for key, value in density.items():
            base = self._full_config.get(key)
            if isinstance(base, Number) and isinstance(value, Number) \
                    and float(base) > 0:
                weight *= float(value) / float(base)
        return weight

    def _with_density(self, point: DesignPoint,
                      density: Optional[Mapping[str, object]]) -> DesignPoint:
        if not density:
            return point
        merged = dict(point.config)
        merged.update(density)
        return replace(point, config=tuple(sorted(merged.items())))

    def evaluate(self, points: Sequence[DesignPoint],
                 density: Optional[Mapping[str, object]] = None
                 ) -> List[Dict[str, object]]:
        """Run candidates (deduplicated) and return rows in input order.

        ``density`` overlays per-point workload configuration for
        reduced-stimulus rungs; the overlay is part of each point's store
        key, so reduced and full evaluations of the same candidate are
        distinct records.
        """
        staged = [self._with_density(point, density) for point in points]
        unique: List[DesignPoint] = []
        position: Dict[Tuple[object, ...], int] = {}
        for point in staged:
            if point.key not in position:
                position[point.key] = len(unique)
                unique.append(point)
        if not unique:
            return []
        result = (self._study
                  .design_space(unique)
                  .run(workers=self._workers))
        hits = int(result.metadata.get("store_hits", 0))
        self.evaluations += len(unique)
        self.store_hits += hits
        self.fresh_evaluations += len(unique) - hits
        self.cost_units += self.density_weight(density) * len(unique)
        rows = result.rows
        return [dict(rows[position[point.key]]) for point in staged]

    # ------------------------------------------------------------------ #
    # Objectives and fronts
    # ------------------------------------------------------------------ #
    def objectives(self, row: Mapping[str, object]) -> Tuple[float, float]:
        """(quality, cost) of a row as a minimised objective vector."""
        quality = float(row[self.quality])  # type: ignore[arg-type]
        cost = float(row[self.cost])  # type: ignore[arg-type]
        return (-quality if self.maximize_quality else quality,
                cost if self.minimize_cost else -cost)

    def front(self, rows: Sequence[Mapping[str, object]]) -> ParetoFront:
        """Pareto front of rows on the study's quality/cost axes."""
        return ParetoFront.from_rows([dict(row) for row in rows],
                                     self.quality, self.cost,
                                     maximize_quality=self.maximize_quality,
                                     minimize_cost=self.minimize_cost)
