"""NSGA-II-style evolutionary search over a gene space.

For spaces too large to enumerate — the heterogeneous per-stage FFT space
is ~3 million candidates with the default pool — the driver breeds genomes
(pool-index tuples) with uniform crossover and single-stage mutation,
selects by non-domination rank and crowding distance, and keeps a genome →
row memo so no candidate is ever simulated twice inside one search.  All
randomness comes from one ``random.Random(seed)`` stream and every
tie-break is by stable insertion/index order, so a seed fixes the entire
candidate schedule; the store then makes a re-run of the same seed replay
at zero simulation cost.
"""
from __future__ import annotations

from random import Random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.designspace import DesignPoint, DesignSpace
from .evaluator import SearchEvaluator
from .genes import GeneSpace, Genome, as_gene_space
from .rank import crowding_distance, non_dominated_sort
from .strategy import SearchOutcome


class EvolutionarySearch:
    """Multi-objective evolutionary loop (non-dominated sort + crowding).

    Parameters
    ----------
    space:
        A :class:`~repro.search.genes.GeneSpace`, or any finite design
        space (wrapped into a one-gene encoding).
    seed:
        Seeds the single random stream driving initialisation, tournament
        selection, crossover and mutation.
    population / generations:
        Loop shape.  Each generation breeds ``population`` offspring;
        duplicates of already-simulated genomes are served from the memo.
    crossover_rate:
        Probability an offspring is bred from two parents (otherwise it is
        a mutated copy of one).
    budget:
        Hard cap on candidate simulations; the loop stops proposing fresh
        genomes once reached.
    """

    name = "nsga2"

    def __init__(self, space: Union[GeneSpace, DesignSpace,
                                    Sequence[DesignPoint]],
                 seed: int = 0,
                 population: int = 16,
                 generations: int = 6,
                 crossover_rate: float = 0.9,
                 budget: Optional[int] = None) -> None:
        self.genes = as_gene_space(space)
        self.seed = int(seed)
        self.population = max(2, int(population))
        self.generations = max(0, int(generations))
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError(
                f"crossover rate must be in [0, 1], got {crossover_rate}")
        self.crossover_rate = float(crossover_rate)
        self.budget = None if budget is None else max(1, int(budget))

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def search(self, evaluator: SearchEvaluator) -> SearchOutcome:
        rng = Random(self.seed)
        genes = self.genes
        memo: Dict[Genome, Dict[str, object]] = {}
        evaluated: List[Genome] = []  # insertion order = evaluation order
        rounds: List[Dict[str, object]] = []

        def room() -> int:
            if self.budget is None:
                return self.population
            return max(0, self.budget - len(evaluated))

        def simulate(genomes: List[Genome]) -> None:
            fresh: List[Genome] = []
            for genome in genomes:
                if genome not in memo and genome not in set(fresh):
                    fresh.append(genome)
            fresh = fresh[:room()]
            if not fresh:
                return
            rows = evaluator.evaluate(
                [genes.to_point(genome) for genome in fresh])
            for genome, row in zip(fresh, rows):
                memo[genome] = row
                evaluated.append(genome)

        def propose_initial() -> List[Genome]:
            proposals: List[Genome] = []
            seen = set()
            attempts = 0
            while len(proposals) < self.population \
                    and attempts < 20 * self.population:
                genome = genes.random_genome(rng)
                attempts += 1
                if genome not in seen:
                    seen.add(genome)
                    proposals.append(genome)
            return proposals

        population = propose_initial()
        simulate(population)
        population = [genome for genome in population if genome in memo]
        rounds.append({"round": "init",
                       "candidates": [list(g) for g in population]})

        for generation in range(self.generations):
            if room() == 0:
                break
            objectives = [evaluator.objectives(memo[genome])
                          for genome in population]
            fronts = non_dominated_sort(objectives)
            rank: Dict[int, int] = {}
            crowding: Dict[int, float] = {}
            for front_rank, members in enumerate(fronts):
                crowding.update(crowding_distance(objectives, members))
                for index in members:
                    rank[index] = front_rank

            def better(a: int, b: int) -> int:
                """Binary-tournament winner by (rank, crowding, index)."""
                key_a = (rank[a], -crowding[a], a)
                key_b = (rank[b], -crowding[b], b)
                return a if key_a <= key_b else b

            offspring: List[Genome] = []
            while len(offspring) < self.population:
                first = better(rng.randrange(len(population)),
                               rng.randrange(len(population)))
                if rng.random() < self.crossover_rate:
                    second = better(rng.randrange(len(population)),
                                    rng.randrange(len(population)))
                    child = genes.crossover(population[first],
                                            population[second], rng)
                else:
                    child = population[first]
                offspring.append(genes.mutate(child, rng))
            simulate(offspring)
            rounds.append({"round": f"generation_{generation}",
                           "candidates": [list(g) for g in offspring]})

            # Environmental selection over parents + evaluated offspring,
            # de-duplicated with stable (parents-first) order.
            combined: List[Genome] = []
            seen = set()
            for genome in population + offspring:
                if genome in memo and genome not in seen:
                    seen.add(genome)
                    combined.append(genome)
            objectives = [evaluator.objectives(memo[genome])
                          for genome in combined]
            fronts = non_dominated_sort(objectives)
            crowding = {}
            rank = {}
            for front_rank, members in enumerate(fronts):
                crowding.update(crowding_distance(objectives, members))
                for index in members:
                    rank[index] = front_rank
            order = sorted(range(len(combined)),
                           key=lambda i: (rank[i], -crowding[i], i))
            population = [combined[index]
                          for index in order[:self.population]]

        final_rows = [dict(memo[genome]) for genome in evaluated]
        front = evaluator.front(final_rows)
        return SearchOutcome(
            strategy=self.name,
            front=front,
            rows=final_rows,
            evaluations=evaluator.evaluations,
            fresh_evaluations=evaluator.fresh_evaluations,
            store_hits=evaluator.store_hits,
            cost_units=evaluator.cost_units,
            space_size=genes.enumeration_size,
            rounds=rounds,
        )
