"""Gene spaces: the genome encodings the evolutionary driver breeds over.

A :class:`GeneSpace` maps between genomes — small tuples of pool indices,
hashable and trivially comparable — and executable
:class:`~repro.core.designspace.DesignPoint` candidates.  Two encodings are
provided:

* :class:`EnumeratedGeneSpace` wraps any finite
  :class:`~repro.core.designspace.DesignSpace` (genome = one index), so the
  evolutionary driver runs on the same enumerable spaces the exhaustive
  engine sweeps — which is what the CI recall gate compares against.
* :class:`StagedGeneSpace` assigns one operator from a pool to each kernel
  stage (genome = one pool index per stage).  Word lengths ride along as
  genes because the pool mixes full-width exact/approximate adders with
  data-sized truncated/rounded ones — exactly the paper's
  sizing-versus-approximation axes, now assignable per stage.  Its
  enumeration size is ``len(pool) ** stages``, far beyond the exhaustive
  engine for realistic transforms (12 operators over the six stages of a
  64-point FFT is already ~3 million candidates).

All randomness flows through the caller's ``random.Random`` instance — the
module never touches global random state, wall clock or set iteration order.
"""
from __future__ import annotations

import math
from random import Random
from typing import List, Optional, Sequence, Tuple, Union

from ..core.designspace import DesignPoint, DesignSpace
from ..core.registry import parse_operator

Genome = Tuple[int, ...]

#: Axis label heterogeneous per-stage points carry in rows and dashboards.
AXIS_HETEROGENEOUS = "heterogeneous"

#: Default operator pool of the staged spaces: the exact baseline, the
#: careful-sizing axis (truncated and rounded outputs at representative
#: word lengths) and the functional-approximation families — one pool
#: spanning both of the paper's populations so the search decides, stage by
#: stage, which axis wins.
DEFAULT_STAGE_POOL: Tuple[str, ...] = (
    "ADD(16)",
    "ADDt(16,14)", "ADDt(16,12)", "ADDt(16,10)",
    "ADDr(16,12)", "ADDr(16,10)",
    "ACA(16,6)", "ACA(16,10)", "ACA(16,14)",
    "ETAIV(16,4)", "ETAIV(16,8)",
    "RCAApx(16,8,1)",
)


class GeneSpace:
    """Genome encoding contract the evolutionary driver works against."""

    #: Total number of distinct genomes (``None`` when unbounded).
    enumeration_size: Optional[int] = None

    def random_genome(self, rng: Random) -> Genome:
        raise NotImplementedError

    def mutate(self, genome: Genome, rng: Random) -> Genome:
        raise NotImplementedError

    def crossover(self, a: Genome, b: Genome, rng: Random) -> Genome:
        raise NotImplementedError

    def to_point(self, genome: Genome) -> DesignPoint:
        raise NotImplementedError


class EnumeratedGeneSpace(GeneSpace):
    """A finite design space as a one-gene genome (its point index)."""

    def __init__(self, space: Union[DesignSpace, Sequence[DesignPoint]]
                 ) -> None:
        self._points: List[DesignPoint] = list(DesignSpace.of(space))
        if not self._points:
            raise ValueError("cannot search an empty design space")
        self.enumeration_size = len(self._points)

    def random_genome(self, rng: Random) -> Genome:
        return (rng.randrange(len(self._points)),)

    def mutate(self, genome: Genome, rng: Random) -> Genome:
        if len(self._points) == 1:
            return genome
        index = rng.randrange(len(self._points) - 1)
        if index >= genome[0]:
            index += 1
        return (index,)

    def crossover(self, a: Genome, b: Genome, rng: Random) -> Genome:
        return a if rng.random() < 0.5 else b

    def to_point(self, genome: Genome) -> DesignPoint:
        return self._points[genome[0]]


class StagedGeneSpace(GeneSpace):
    """One operator gene per kernel stage, drawn from a shared pool.

    ``config_key`` names the per-point workload configuration key carrying
    the decoded per-stage operator spec strings (``"stage_adders"`` for the
    FFT, ``"pass_adders"`` for the DCT), which is how the genome reaches the
    functional simulation — and, because per-point configuration is part of
    the sweep's structural store key, how every genome gets its own replay
    record.
    """

    def __init__(self, pool: Sequence[str], stages: int,
                 config_key: str = "stage_adders") -> None:
        names = [str(spec) for spec in pool]
        if len(set(names)) != len(names):
            raise ValueError("operator pool contains duplicate specs")
        if not names:
            raise ValueError("operator pool is empty")
        if stages < 1:
            raise ValueError("need at least one stage")
        for spec in names:  # fail loudly on typos before any search runs
            parse_operator(spec)
        self.pool: Tuple[str, ...] = tuple(names)
        self.stages = int(stages)
        self.config_key = str(config_key)
        self.enumeration_size = len(self.pool) ** self.stages

    def random_genome(self, rng: Random) -> Genome:
        return tuple(rng.randrange(len(self.pool))
                     for _ in range(self.stages))

    def mutate(self, genome: Genome, rng: Random) -> Genome:
        """Resample one uniformly chosen stage to a *different* operator."""
        if len(self.pool) == 1:
            return genome
        stage = rng.randrange(self.stages)
        gene = rng.randrange(len(self.pool) - 1)
        if gene >= genome[stage]:
            gene += 1
        mutated = list(genome)
        mutated[stage] = gene
        return tuple(mutated)

    def crossover(self, a: Genome, b: Genome, rng: Random) -> Genome:
        """Uniform crossover: each stage inherits from either parent."""
        return tuple(a[s] if rng.random() < 0.5 else b[s]
                     for s in range(self.stages))

    def genome_names(self, genome: Genome) -> Tuple[str, ...]:
        return tuple(self.pool[gene] for gene in genome)

    def to_point(self, genome: Genome) -> DesignPoint:
        names = self.genome_names(genome)
        # The first stage's operator stands in as the point's swept label;
        # the genome itself travels in the per-point configuration, which
        # both executes it (the workload builds one context per stage) and
        # keys its store record.
        return DesignPoint(adder=parse_operator(names[0]),
                           role="operator",
                           axis=AXIS_HETEROGENEOUS,
                           config=((self.config_key, names),))


def as_gene_space(space: Union[GeneSpace, DesignSpace,
                               Sequence[DesignPoint]]) -> GeneSpace:
    """Coerce a design space (or gene space) into a gene space."""
    if isinstance(space, GeneSpace):
        return space
    return EnumeratedGeneSpace(space)


def per_stage_fft_space(size: int = 64,
                        pool: Optional[Sequence[str]] = None
                        ) -> StagedGeneSpace:
    """Heterogeneous FFT space: one adder per radix-2 stage.

    A size-``N`` transform has ``log2(N)`` stages; with the default
    12-operator pool a 64-point FFT spans ``12^6`` (~3 million) candidate
    datapaths — combinatorially out of reach for the exhaustive engine,
    which is precisely the space the evolutionary driver exists for.
    """
    if size < 2 or size & (size - 1) != 0:
        raise ValueError("FFT size must be a power of two >= 2")
    stages = int(math.log2(size))
    return StagedGeneSpace(pool if pool is not None else DEFAULT_STAGE_POOL,
                           stages=stages, config_key="stage_adders")


def per_pass_dct_space(pool: Optional[Sequence[str]] = None
                       ) -> StagedGeneSpace:
    """Heterogeneous 2-D DCT space: one adder per matrix pass (rows, cols)."""
    return StagedGeneSpace(pool if pool is not None else DEFAULT_STAGE_POOL,
                           stages=2, config_key="pass_adders")
