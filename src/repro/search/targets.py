"""Named search targets: space + workload + objectives, CLI-addressable.

A target bundles everything ``repro search`` needs: which workload to run
(with reduced/full stimulus densities following the experiment runner's
convention), which space to explore, which axes to optimise, and how to
build each driver for it.  Keeping the recipes here — rather than in the
CLI — means the CI gates, the benchmarks and the experiment registry all
search exactly the same configurations.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from ..core.datapath import DatapathEnergyModel
from ..core.designspace import (
    DesignSpace,
    approximate_adder_axis,
    joint_adder_space,
)
from ..core.exploration import (
    sweep_aca_adders,
    sweep_etaii_adders,
    sweep_etaiv_adders,
    sweep_rcaapx_adders,
)
from ..core.store import ResultStore, StoreLike
from ..core.study import Study
from .evolutionary import EvolutionarySearch
from .genes import GeneSpace, per_pass_dct_space, per_stage_fft_space
from .halving import SuccessiveHalving
from .strategy import SearchStrategy


@dataclass(frozen=True)
class SearchTarget:
    """One named, reproducible search setup."""

    name: str
    title: str
    workload: str
    #: Stimulus densities by mode (overlaid on the workload's defaults).
    full_config: Tuple[Tuple[str, object], ...]
    reduced_config: Tuple[Tuple[str, object], ...]
    quality: str
    cost: str
    #: Reduced-stimulus overlay of the halving rung.
    rung_density: Tuple[Tuple[str, object], ...] = (("frames", 1),)
    #: Halving promotion knobs (see :class:`SuccessiveHalving`).
    halving_keep: float = 0.15
    halving_rank_slack: int = 1
    #: Whether the space is small enough to enumerate exhaustively (which
    #: is what the CI recall gate needs).
    enumerable: bool = False
    default_strategy: str = "nsga2"

    def config(self, reduced: bool = False) -> Dict[str, object]:
        return dict(self.reduced_config if reduced else self.full_config)

    def space(self) -> Union[DesignSpace, GeneSpace]:
        return _SPACES[self.name]()

    def study(self, reduced: bool = False,
              backend: str = "direct",
              store: Optional[StoreLike] = None,
              seed: int = 7) -> Study:
        study = (Study()
                 .workload(self.workload, **self.config(reduced))
                 .energy(DatapathEnergyModel())
                 .backend(backend)
                 .seed(int(seed))
                 .pareto(quality=self.quality, cost=self.cost))
        if store is not None:
            study.store(ResultStore.of(store))
        return study

    def strategy(self, name: Optional[str] = None, seed: int = 7,
                 budget: Optional[int] = None,
                 population: Optional[int] = None,
                 generations: Optional[int] = None) -> SearchStrategy:
        """Build a driver for this target (defaults tuned per target)."""
        chosen = name or self.default_strategy
        if chosen == "halving":
            if not self.enumerable:
                raise ValueError(
                    f"target {self.name!r} is not enumerable; successive "
                    f"halving needs a finite DesignSpace — use nsga2")
            return SuccessiveHalving(self.space(), seed=seed, budget=budget,
                                     keep=self.halving_keep,
                                     rank_slack=self.halving_rank_slack,
                                     reduced=dict(self.rung_density))
        if chosen == "nsga2":
            kwargs: Dict[str, int] = {}
            if population is not None:
                kwargs["population"] = population
            if generations is not None:
                kwargs["generations"] = generations
            return EvolutionarySearch(self.space(), seed=seed, budget=budget,
                                      **kwargs)
        raise ValueError(f"unknown strategy {chosen!r}; "
                         f"known: halving, nsga2")


def gated_fft_space() -> DesignSpace:
    """The CI-gated enumerable space: joint sizing versus the full zoo.

    A step-2 careful-sizing axis (truncated and rounded, 3–15 bit outputs)
    joined with *every* approximate adder family the operator registry
    knows — ACA, ETAII, ETAIV and all three RCAApx cell types across their
    whole parameter ranges — 78 configurations in total.  Small enough to
    sweep exhaustively for the recall gate, rich enough that a search
    recovering the exact front at ≲31% of the evaluations is meaningful.
    """
    zoo = (sweep_aca_adders(16) + sweep_etaii_adders(16)
           + sweep_etaiv_adders(16) + sweep_rcaapx_adders(16))
    return (joint_adder_space(16, sized_widths=[15, 13, 11, 9, 7, 5, 3])
            + approximate_adder_axis(16, adders=zoo))


_SPACES = {
    "fft_joint": gated_fft_space,
    "fft_per_stage": lambda: per_stage_fft_space(size=64),
    "dct_per_pass": lambda: per_pass_dct_space(),
}

#: The CI-gated enumerable target (see :func:`gated_fft_space`) on the
#: 32-point FFT.  ``rank_slack=0`` is validated by the CI recall gate: the
#: frames-1 rung's non-dominated set provably covers the full-density
#: front on this space, which is what keeps the search at ~31% of the
#: exhaustive evaluation cost.
FFT_JOINT = SearchTarget(
    name="fft_joint",
    title="Joint sized-vs-approximate adder space on the 32-point FFT",
    workload="fft",
    full_config=(("size", 32), ("frames", 16)),
    reduced_config=(("size", 32), ("frames", 8)),
    quality="psnr_db",
    cost="total_energy_pj",
    rung_density=(("frames", 1),),
    halving_keep=0.15,
    halving_rank_slack=0,
    enumerable=True,
    default_strategy="halving",
)

#: The heterogeneous flagship: one adder per stage of a 64-point FFT —
#: ``12^6`` (~3 million) candidate datapaths, unenumerable by design.
FFT_PER_STAGE = SearchTarget(
    name="fft_per_stage",
    title="Per-stage heterogeneous adder assignment on the 64-point FFT",
    workload="fft",
    full_config=(("size", 64), ("frames", 8)),
    reduced_config=(("size", 64), ("frames", 2)),
    quality="psnr_db",
    cost="total_energy_pj",
    enumerable=False,
    default_strategy="nsga2",
)

#: Per-pass heterogeneous DCT inside the JPEG encoder (row pass versus
#: column pass), the paper's second application.
DCT_PER_PASS = SearchTarget(
    name="dct_per_pass",
    title="Per-pass heterogeneous adder assignment in the JPEG DCT",
    workload="jpeg",
    full_config=(("size", 96), ("frames", 1)),
    reduced_config=(("size", 48), ("frames", 1)),
    quality="mssim",
    cost="total_energy_pj",
    enumerable=False,
    default_strategy="nsga2",
)

SEARCH_TARGETS: Mapping[str, SearchTarget] = {
    target.name: target
    for target in (FFT_JOINT, FFT_PER_STAGE, DCT_PER_PASS)
}


def get_target(name: str) -> SearchTarget:
    try:
        return SEARCH_TARGETS[name]
    except KeyError:
        raise ValueError(f"unknown search target {name!r}; known: "
                         f"{', '.join(sorted(SEARCH_TARGETS))}") from None
