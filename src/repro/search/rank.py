"""Multi-objective ranking primitives: non-dominated sort + crowding.

These are the NSGA-II building blocks both search drivers share — the
successive-halving rung ranks its reduced-stimulus candidates with them, and
the evolutionary loop uses them for environmental selection and tournaments.
Everything here is pure and deterministic: objective vectors in, index
structures out, with explicit index tie-breaks so equal candidates sort
identically on every platform.

Objectives are *minimised*; callers negate maximised axes (the evaluator's
``objectives`` helper does this for the quality axis).
"""
from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

ObjectiveVector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strict Pareto dominance under minimisation: ``a`` beats ``b``."""
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def non_dominated_sort(objectives: Sequence[ObjectiveVector]
                       ) -> List[List[int]]:
    """Partition indices into non-domination fronts (rank 0 first).

    The classic fast non-dominated sort: front 0 is the set of candidates no
    other candidate dominates; front ``r + 1`` is what becomes non-dominated
    once fronts ``0..r`` are removed.  Each front lists its member indices in
    ascending order, so the output is a pure function of the objective
    vectors — independent of dict/set iteration order.
    """
    count = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    for i in range(count):
        for j in range(i + 1, count):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(count) if domination_count[i] == 0]
    while current:
        fronts.append(sorted(current))
        upcoming: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        current = upcoming
    return fronts


def crowding_distance(objectives: Sequence[ObjectiveVector],
                      front: Sequence[int]) -> Dict[int, float]:
    """NSGA-II crowding distance of one front's members.

    Boundary members of every objective get infinite distance; interior
    members accumulate the normalised gap between their neighbours.  Ties on
    an objective sort by index, so the distances are deterministic even when
    candidates coincide.
    """
    members = list(front)
    distance = {index: 0.0 for index in members}
    if len(members) <= 2:
        return {index: float("inf") for index in members}
    dimensions = len(objectives[members[0]])
    for axis in range(dimensions):
        ordered = sorted(members, key=lambda i: (objectives[i][axis], i))
        low = objectives[ordered[0]][axis]
        high = objectives[ordered[-1]][axis]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        span = high - low
        if span <= 0.0:
            continue
        for position in range(1, len(ordered) - 1):
            index = ordered[position]
            if distance[index] == float("inf"):
                continue
            gap = (objectives[ordered[position + 1]][axis]
                   - objectives[ordered[position - 1]][axis])
            distance[index] += gap / span
    return distance


def ranked_order(objectives: Sequence[ObjectiveVector]) -> List[int]:
    """All indices ordered best-first by (front rank, -crowding, index).

    The canonical NSGA-II total order: earlier fronts first, sparser regions
    first within a front, ascending index as the final deterministic
    tie-break.  Both drivers use it — halving to pick rung survivors, the
    evolutionary loop for environmental selection.
    """
    fronts = non_dominated_sort(objectives)
    rank: Dict[int, int] = {}
    crowding: Dict[int, float] = {}
    for front_rank, members in enumerate(fronts):
        crowding.update(crowding_distance(objectives, members))
        for index in members:
            rank[index] = front_rank
    return sorted(range(len(objectives)),
                  key=lambda i: (rank[i], -crowding[i], i))
