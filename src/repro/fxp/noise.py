"""Analytical quantisation-noise model (Widrow's statistical theory).

The paper models the error introduced by dropping fractional bits as a
uniformly-distributed white noise (reference [3], Widrow et al.).  This module
provides the closed-form moments of that model so the measured error metrics
of the truncated/rounded operators can be checked against theory — both in the
test-suite and when sanity-checking experiment outputs.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from .quantize import RoundingMode


@dataclass(frozen=True)
class QuantizationNoiseModel:
    """Closed-form statistics of uniform quantisation noise.

    Parameters
    ----------
    dropped_bits:
        Number of eliminated LSBs ``k``.
    lsb_weight:
        Real weight of one *original* LSB (``2**-n`` for an n-fractional-bit
        signal).  The quantisation step is ``q = lsb_weight * 2**k``.
    mode:
        Truncation has a non-zero mean (bias ``-q/2 + lsb/2``); rounding is
        unbiased to first order.
    """

    dropped_bits: int
    lsb_weight: float = 1.0
    mode: RoundingMode = RoundingMode.TRUNCATE

    @property
    def step(self) -> float:
        """Quantisation step ``q`` after dropping the LSBs."""
        return self.lsb_weight * (2.0 ** self.dropped_bits)

    @property
    def mean(self) -> float:
        """Expected error ``E[e]`` with ``e = x - x_hat``.

        For truncation of a two's complement value the retained code is the
        floor, so the discarded amount lies in ``[0, q - lsb]`` and the bias is
        ``(q - lsb) / 2``.  For round-half-up the bias is ``-lsb/2`` (the tie
        is always pushed up); round-to-nearest-even is unbiased.
        """
        if self.dropped_bits == 0:
            return 0.0
        if self.mode is RoundingMode.TRUNCATE:
            return (self.step - self.lsb_weight) / 2.0
        if self.mode is RoundingMode.ROUND:
            return -self.lsb_weight / 2.0
        return 0.0

    @property
    def variance(self) -> float:
        """Error variance of the discrete uniform error distribution.

        Dropping ``k`` bits leaves a discrete uniform error over ``2**k``
        levels spaced by one LSB, whose variance is
        ``lsb**2 * (2**(2k) - 1) / 12``.
        """
        if self.dropped_bits == 0:
            return 0.0
        levels = 2.0 ** self.dropped_bits
        return (self.lsb_weight ** 2) * (levels ** 2 - 1.0) / 12.0

    @property
    def mse(self) -> float:
        """Mean squared error ``E[e**2] = var + mean**2``."""
        return self.variance + self.mean ** 2

    @property
    def mse_db(self) -> float:
        """MSE expressed in dB (``10 log10``), ``-inf`` for exact."""
        if self.mse == 0.0:
            return float("-inf")
        return 10.0 * math.log10(self.mse)

    def snr_db(self, signal_power: float) -> float:
        """Signal-to-quantisation-noise ratio for a given signal power."""
        if self.mse == 0.0:
            return float("inf")
        if signal_power <= 0.0:
            raise ValueError("signal power must be positive")
        return 10.0 * math.log10(signal_power / self.mse)


def predicted_mse_db(dropped_bits: int, frac_bits: int,
                     mode: RoundingMode = RoundingMode.TRUNCATE) -> float:
    """MSE (dB, full-scale-normalised) predicted for dropping LSBs of a Q1.n signal."""
    model = QuantizationNoiseModel(dropped_bits=dropped_bits,
                                   lsb_weight=2.0 ** (-frac_bits), mode=mode)
    return model.mse_db
