"""Fixed-point format descriptors.

A fixed-point (FxP) format describes how an ``N``-bit signed integer is
interpreted as a fractional real number.  Following the paper's notation, a
real value ``x`` is approximated by an integer ``X`` scaled by a power of two:

    x_hat = X * 2**(-n)

where ``n`` is the number of fractional bits.  The total word length is
``N = m + n`` for an unsigned format and ``N = 1 + m + n`` when a sign bit is
present (the paper always uses signed two's-complement data, e.g. Q1.15 for
16-bit signals).
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FxpFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    integer_bits:
        Number of bits ``m`` allocated to the integer part (excluding the sign
        bit).  ``m = 0`` gives the classical Q1.n "fractional" format whose
        values lie in ``[-1, 1)``.
    frac_bits:
        Number of bits ``n`` allocated to the fractional part.
    signed:
        Whether a sign bit is present.  The paper exclusively uses signed
        formats; unsigned support is provided for completeness of the
        framework.
    """

    integer_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ValueError("integer_bits must be non-negative")
        if self.frac_bits < 0:
            raise ValueError("frac_bits must be non-negative")
        if self.word_length <= 0:
            raise ValueError("format must contain at least one bit")

    # ------------------------------------------------------------------ #
    # Derived characteristics
    # ------------------------------------------------------------------ #
    @property
    def word_length(self) -> int:
        """Total number of bits ``N`` of the format."""
        return self.integer_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        """Weight of one LSB, i.e. ``2**-frac_bits``."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_int(self) -> int:
        """Smallest representable integer code."""
        if self.signed:
            return -(1 << (self.word_length - 1))
        return 0

    @property
    def max_int(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return (1 << (self.word_length - 1)) - 1
        return (1 << self.word_length) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int * self.scale

    @property
    def resolution(self) -> float:
        """Alias for :attr:`scale` (quantisation step)."""
        return self.scale

    @property
    def dynamic_range_db(self) -> float:
        """Dynamic range in dB: ratio of full scale to one LSB."""
        import math

        return 20.0 * math.log10(float(self.max_int - self.min_int) or 1.0)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def q(cls, integer_bits: int, frac_bits: int) -> "FxpFormat":
        """Build a signed Qm.n format (sign bit implied).

        ``FxpFormat.q(1, 15)`` is the classical 16-bit "Q1.15" audio/DSP
        format used throughout the paper; note that in this Q-notation the
        sign bit is counted inside the integer field, so the constructor
        subtracts it.
        """
        if integer_bits < 1:
            raise ValueError("Q notation requires at least the sign bit")
        return cls(integer_bits=integer_bits - 1, frac_bits=frac_bits, signed=True)

    @classmethod
    def for_word_length(cls, word_length: int, frac_bits: int | None = None,
                        signed: bool = True) -> "FxpFormat":
        """Build a format from a total word length.

        By default the value is treated as a pure fraction (all non-sign bits
        fractional), which matches how the paper normalises 16-bit data to
        ``[-1, 1)`` when computing MSE in dB.
        """
        sign = 1 if signed else 0
        if frac_bits is None:
            frac_bits = word_length - sign
        integer_bits = word_length - frac_bits - sign
        if integer_bits < 0:
            raise ValueError("frac_bits larger than the word length allows")
        return cls(integer_bits=integer_bits, frac_bits=frac_bits, signed=signed)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_frac_bits(self, frac_bits: int) -> "FxpFormat":
        """Return a copy with a different fractional bit-width."""
        return FxpFormat(self.integer_bits, frac_bits, self.signed)

    def drop_lsbs(self, count: int) -> "FxpFormat":
        """Return the format obtained after dropping ``count`` LSBs.

        Dropping LSBs removes fractional bits first, then integer bits (the
        latter would normally be avoided in a real design because it changes
        the dynamic range, but the operator sweeps in the paper go all the way
        down to 2-bit outputs).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count >= self.word_length:
            raise ValueError("cannot drop every bit of the format")
        new_frac = max(self.frac_bits - count, 0)
        remaining = count - (self.frac_bits - new_frac)
        new_int = self.integer_bits - remaining
        return FxpFormat(new_int, new_frac, self.signed)

    def can_represent(self, value: float) -> bool:
        """Whether ``value`` lies inside the representable range."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "s" if self.signed else "u"
        return f"FxP({sign}{self.word_length}, m={self.integer_bits}, n={self.frac_bits})"


#: The 16-bit fractional format (Q1.15) used for every experiment in the paper.
Q15 = FxpFormat.q(1, 15)

#: The 32-bit product format of a Q1.15 x Q1.15 multiplication (Q2.30).
Q30 = FxpFormat.q(2, 30)
