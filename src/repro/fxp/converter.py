"""Conversion between real (floating-point) values and fixed-point codes.

The fixed-point conversion process described in Section II-A of the paper has
two steps: determine the dynamic range to allocate integer bits (no overflow),
then choose the fractional bit-width for the accuracy target.  This module
provides both the per-value conversion primitives and the range-analysis
helper used by the application kernels.
"""
from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

from .format import FxpFormat
from .quantize import OverflowMode, RoundingMode, fit_to_width

FloatLike = Union[float, np.ndarray]
IntLike = Union[int, np.ndarray]


def to_fixed(value: FloatLike, fmt: FxpFormat,
             mode: RoundingMode = RoundingMode.ROUND,
             overflow: OverflowMode = OverflowMode.SATURATE) -> IntLike:
    """Convert real value(s) to integer codes in the given format."""
    scaled = np.asarray(value, dtype=np.float64) * (1 << fmt.frac_bits)
    if mode is RoundingMode.TRUNCATE:
        codes = np.floor(scaled)
    elif mode is RoundingMode.ROUND:
        codes = np.floor(scaled + 0.5)
    elif mode is RoundingMode.ROUND_TO_NEAREST_EVEN:
        codes = np.rint(scaled)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported rounding mode {mode}")
    codes = codes.astype(np.int64)
    fitted = fit_to_width(codes, fmt.word_length, fmt.signed, overflow)
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(np.asarray(fitted))
    return np.asarray(fitted)


def to_float(code: IntLike, fmt: FxpFormat) -> FloatLike:
    """Convert integer code(s) back to real values."""
    result = np.asarray(code, dtype=np.float64) * fmt.scale
    if np.isscalar(code) or np.ndim(code) == 0:
        return float(result)
    return result


def quantization_error(value: FloatLike, fmt: FxpFormat,
                       mode: RoundingMode = RoundingMode.ROUND) -> FloatLike:
    """Error introduced by converting ``value`` to the format and back."""
    code = to_fixed(value, fmt, mode=mode)
    reconstructed = to_float(code, fmt)
    return np.asarray(value, dtype=np.float64) - reconstructed


def required_integer_bits(values: Iterable[float] | np.ndarray) -> int:
    """Minimal number of integer bits ``m`` so no value overflows.

    This is the first step of the fixed-point conversion: range analysis.
    The sign bit is not counted in ``m``.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=np.float64)
    if arr.size == 0:
        return 0
    peak = float(np.max(np.abs(arr)))
    if peak == 0.0:
        return 0
    # A signed format with m integer bits covers [-2**m, 2**m).  The +1 LSB
    # slack on the positive side is ignored, which is the conservative choice.
    return max(0, int(math.ceil(math.log2(peak + np.finfo(np.float64).eps))))


def format_for(values: Iterable[float] | np.ndarray, word_length: int,
               signed: bool = True) -> FxpFormat:
    """Choose the format for a word length given the observed value range.

    The integer part is sized so no overflow occurs; every remaining bit goes
    to the fractional part (accuracy), mirroring the sizing procedure of
    Section II-A.
    """
    m = required_integer_bits(values)
    sign = 1 if signed else 0
    frac = word_length - m - sign
    if frac < 0:
        raise ValueError(
            f"word length {word_length} too small for dynamic range (needs {m} integer bits)"
        )
    return FxpFormat(integer_bits=m, frac_bits=frac, signed=signed)


def requantize(code: IntLike, src: FxpFormat, dst: FxpFormat,
               mode: RoundingMode = RoundingMode.TRUNCATE,
               overflow: OverflowMode = OverflowMode.WRAP) -> IntLike:
    """Convert integer codes from one format to another.

    Shifts align the binary points; LSB elimination uses the requested
    rounding mode and the destination width is enforced with the requested
    overflow mode.
    """
    shift = src.frac_bits - dst.frac_bits
    arr = np.asarray(code, dtype=np.int64)
    if shift > 0:
        from .quantize import drop_lsbs

        arr = np.asarray(drop_lsbs(arr, shift, mode), dtype=np.int64)
    elif shift < 0:
        arr = arr << (-shift)
    fitted = fit_to_width(arr, dst.word_length, dst.signed, overflow)
    if np.isscalar(code) or np.ndim(code) == 0:
        return int(np.asarray(fitted))
    return np.asarray(fitted)
