"""Quantisation primitives: bit dropping by truncation or rounding.

These functions operate on integer codes (NumPy arrays or Python ints) and are
the bit-accurate building blocks of the fixed-point operators.  The dropped
LSBs are what saves hardware: a ``(16, 10)`` truncated adder really is a
10-bit adder fed with inputs whose 6 LSBs were removed.
"""
from __future__ import annotations

from enum import Enum
from typing import Union

import numpy as np

IntLike = Union[int, np.ndarray]


class RoundingMode(Enum):
    """Supported quantisation (LSB elimination) modes."""

    TRUNCATE = "truncate"
    ROUND = "round"
    ROUND_TO_NEAREST_EVEN = "rne"

    @classmethod
    def from_string(cls, name: str) -> "RoundingMode":
        name = name.strip().lower()
        aliases = {
            "trunc": cls.TRUNCATE,
            "truncate": cls.TRUNCATE,
            "truncation": cls.TRUNCATE,
            "floor": cls.TRUNCATE,
            "round": cls.ROUND,
            "rounding": cls.ROUND,
            "nearest": cls.ROUND,
            "rne": cls.ROUND_TO_NEAREST_EVEN,
            "round-to-nearest-even": cls.ROUND_TO_NEAREST_EVEN,
        }
        if name not in aliases:
            raise ValueError(f"unknown rounding mode: {name!r}")
        return aliases[name]


class OverflowMode(Enum):
    """Behaviour when a value exceeds the destination format."""

    WRAP = "wrap"
    SATURATE = "saturate"


def _as_int64(value: IntLike) -> np.ndarray:
    return np.asarray(value, dtype=np.int64)


def truncate_lsbs(value: IntLike, count: int) -> IntLike:
    """Drop ``count`` LSBs by truncation (arithmetic shift right, floor).

    Truncation of a two's-complement number always rounds towards minus
    infinity, which introduces the well-known negative bias of -LSB/2.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return value
    arr = _as_int64(value) >> count
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(arr)
    return arr


def round_lsbs(value: IntLike, count: int) -> IntLike:
    """Drop ``count`` LSBs with round-half-up (add half LSB then truncate)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return value
    offset = 1 << (count - 1)
    arr = (_as_int64(value) + offset) >> count
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(arr)
    return arr


def round_lsbs_to_even(value: IntLike, count: int) -> IntLike:
    """Drop ``count`` LSBs with round-half-to-even (convergent rounding)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return value
    arr = _as_int64(value)
    half = 1 << (count - 1)
    mask = (1 << count) - 1
    frac = arr & mask
    base = arr >> count
    round_up = (frac > half) | ((frac == half) & ((base & 1) == 1))
    result = base + round_up.astype(np.int64)
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(result)
    return result


def drop_lsbs(value: IntLike, count: int,
              mode: RoundingMode = RoundingMode.TRUNCATE) -> IntLike:
    """Drop ``count`` LSBs using the requested rounding mode."""
    if mode is RoundingMode.TRUNCATE:
        return truncate_lsbs(value, count)
    if mode is RoundingMode.ROUND:
        return round_lsbs(value, count)
    if mode is RoundingMode.ROUND_TO_NEAREST_EVEN:
        return round_lsbs_to_even(value, count)
    raise ValueError(f"unsupported rounding mode {mode}")


def restore_lsbs(value: IntLike, count: int) -> IntLike:
    """Re-align a quantised value to the original scale (LSBs forced to zero).

    The paper's error analysis compares an operator whose output lost ``k``
    LSBs against the full-precision reference; the quantised value therefore
    has to be shifted back so both live on the same grid.  The re-inserted
    bits are zero, which is exactly what a narrow datapath implicitly does.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return value
    arr = _as_int64(value) << count
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(arr)
    return arr


def wrap_to_width(value: IntLike, width: int, signed: bool = True) -> IntLike:
    """Wrap a value into ``width`` bits (two's-complement modular arithmetic)."""
    if width <= 0:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    arr = _as_int64(value) & mask
    if signed:
        sign_bit = 1 << (width - 1)
        arr = (arr ^ sign_bit) - sign_bit
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(arr)
    return arr


def saturate_to_width(value: IntLike, width: int, signed: bool = True) -> IntLike:
    """Clamp a value to the representable range of ``width`` bits."""
    if width <= 0:
        raise ValueError("width must be positive")
    if signed:
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
    else:
        lo = 0
        hi = (1 << width) - 1
    arr = np.clip(_as_int64(value), lo, hi)
    if np.isscalar(value) or np.ndim(value) == 0:
        return int(arr)
    return arr


def fit_to_width(value: IntLike, width: int, signed: bool = True,
                 overflow: OverflowMode = OverflowMode.WRAP) -> IntLike:
    """Force a value into ``width`` bits using the requested overflow mode."""
    if overflow is OverflowMode.WRAP:
        return wrap_to_width(value, width, signed)
    if overflow is OverflowMode.SATURATE:
        return saturate_to_width(value, width, signed)
    raise ValueError(f"unsupported overflow mode {overflow}")


def quantize(value: IntLike, drop: int, width: int,
             mode: RoundingMode = RoundingMode.TRUNCATE,
             overflow: OverflowMode = OverflowMode.WRAP,
             signed: bool = True) -> IntLike:
    """Drop LSBs and fit the result into a destination width.

    This is the complete quantisation step applied to operator inputs and
    outputs by the truncated/rounded fixed-point operators.
    """
    reduced = drop_lsbs(value, drop, mode)
    return fit_to_width(reduced, width, signed, overflow)
