"""Fixed-point arithmetic substrate.

This package implements the "careful data sizing" side of the paper's
comparison: fixed-point formats, quantisation by truncation or rounding,
conversion between real values and integer codes, and the analytical
quantisation-noise model used to validate measured errors.
"""
from .converter import (
    format_for,
    quantization_error,
    requantize,
    required_integer_bits,
    to_fixed,
    to_float,
)
from .format import Q15, Q30, FxpFormat
from .noise import QuantizationNoiseModel, predicted_mse_db
from .quantize import (
    OverflowMode,
    RoundingMode,
    drop_lsbs,
    fit_to_width,
    quantize,
    restore_lsbs,
    round_lsbs,
    round_lsbs_to_even,
    saturate_to_width,
    truncate_lsbs,
    wrap_to_width,
)

__all__ = [
    "FxpFormat",
    "Q15",
    "Q30",
    "RoundingMode",
    "OverflowMode",
    "truncate_lsbs",
    "round_lsbs",
    "round_lsbs_to_even",
    "drop_lsbs",
    "restore_lsbs",
    "wrap_to_width",
    "saturate_to_width",
    "fit_to_width",
    "quantize",
    "to_fixed",
    "to_float",
    "quantization_error",
    "required_integer_bits",
    "format_for",
    "requantize",
    "QuantizationNoiseModel",
    "predicted_mse_db",
]
