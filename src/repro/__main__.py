"""Entry point of ``python -m repro`` (see :mod:`repro.cli`): run, merge,
list, bench, the lease-based fleet coordinator (``fleet plan|work|status|
harvest``), the static results dashboard (``report``), plus the
long-lived evaluation server (``serve``) and its client (``query``)."""
from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
