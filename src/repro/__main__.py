"""Entry point of ``python -m repro`` (see :mod:`repro.cli`)."""
from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
