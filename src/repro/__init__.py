"""Reproduction of *The Hidden Cost of Functional Approximation Against
Careful Data Sizing — A Case Study* (Barrois, Sentieys, Ménard, DATE 2017).

The package is organised as the paper's APXPERF framework:

* :mod:`repro.fxp` — fixed-point formats and quantisation (careful data sizing);
* :mod:`repro.operators` — bit-accurate accurate / truncated / rounded /
  approximate adders and multipliers (ACA, ETAIV, RCAApx, AAM, ABM, ...);
* :mod:`repro.hardware` — gate-level structural cost model (area, delay,
  activity-based power) calibrated to the paper's 28nm reference points;
* :mod:`repro.metrics` — MSE, BER, PSNR, MSSIM, clustering success rate and
  the other error metrics;
* :mod:`repro.core` — the characterisation harness, operator registry,
  design-space sweeps, the datapath energy model (Equation 1), and the
  :class:`ApproxContext` / execution-backend layer (``"direct"`` or the
  table-driven ``"lut"``, bit-identical records) consumed by the kernels;
* :mod:`repro.apps` — the four instrumented applications (FFT, JPEG/DCT,
  HEVC motion compensation, K-means);
* :mod:`repro.workloads` — the unified workload plugin API wrapping those
  applications (plus operator characterisation) behind one interface;
* :mod:`repro.experiments` — one module per paper table/figure, each a thin
  declarative wrapper over the :class:`Study` pipeline;
* :mod:`repro.fleet` — lease-based work-queue coordination over a shared
  directory: crash-safe fleet workers, expiry reclaim, bit-identical harvest;
* :mod:`repro.report` — the static self-contained HTML results dashboard.

Quick start::

    from repro import Study
    result = (Study()
              .workload("fft(32, frames=4)")
              .adders(["ADDt(16,10)", "ACA(16,8)", "ETAIV(16,4)"])
              .energy()
              .run())
    print(result.to_text())
"""
from .core import (
    ApproxContext,
    Apxperf,
    DatapathEnergyModel,
    DesignPoint,
    DesignSpace,
    DirectBackend,
    ExecutionBackend,
    ExperimentResult,
    LutBackend,
    OperatorCharacterization,
    ParetoFront,
    ResultBundle,
    ResultStore,
    Study,
    joint_adder_space,
    parse_backend,
    parse_operator,
    register_backend,
)
from .workloads import Workload, WorkloadResult, parse_workload, register_workload

__version__ = "1.9.0"

__all__ = [
    "ApproxContext",
    "Apxperf",
    "OperatorCharacterization",
    "DatapathEnergyModel",
    "DesignPoint",
    "DesignSpace",
    "ExecutionBackend",
    "DirectBackend",
    "LutBackend",
    "ExperimentResult",
    "ParetoFront",
    "ResultBundle",
    "ResultStore",
    "Study",
    "Workload",
    "WorkloadResult",
    "joint_adder_space",
    "parse_backend",
    "parse_operator",
    "register_backend",
    "parse_workload",
    "register_workload",
    "__version__",
]
