"""Reproduction of *The Hidden Cost of Functional Approximation Against
Careful Data Sizing — A Case Study* (Barrois, Sentieys, Ménard, DATE 2017).

The package is organised as the paper's APXPERF framework:

* :mod:`repro.fxp` — fixed-point formats and quantisation (careful data sizing);
* :mod:`repro.operators` — bit-accurate accurate / truncated / rounded /
  approximate adders and multipliers (ACA, ETAIV, RCAApx, AAM, ABM, ...);
* :mod:`repro.hardware` — gate-level structural cost model (area, delay,
  activity-based power) calibrated to the paper's 28nm reference points;
* :mod:`repro.metrics` — MSE, BER, PSNR, MSSIM, clustering success rate and
  the other error metrics;
* :mod:`repro.core` — the characterisation harness, operator registry,
  design-space sweeps and the datapath energy model (Equation 1);
* :mod:`repro.apps` — the four instrumented applications (FFT, JPEG/DCT,
  HEVC motion compensation, K-means);
* :mod:`repro.experiments` — one module per paper table/figure.

Quick start::

    from repro import Apxperf
    result = Apxperf().characterize("ACA(16,8)")
    print(result.mse_db, result.pdp_pj)
"""
from .core import (
    Apxperf,
    DatapathEnergyModel,
    ExperimentResult,
    OperatorCharacterization,
    parse_operator,
)

__version__ = "1.0.0"

__all__ = [
    "Apxperf",
    "OperatorCharacterization",
    "DatapathEnergyModel",
    "ExperimentResult",
    "parse_operator",
    "__version__",
]
