"""The fault-injection subsystem: plans, schedules, faulted call sites.

Three layers under test, mirroring the package:

* plan loading — every malformed document is rejected loudly at load
  time, because a chaos tool that silently does nothing reports vacuous
  passes;
* the injector — ``nth`` rules fire on exact consult ordinals,
  ``probability`` rules replay the identical seeded draw stream, and two
  injectors built from the same plan produce the *identical* schedule
  (the determinism property the CI chaos matrix depends on);
* the call sites — a torn write leaves a truncated record that loads as
  a clean miss and is quarantined by ``scrub``, an injected fsync error
  never fails the computation, a corrupted absorb stays a miss, and the
  server handler faults (drop/delay/error) act out on a live server.
"""
import json
import os
import urllib.error
import urllib.request

import pytest

from repro.core.store import ResultStore
from repro.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    activate,
    active_injector,
    deactivate,
    fault_active,
    maybe_fault,
)
from repro.faults.inject import ENV_FAULT_PLAN, activate_from_env
from repro.server import EvalServer, query


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """One test's chaos must never outlive it."""
    deactivate()
    yield
    deactivate()


def make_plan(*rules, seed=7):
    return FaultPlan(seed=seed, rules=tuple(rules))


# --------------------------------------------------------------------------- #
# Plan validation
# --------------------------------------------------------------------------- #
class TestPlanValidation(object):
    def test_unknown_point_is_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultRule(point="store.explode", kind="torn_write", nth=(1,))

    def test_unsupported_kind_is_rejected(self):
        with pytest.raises(FaultPlanError, match="does not implement"):
            FaultRule(point="store.save", kind="corrupt", nth=(1,))

    def test_exactly_one_trigger_is_required(self):
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultRule(point="store.save", kind="torn_write")
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultRule(point="store.save", kind="torn_write",
                      nth=(1,), probability=0.5)

    def test_trigger_values_are_validated(self):
        with pytest.raises(FaultPlanError, match="nth"):
            FaultRule(point="store.save", kind="torn_write", nth=(0,))
        with pytest.raises(FaultPlanError, match="nth"):
            FaultRule(point="store.save", kind="torn_write", nth=())
        for probability in (0.0, 1.5, -0.1):
            with pytest.raises(FaultPlanError, match="probability"):
                FaultRule(point="store.save", kind="torn_write",
                          probability=probability)

    @pytest.mark.parametrize("document", [
        [],                                     # not an object
        {"fault_plan_version": 99},             # unsupported version
        {"seed": "one"},                        # non-integer seed
        {"seed": True},                         # bool is not a seed
        {"rules": {}},                          # rules not a list
        {"rules": ["nope"]},                    # rule not an object
        {"rules": [{"point": "store.save"}]},   # missing kind
        {"rules": [{"point": "store.save", "kind": "torn_write",
                    "nth": 1, "typo": True}]},  # unknown field
        {"rules": [{"point": "store.save", "kind": "torn_write",
                    "nth": "first"}]},          # malformed nth
        {"rules": [{"point": "store.save", "kind": "torn_write",
                    "probability": "high"}]},   # malformed probability
        {"rules": [{"point": "store.save", "kind": "torn_write",
                    "nth": 1, "params": 3}]},   # params not an object
    ])
    def test_malformed_documents_are_rejected(self, document):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(document)

    def test_load_rejects_missing_and_invalid_files(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.load(bad)

    def test_document_round_trip(self, tmp_path):
        document = {
            "fault_plan_version": 1,
            "seed": 42,
            "rules": [
                {"point": "fleet.worker.commit", "kind": "crash_before",
                 "nth": [1, 3]},
                {"point": "store.save", "kind": "torn_write",
                 "probability": 0.25, "params": {"keep_fraction": 0.5}},
            ],
        }
        plan = FaultPlan.from_dict(document)
        assert plan.to_dict() == document
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        loaded = FaultPlan.load(path)
        assert loaded.to_dict() == document
        assert loaded.source == str(path)

    def test_scalar_nth_normalises_to_a_tuple(self):
        plan = FaultPlan.from_dict({"rules": [
            {"point": "server.handler", "kind": "drop", "nth": 2}]})
        assert plan.rules[0].nth == (2,)

    def test_example_plans_in_the_repo_validate(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent \
            / "examples" / "fault_plans"
        plans = sorted(examples.glob("*.json"))
        assert len(plans) >= 3  # the CI chaos matrix
        for path in plans:
            assert FaultPlan.load(path).rules


# --------------------------------------------------------------------------- #
# The injector: schedules
# --------------------------------------------------------------------------- #
class TestInjectorSchedule(object):
    def test_nth_fires_on_exact_ordinals(self):
        plan = make_plan(FaultRule(point="server.handler", kind="drop",
                                   nth=(2, 4)))
        injector = FaultInjector(plan)
        fired = [injector.check("server.handler") is not None
                 for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert [f["occurrence"] for f in injector.schedule()] == [2, 4]

    def test_counters_are_per_point(self):
        plan = make_plan(
            FaultRule(point="server.handler", kind="drop", nth=(1,)),
            FaultRule(point="store.save", kind="torn_write", nth=(2,)))
        injector = FaultInjector(plan)
        assert injector.check("server.handler") is not None
        assert injector.check("store.save") is None     # ordinal 1
        assert injector.check("store.save") is not None  # ordinal 2
        assert injector.stats()["consults"] == {
            "server.handler": 1, "store.save": 2}

    def test_first_matching_rule_wins(self):
        plan = make_plan(
            FaultRule(point="server.handler", kind="drop", nth=(1,)),
            FaultRule(point="server.handler", kind="error", nth=(1,)))
        fault = FaultInjector(plan).check("server.handler")
        assert fault is not None and fault.kind == "drop"

    def test_fault_carries_params_and_occurrence(self):
        plan = make_plan(FaultRule(point="server.handler", kind="delay",
                                   nth=(1,), params={"seconds": 0.5}))
        fault = FaultInjector(plan).check("server.handler")
        assert fault.params == {"seconds": 0.5}
        assert fault.occurrence == 1

    def test_unmentioned_points_never_fire(self):
        injector = FaultInjector(make_plan(
            FaultRule(point="store.save", kind="torn_write", nth=(1,))))
        assert injector.check("server.handler") is None
        # An unmentioned point does not even advance a counter.
        assert injector.stats()["consults"] == {}

    def test_same_plan_same_consults_identical_schedule(self):
        """The determinism contract the CI chaos matrix leans on."""
        plan = make_plan(
            FaultRule(point="store.save", kind="torn_write",
                      probability=0.3),
            FaultRule(point="server.handler", kind="drop",
                      probability=0.5),
            seed=1234)
        consults = (["store.save"] * 50) + (["server.handler"] * 50) \
            + ["store.save", "server.handler"] * 25
        one, two = FaultInjector(plan), FaultInjector(plan)
        for point in consults:
            first, second = one.check(point), two.check(point)
            assert (first is None) == (second is None)
        assert one.schedule() == two.schedule()
        assert one.schedule()  # the streams actually fired something

    def test_different_seeds_differ(self):
        rule = FaultRule(point="store.save", kind="torn_write",
                         probability=0.3)
        schedules = []
        for seed in (1, 2):
            injector = FaultInjector(make_plan(rule, seed=seed))
            for _ in range(100):
                injector.check("store.save")
            schedules.append(injector.schedule())
        assert schedules[0] != schedules[1]

    def test_probability_one_always_fires(self):
        injector = FaultInjector(make_plan(
            FaultRule(point="store.save", kind="fsync_error",
                      probability=1.0)))
        assert all(injector.check("store.save") is not None
                   for _ in range(10))


# --------------------------------------------------------------------------- #
# Activation: process-wide injector, environment inheritance
# --------------------------------------------------------------------------- #
class TestActivation(object):
    def test_inactive_is_a_no_op(self):
        assert fault_active() is False
        assert active_injector() is None
        assert maybe_fault("store.save") is None

    def test_activate_and_deactivate(self):
        plan = make_plan(FaultRule(point="store.save", kind="torn_write",
                                   nth=(1,)))
        injector = activate(plan)
        assert fault_active() is True
        assert active_injector() is injector
        assert maybe_fault("store.save").kind == "torn_write"
        deactivate()
        assert fault_active() is False
        assert maybe_fault("store.save") is None

    def test_activate_from_a_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 3, "rules": [
            {"point": "server.handler", "kind": "drop", "nth": [1]}]}))
        injector = activate(path)
        assert injector.plan.seed == 3
        assert injector.plan.source == str(path)

    def test_export_env_round_trip(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 9, "rules": []}))
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        activate(str(path), export_env=True)
        assert os.environ[ENV_FAULT_PLAN] == str(path)
        deactivate()
        assert os.environ.get(ENV_FAULT_PLAN) is None
        # A spawned child re-activates from the inherited variable.
        monkeypatch.setenv(ENV_FAULT_PLAN, str(path))
        injector = activate_from_env()
        assert injector is not None and injector.plan.seed == 9

    def test_export_env_requires_a_file_backed_plan(self):
        with pytest.raises(ValueError, match="file-backed"):
            activate(make_plan(), export_env=True)

    def test_activate_from_env_is_silent_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert activate_from_env() is None

    def test_fault_points_registry_names_real_call_sites(self):
        # The README resilience table and the plans are written against
        # this registry; pin its shape so drift is loud.
        assert set(FAULT_POINTS) == {
            "store.save", "store.absorb", "fleet.worker.commit",
            "fleet.worker.heartbeat", "fleet.queue.expiry",
            "server.handler"}


# --------------------------------------------------------------------------- #
# Faulted call sites: store
# --------------------------------------------------------------------------- #
class TestStoreFaults(object):
    def test_torn_write_is_a_clean_miss_then_quarantined(self, tmp_path):
        activate(make_plan(FaultRule(
            point="store.save", kind="torn_write", nth=(1,),
            params={"keep_fraction": 0.5})))
        store = ResultStore(tmp_path / "store")
        assert store.save("sweep", {"x": 1}, {"value": 1}) is None
        # The torn record exists under the final name but loads as a miss.
        assert store.entry_count("sweep") == 1
        assert store.load("sweep", {"x": 1}) is None
        deactivate()
        report = store.scrub()
        assert report["scanned"] == 1
        assert report["corrupt"] == 1
        assert report["quarantined"] == 1
        assert store.entry_count("sweep") == 0
        # An unfaulted save then heals the store.
        assert store.save("sweep", {"x": 1}, {"value": 1}) is not None
        assert store.load("sweep", {"x": 1}) == {"value": 1}

    def test_fsync_error_never_fails_the_computation(self, tmp_path):
        activate(make_plan(FaultRule(
            point="store.save", kind="fsync_error", nth=(1,))))
        store = ResultStore(tmp_path / "store")
        assert store.save("sweep", {"x": 1}, {"value": 1}) is None
        assert store.entry_count() == 0  # nothing half-written left behind
        assert store.save("sweep", {"x": 1}, {"value": 1}) is not None

    def test_corrupted_absorb_is_a_miss_not_a_crash(self, tmp_path):
        source = ResultStore(tmp_path / "source")
        source.save("sweep", {"x": 1}, {"value": 1})
        activate(make_plan(FaultRule(
            point="store.absorb", kind="corrupt", nth=(1,))))
        target = ResultStore(tmp_path / "target")
        target.absorb(source)
        assert target.load("sweep", {"x": 1}) is None
        deactivate()
        assert target.scrub()["quarantined"] == 1
        # Re-absorbing unfaulted copies the healthy record back in.
        target.absorb(source)
        assert target.load("sweep", {"x": 1}) == {"value": 1}


# --------------------------------------------------------------------------- #
# Faulted call sites: the server handler
# --------------------------------------------------------------------------- #
class TestServerFaults(object):
    def test_drop_then_recovery_via_client_retries(self):
        activate(make_plan(FaultRule(
            point="server.handler", kind="drop", nth=(1,))))
        with EvalServer(batch_window_s=0.0) as server:
            # The first request's connection is dropped mid-flight; the
            # client's transport retry turns it into a served answer.
            envelope = query(server.url, "status", retries=3,
                             retry_base_delay=0.01)
            assert envelope["status"] == "ok"

    def test_drop_without_retries_raises_server_unavailable(self):
        from repro.server import ServerUnavailable

        activate(make_plan(FaultRule(
            point="server.handler", kind="drop", probability=1.0)))
        with EvalServer(batch_window_s=0.0) as server:
            with pytest.raises(ServerUnavailable):
                query(server.url, "status", retries=0)

    def test_injected_error_is_a_500_envelope(self):
        activate(make_plan(FaultRule(
            point="server.handler", kind="error", nth=(1,))))
        with EvalServer(batch_window_s=0.0) as server:
            request = urllib.request.Request(
                server.url + "/",
                data=b'{"action": "status"}', method="POST")
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10)
            assert caught.value.code == 500
            body = json.loads(caught.value.read())
            assert body["status"] == "error"
            assert "injected" in body["message"]
            # The next request is healthy.
            assert query(server.url, "status",
                         retries=0)["status"] == "ok"

    def test_delay_slows_but_answers(self):
        activate(make_plan(FaultRule(
            point="server.handler", kind="delay", nth=(1,),
            params={"seconds": 0.05})))
        with EvalServer(batch_window_s=0.0) as server:
            assert query(server.url, "status",
                         retries=0)["status"] == "ok"
