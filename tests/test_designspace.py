"""Tests for the design-space engine: points, spaces, Pareto fronts and the
joint operator × word-length frontiers."""
import numpy as np
import pytest

from repro import Study
from repro.core import DatapathEnergyModel, ParetoFront
from repro.core.designspace import (
    AXIS_APPROXIMATE,
    AXIS_SIZED,
    DesignPoint,
    DesignSpace,
    adder_axis,
    adder_point,
    classify_axis,
    joint_adder_space,
    multiplier_axis,
    operator_axis,
    sized_adder_axis,
    sized_multiplier_axis,
)
from repro.experiments import fft_joint_frontier, jpeg_joint_frontier
from repro.fxp.format import FxpFormat
from repro.operators.adders import ACAAdder, ExactAdder, RoundedAdder, TruncatedAdder
from repro.operators.multipliers import AAMMultiplier, TruncatedMultiplier


class TestDesignPoint(object):
    def test_sized_point_carries_propagated_multiplier(self):
        point = adder_point(TruncatedAdder(16, 10))
        assert point.axis == AXIS_SIZED
        assert point.multiplier.name == "MULt(10,10)"
        assert point.emitted_width == 10
        assert point.fxp_format() == FxpFormat.for_word_length(10)

    def test_approximate_point_pays_full_width_multiplier(self):
        point = adder_point(ACAAdder(16, 8))
        assert point.axis == AXIS_APPROXIMATE
        # The hidden cost: an approximate adder emits full-width data.
        assert point.multiplier.name == "MULt(16,16)"
        assert point.emitted_width == 16

    def test_classify_axis(self):
        assert classify_axis(TruncatedAdder(16, 10)) == AXIS_SIZED
        assert classify_axis(RoundedAdder(16, 10)) == AXIS_SIZED
        assert classify_axis(ACAAdder(16, 8)) == AXIS_APPROXIMATE
        assert classify_axis(TruncatedMultiplier(16, 8)) == AXIS_SIZED
        assert classify_axis(AAMMultiplier(16)) == AXIS_APPROXIMATE

    def test_role_validation(self):
        with pytest.raises(ValueError, match="role"):
            DesignPoint(adder=ExactAdder(16), role="bogus")
        with pytest.raises(ValueError, match="adder"):
            DesignPoint(multiplier=AAMMultiplier(16), role="adder")

    def test_describe_carries_frontier_metadata(self):
        info = adder_point(TruncatedAdder(16, 12)).describe()
        assert info["axis"] == AXIS_SIZED
        assert info["word_length"] == 12
        assert info["design"] == "sized:ADDt(16,12)"


class TestDesignSpace(object):
    def test_deduplicates_by_key(self):
        space = DesignSpace([adder_point(TruncatedAdder(16, 10)),
                             adder_point(TruncatedAdder(16, 10)),
                             adder_point(TruncatedAdder(16, 8))])
        assert len(space) == 2

    def test_composition_preserves_order(self):
        space = sized_adder_axis(16, word_lengths=[12, 10]) \
            + adder_axis([ACAAdder(16, 8)])
        assert space.labels() == ["sized:ADDt(16,12)", "sized:ADDt(16,10)",
                                  "approximate:ACA(16,8)"]

    def test_subset_by_axis(self):
        space = joint_adder_space(16, reduced=True)
        sized = space.subset(AXIS_SIZED)
        approx = space.subset(AXIS_APPROXIMATE)
        assert len(sized) + len(approx) == len(space)
        assert sized.axes() == [AXIS_SIZED]

    def test_sized_axis_from_fxp_formats(self):
        formats = [FxpFormat.for_word_length(w) for w in (14, 10)]
        space = sized_adder_axis(16, formats=formats)
        assert [p.adder.name for p in space] == ["ADDt(16,14)", "ADDt(16,10)"]

    def test_sized_multiplier_axis(self):
        space = sized_multiplier_axis(16, word_lengths=[8])
        point = next(iter(space))
        assert point.multiplier.name == "MULt(16,8)"
        assert point.role == "multiplier"
        assert point.adder is not None  # sizing-propagated exact adder

    def test_operator_axis_roles(self):
        space = operator_axis([ExactAdder(16), AAMMultiplier(16)])
        roles = [p.role for p in space]
        assert roles == ["operator", "operator"]

    def test_multiplier_axis_explicit_pair(self):
        space = multiplier_axis([AAMMultiplier(16)], pair=ExactAdder(16))
        point = next(iter(space))
        assert point.adder.name == "ADD(16)"

    def test_unhashable_config_values_dedup_by_content(self):
        image = np.zeros((4, 4))
        first = adder_point(ExactAdder(16), config={"image": image})
        second = adder_point(ExactAdder(16), config={"image": image.copy()})
        other = adder_point(ExactAdder(16), config={"image": image + 1})
        space = DesignSpace([first, second, other])
        assert len(space) == 2

    def test_table_multiplier_spaces_pair_per_operand_width(self):
        from repro.experiments import hevc_multiplier_space

        space = hevc_multiplier_space([TruncatedMultiplier(8, 8),
                                       TruncatedMultiplier(16, 16)])
        assert [p.adder.name for p in space] == ["ADD(8)", "ADD(16)"]

    def test_pair_with_is_rejected_on_design_space_sweeps(self):
        study = (Study()
                 .workload("fft", size=16, frames=2)
                 .design_space(adder_axis([TruncatedAdder(16, 10)]))
                 .pair_with("MULt(16,8)"))
        with pytest.raises(ValueError, match="pair_with"):
            study.run()


class TestParetoFront(object):
    def _rows(self):
        # (quality maximised, cost minimised); rows 1, 3 and 4 are on the
        # front; row 2 is dominated by row 1; row 5 duplicates row 3.
        return [
            {"q": 10.0, "c": 1.0},
            {"q": 9.0, "c": 1.5},
            {"q": 20.0, "c": 3.0},
            {"q": 30.0, "c": 9.0},
            {"q": 20.0, "c": 3.0},
        ]

    def test_front_contents(self):
        front = ParetoFront.from_rows(self._rows(), quality="q", cost="c")
        assert front.evaluated == 5
        assert [(r.quality, r.cost) for r in front.records] == \
            [(10.0, 1.0), (20.0, 3.0), (20.0, 3.0), (30.0, 9.0)]

    def test_order_invariance(self):
        rows = self._rows()
        reference = ParetoFront.from_rows(rows, quality="q", cost="c")
        rng = np.random.default_rng(3)
        for _ in range(10):
            order = rng.permutation(len(rows))
            shuffled = ParetoFront(quality="q", cost="c")
            for index in order:
                shuffled.update(rows[index], int(index))
            assert shuffled.to_dict() == reference.to_dict()

    def test_minimised_quality_sense(self):
        rows = [{"q": 1.0, "c": 5.0}, {"q": 2.0, "c": 1.0}, {"q": 3.0, "c": 0.5}]
        front = ParetoFront.from_rows(rows, quality="q", cost="c",
                                      maximize_quality=False)
        assert [(r.quality, r.cost) for r in front.records] == \
            [(3.0, 0.5), (2.0, 1.0), (1.0, 5.0)]

    def test_nan_rows_never_enter(self):
        front = ParetoFront(quality="q", cost="c")
        assert not front.update({"q": float("nan"), "c": 1.0}, 0)
        assert not front.update({"c": 1.0}, 1)  # missing quality column
        assert len(front) == 0 and front.evaluated == 2

    def test_serialisation_round_trip(self):
        front = ParetoFront.from_rows(self._rows(), quality="q", cost="c")
        clone = ParetoFront.from_dict(front.to_dict())
        assert clone == front
        assert clone.evaluated == front.evaluated


class TestJointFrontiers(object):
    @pytest.fixture(scope="class")
    def energy_model(self):
        return DatapathEnergyModel(hardware_samples=300)

    @pytest.fixture(scope="class")
    def fft_result(self, energy_model):
        return fft_joint_frontier(size=16, frames=2, reduced=True,
                                  energy_model=energy_model)

    def test_fft_front_contains_both_axes(self, fft_result):
        front = fft_result.fronts["psnr_db_vs_total_energy_pj"]
        assert len(front) >= 2
        axes = {row["axis"] for row in front.rows}
        assert axes == {AXIS_SIZED, AXIS_APPROXIMATE}

    def test_fft_front_energy_is_sizing_propagated(self, fft_result):
        # Every sized row must be charged for the *data-sized* multiplier,
        # every approximate row for the full-width one (the hidden cost).
        for row in fft_result.rows:
            if row["axis"] == AXIS_SIZED:
                assert row["multiplier"] == \
                    f"MULt({row['word_length']},{row['word_length']})"
            else:
                assert row["multiplier"] == "MULt(16,16)"

    def test_fft_serial_and_parallel_fronts_identical(self, energy_model):
        serial = fft_joint_frontier(size=16, frames=2, reduced=True,
                                    energy_model=energy_model, workers=1)
        parallel = fft_joint_frontier(size=16, frames=2, reduced=True,
                                      energy_model=energy_model, workers=4)
        assert serial.rows == parallel.rows
        key = "psnr_db_vs_total_energy_pj"
        assert serial.fronts[key].to_dict() == parallel.fronts[key].to_dict()

    def test_jpeg_joint_frontier_compares_both_axes(self, energy_model):
        result = jpeg_joint_frontier(image_size=48, reduced=True,
                                     energy_model=energy_model)
        # The joint comparison sweeps both populations ...
        assert {row["axis"] for row in result.rows} == \
            {AXIS_SIZED, AXIS_APPROXIMATE}
        front = result.fronts["mssim_vs_total_energy_pj"]
        assert len(front) >= 2
        # ... and reproduces the paper's headline finding: at every quality
        # level the frontier is carried by careful sizing — the approximate
        # adders are dominated (their full-width multiplier is the hidden
        # cost), so no approximate point beats the sized front.
        sized_rows = [row for row in front.rows if row["axis"] == AXIS_SIZED]
        assert sized_rows, "the sized axis must reach the JPEG front"

    def test_front_survives_result_serialisation(self, fft_result, tmp_path):
        from repro.core import ExperimentResult

        path = fft_result.save_json(tmp_path / "frontier.json")
        loaded = ExperimentResult.load_json(path)
        key = "psnr_db_vs_total_energy_pj"
        assert loaded.fronts[key] == fft_result.fronts[key]

    def test_front_matches_offline_extraction(self, fft_result):
        key = "psnr_db_vs_total_energy_pj"
        offline = ParetoFront.from_result(fft_result, "psnr_db",
                                          "total_energy_pj")
        assert offline.to_dict() == fft_result.fronts[key].to_dict()


class TestWordLengthConfigAxis(object):
    def test_per_point_config_overrides(self):
        # Two design points differing only in the workload word length: the
        # narrower datapath must lose quality (and the space keeps both).
        points = [
            DesignPoint(adder=ExactAdder(16),
                        multiplier=TruncatedMultiplier(16, 16),
                        axis="sized", word_length=16, inject_pair=True),
            DesignPoint(adder=ExactAdder(12),
                        multiplier=TruncatedMultiplier(12, 12),
                        axis="sized", word_length=12, inject_pair=True,
                        config=(("data_width", 12),)),
        ]
        result = (Study()
                  .workload("fft", size=16, frames=2)
                  .design_space(points)
                  .seed(3)
                  .run())
        wide, narrow = result.rows
        assert wide["psnr_db"] > narrow["psnr_db"] + 5.0
