"""Tests for the accurate, data-sized and approximate multipliers."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import (
    AAMMultiplier,
    ABMMultiplier,
    BoothMultiplier,
    ExactMultiplier,
    RoundedMultiplier,
    TruncatedMultiplier,
)
from repro.operators.multipliers import booth_decode, booth_encode, booth_digit_count

int12 = st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1)


def _mse(operator, samples=20_000, seed=1):
    a, b = operator.random_inputs(samples, np.random.default_rng(seed))
    return float(np.mean(operator.normalized_error(a, b) ** 2))


class TestExactAndDataSized:
    def test_exact_multiplier_matches_product(self):
        mul = ExactMultiplier(8)
        a, b = mul.exhaustive_inputs()
        assert np.all(mul.compute(a, b) == a * b)
        assert np.all(mul.error(a, b) == 0)

    def test_truncated_keeps_top_bits(self):
        mul = TruncatedMultiplier(16, 16)
        a = np.array([12345], dtype=np.int64)
        b = np.array([-23456], dtype=np.int64)
        assert int(mul.compute(a, b)[0]) == (12345 * -23456) >> 16

    def test_truncated_error_bounded_by_dropped_bits(self):
        mul = TruncatedMultiplier(16, 16)
        a, b = mul.random_inputs(10_000, np.random.default_rng(0))
        error = mul.error(a, b)
        assert np.all(error >= 0)
        assert np.all(error < (1 << 16))

    def test_rounded_more_accurate_than_truncated(self):
        assert _mse(RoundedMultiplier(16, 16)) < _mse(TruncatedMultiplier(16, 16))

    def test_mse_grows_as_output_shrinks(self):
        assert _mse(TruncatedMultiplier(16, 24)) < _mse(TruncatedMultiplier(16, 16)) \
            < _mse(TruncatedMultiplier(16, 8))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TruncatedMultiplier(16, 1)
        with pytest.raises(ValueError):
            TruncatedMultiplier(16, 33)
        with pytest.raises(ValueError):
            ExactMultiplier(32)

    def test_names(self):
        assert TruncatedMultiplier(16, 16).name == "MULt(16,16)"
        assert RoundedMultiplier(16, 8).name == "MULr(16,8)"
        assert ExactMultiplier(16).name == "MUL(16,32)"


class TestBoothRecoding:
    def test_digit_count(self):
        assert booth_digit_count(16) == 8
        assert booth_digit_count(5) == 3

    @settings(max_examples=80)
    @given(value=int12)
    def test_encode_decode_roundtrip(self, value):
        digits = booth_encode(np.array([value]), 12)
        assert int(booth_decode(digits)[0]) == value

    @settings(max_examples=40)
    @given(value=int12)
    def test_digits_in_radix4_range(self, value):
        for digit in booth_encode(np.array([value]), 12):
            assert -2 <= int(digit[0]) <= 2

    def test_booth_multiplier_is_exact(self):
        mul = BoothMultiplier(7)
        a, b = mul.exhaustive_inputs()
        assert np.all(mul.error(a, b) == 0)

    def test_row_count_is_half_the_width(self):
        assert BoothMultiplier(16).row_count == 8


class TestAAM:
    def test_fixed_width_output(self):
        aam = AAMMultiplier(16)
        assert aam.output_width == 16
        assert aam.output_shift == 16
        assert aam.name == "AAM(16)"

    def test_accuracy_close_to_truncated_multiplier(self):
        """Van's compensation keeps AAM within a few dB of plain truncation."""
        mse_aam = _mse(AAMMultiplier(16))
        mse_trunc = _mse(TruncatedMultiplier(16, 16))
        ratio_db = 10 * np.log10(mse_aam / mse_trunc)
        assert ratio_db < 15.0

    def test_compensation_improves_accuracy(self):
        assert _mse(AAMMultiplier(16, compensation=True)) \
            < _mse(AAMMultiplier(16, compensation=False))

    def test_compensation_reduces_bias(self):
        rng = np.random.default_rng(2)
        with_comp = AAMMultiplier(12, compensation=True)
        without = AAMMultiplier(12, compensation=False)
        a, b = with_comp.random_inputs(30_000, rng)
        assert abs(np.mean(with_comp.normalized_error(a, b))) \
            < abs(np.mean(without.normalized_error(a, b)))

    def test_cell_counts(self):
        aam = AAMMultiplier(16)
        assert aam.pruned_cell_count() == 16 * 17 // 2
        assert aam.kept_cell_count() == 256 - aam.pruned_cell_count()

    def test_small_width_errors_bounded(self):
        aam = AAMMultiplier(6)
        a, b = aam.exhaustive_inputs()
        error = np.abs(aam.error(a, b))
        # Errors stay within a few output LSBs (a few times 2**6).
        assert np.max(error) < 6 * (1 << 6)


class TestABM:
    def test_fixed_width_output(self):
        abm = ABMMultiplier(16)
        assert abm.output_width == 16
        assert abm.output_shift == 16
        assert abm.row_count == 8

    def test_catastrophic_mse_with_moderate_ber(self):
        """Table I's striking asymmetry: ABM's MSE is orders of magnitude
        worse than MULt while its BER stays comparable."""
        from repro.metrics import bit_error_rate

        abm = ABMMultiplier(16)
        mult = TruncatedMultiplier(16, 16)
        mse_ratio_db = 10 * np.log10(_mse(abm) / _mse(mult))
        assert mse_ratio_db > 50.0

        rng = np.random.default_rng(3)
        a, b = abm.random_inputs(20_000, rng)
        ber_abm = bit_error_rate(abm.reference(a, b), abm.aligned(a, b), 32)
        ber_mult = bit_error_rate(mult.reference(a, b), mult.aligned(a, b), 32)
        assert ber_abm < ber_mult + 0.10

    def test_exact_conversion_restores_accuracy(self):
        """With a full carry-propagate conversion ABM behaves like a normal
        fixed-width pruned multiplier (the ablation of DESIGN.md)."""
        exact_conv = ABMMultiplier(16, carry_window=None)
        assert 10 * np.log10(_mse(exact_conv) / _mse(TruncatedMultiplier(16, 16))) < 20

    def test_carry_window_validation(self):
        with pytest.raises(ValueError):
            ABMMultiplier(16, carry_window=0)

    def test_names_capture_variants(self):
        assert ABMMultiplier(16).name == "ABM(16)"
        assert "nocomp" in ABMMultiplier(16, compensation=False).name
        assert "exactconv" in ABMMultiplier(16, carry_window=None).name

    @settings(max_examples=20)
    @given(a=st.integers(min_value=-128, max_value=127),
           b=st.integers(min_value=-128, max_value=127))
    def test_output_within_representable_range(self, a, b):
        abm = ABMMultiplier(8)
        result = int(abm.compute(np.array([a]), np.array([b]))[0])
        assert -(1 << 7) <= result < (1 << 7)
