"""The ``python -m repro`` CLI: subcommands, JSON contracts, README sync.

The CLI is the interface CI automation scripts consume, so the tests pin
its observable contract: exit codes, the JSON document on stdout, the
artifact layout under ``--out``, the golden bit-identity gate — and that
the README's "Command-line interface" section stays in sync with the real
parsers (every documented flag exists; every flag exists in the docs).
"""
import json
import re
from pathlib import Path

import pytest

from repro.cli import build_parser, main

README = Path(__file__).resolve().parent.parent / "README.md"

#: A cheap experiment pair: one plain table, one with a Pareto front.
EXPERIMENTS = ["table3_hevc_adders", "fft_joint_frontier"]


def run_cli(capsys, *argv):
    """Invoke the CLI in-process; returns (status, parsed stdout, stderr)."""
    status = main(list(argv))
    captured = capsys.readouterr()
    document = json.loads(captured.out) if captured.out.strip() else None
    return status, document, captured.err


# --------------------------------------------------------------------------- #
# list
# --------------------------------------------------------------------------- #
def test_list_reports_the_registry(capsys):
    status, document, _ = run_cli(capsys, "list")
    assert status == 0
    names = [entry["name"] for entry in document["experiments"]]
    assert "fft_joint_frontier" in names
    assert "ablation_rounding_mode" in names
    assert all(entry["title"] for entry in document["experiments"])

    status, document, _ = run_cli(capsys, "list", "--no-ablations")
    assert status == 0
    assert all(not entry["ablation"] for entry in document["experiments"])


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 2


def test_unknown_experiment_fails_cleanly(capsys):
    status, _, err = run_cli(capsys, "run", "no_such_experiment")
    assert status == 2
    assert "unknown experiments" in err


# --------------------------------------------------------------------------- #
# run / merge / golden gate
# --------------------------------------------------------------------------- #
def test_run_writes_artifacts_and_manifest(capsys, tmp_path):
    out = tmp_path / "out"
    status, document, _ = run_cli(
        capsys, "run", *EXPERIMENTS, "--out", str(out),
        "--store", str(tmp_path / "store"))
    assert status == 0
    assert document["command"] == "run"
    assert set(document["experiments"]) == set(EXPERIMENTS)
    for name in EXPERIMENTS:
        assert (out / f"{name}.json").is_file()
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["shard"] is None
    assert manifest["experiments"][EXPERIMENTS[0]]["rows"] > 0

    # Re-running against the same store is a pure resume: zero recomputed
    # points, identical artifacts.
    before = {name: (out / f"{name}.json").read_text()
              for name in EXPERIMENTS}
    status, _, _ = run_cli(
        capsys, "run", *EXPERIMENTS, "--out", str(out),
        "--store", str(tmp_path / "store"))
    assert status == 0
    for name in EXPERIMENTS:
        document = json.loads((out / f"{name}.json").read_text())
        assert document["metadata"]["store_hits"] == len(document["rows"])
        fresh = json.loads(before[name])
        assert document["rows"] == fresh["rows"]


def test_shard_merge_golden_gate_end_to_end(capsys, tmp_path):
    golden = tmp_path / "golden"
    status, _, _ = run_cli(capsys, "run", *EXPERIMENTS, "--out", str(golden))
    assert status == 0

    shard_dirs = []
    for index in range(2):
        out = tmp_path / f"shard{index}"
        shard_dirs.append(str(out))
        status, document, _ = run_cli(
            capsys, "run", *EXPERIMENTS, "--shard", f"{index}/2",
            "--out", str(out), "--store", str(out / ".repro_store"))
        assert status == 0
        assert document["shard"] == [index, 2]

    merged = tmp_path / "merged"
    status, document, _ = run_cli(
        capsys, "merge", *shard_dirs, "--out", str(merged),
        "--store", str(merged / ".repro_store"), "--golden", str(golden))
    assert status == 0
    assert document["identical_to_golden"] is True
    assert (merged / "manifest.json").is_file()
    # The folded store resumes a later unsharded run completely.
    status, document, _ = run_cli(
        capsys, "run", *EXPERIMENTS, "--store", str(merged / ".repro_store"))
    assert status == 0

    # Tampering with the golden rows must trip the gate with exit 1.
    target = golden / f"{EXPERIMENTS[0]}.json"
    tampered = json.loads(target.read_text())
    tampered["rows"][0][tampered["columns"][0]] = "tampered"
    target.write_text(json.dumps(tampered))
    status, document, _ = run_cli(
        capsys, "merge", *shard_dirs, "--golden", str(golden))
    assert status == 1
    assert document["identical_to_golden"] is False
    assert any(entry["experiment"] == EXPERIMENTS[0]
               for entry in document["mismatches"])


def test_merge_of_incomplete_shards_fails(capsys, tmp_path):
    out = tmp_path / "shard0"
    status, _, _ = run_cli(capsys, "run", EXPERIMENTS[0], "--shard", "0/2",
                        "--out", str(out))
    assert status == 0
    status, _, err = run_cli(capsys, "merge", str(out))
    assert status == 2
    assert "do not cover" in err


def test_merge_of_nothing_fails(capsys, tmp_path):
    status, _, _ = run_cli(capsys, "merge", str(tmp_path / "empty"))
    assert status == 2


# --------------------------------------------------------------------------- #
# bench
# --------------------------------------------------------------------------- #
def test_bench_times_backends_and_checks_identity(capsys, tmp_path):
    output = tmp_path / "bench.json"
    status, document, _ = run_cli(
        capsys, "bench", "--experiment", "table3_hevc_adders",
        "--backends", "direct", "lut", "--output", str(output))
    assert status == 0
    assert document["identical_records"] is True
    assert set(document["backends"]) == {"direct", "lut"}
    for record in document["backends"].values():
        assert record["seconds"] >= 0
        assert record["rows"] > 0
    assert json.loads(output.read_text()) == document


# --------------------------------------------------------------------------- #
# search
# --------------------------------------------------------------------------- #
def test_search_json_contract_and_store_replay(capsys, tmp_path):
    front_out = tmp_path / "front.json"
    argv = ["search", "dct_per_pass", "--seed", "3", "--population", "6",
            "--generations", "1", "--store", str(tmp_path / "store"),
            "--front-out", str(front_out)]
    status, document, _ = run_cli(capsys, *argv)
    assert status == 0
    assert document["command"] == "search"
    assert document["target"] == "dct_per_pass"
    assert document["strategy"] == "nsga2"
    assert document["space_size"] == 144
    assert document["evaluations"] > 0
    assert document["front"]["points"]
    assert json.loads(front_out.read_text()) == document["front"]

    # Same seed against the same store: replayed warm, bit-identical.
    status, again, _ = run_cli(capsys, *argv)
    assert status == 0
    assert again["store_hits"] == again["evaluations"]
    assert again["fresh_evaluations"] == 0
    assert again["front"] == document["front"]
    assert again["rounds"] == document["rounds"]


def test_search_gates_need_an_enumerable_target(capsys):
    status, _, err = run_cli(capsys, "search", "fft_per_stage",
                             "--gate-exhaustive")
    assert status == 2
    assert "not enumerable" in err


def test_search_unknown_target_fails_cleanly(capsys):
    status, _, err = run_cli(capsys, "search", "no_such_target")
    assert status == 2
    assert "unknown search target" in err


# --------------------------------------------------------------------------- #
# README --help sync
# --------------------------------------------------------------------------- #
def readme_cli_section() -> str:
    text = README.read_text()
    match = re.search(r"## Command-line interface\n(.*?)\n## ", text,
                      flags=re.DOTALL)
    assert match, "README lost its 'Command-line interface' section"
    return match.group(1)


def parser_options():
    """Long options per (sub)command, straight from the argparse tree.

    Recurses into nested subparsers, so ``fleet plan`` / ``fleet work`` /
    ``fleet status`` / ``fleet harvest`` each get their own entry and the
    README must document every verb's flags.
    """
    import argparse

    def walk(prefix, parser, into):
        for action in parser._actions:
            if not isinstance(action, argparse._SubParsersAction):
                continue
            for name, sub in action.choices.items():
                full = f"{prefix} {name}".strip()
                into[full] = {option for sub_action in sub._actions
                              for option in sub_action.option_strings
                              if option.startswith("--")
                              and option != "--help"}
                walk(full, sub, into)

    options = {}
    walk("", build_parser(), options)
    return options


def test_readme_documents_every_subcommand_and_flag():
    section = readme_cli_section()
    options = parser_options()
    for subcommand in options:
        assert re.search(rf"python -m repro {subcommand}\b", section), \
            f"README does not show `python -m repro {subcommand}`"
    for subcommand, flags in options.items():
        for flag in flags:
            assert flag in section, \
                f"README does not document {subcommand} {flag}"


def top_level_options():
    """Long options of the root parser itself (``--version``, ``--quiet``)."""
    return {option for action in build_parser()._actions
            for option in action.option_strings
            if option.startswith("--") and option != "--help"}


def test_readme_flags_all_exist_in_the_parsers():
    section = readme_cli_section()
    documented = set(re.findall(r"(--[a-z][a-z-]*)", section)) - {"--help"}
    real = {flag for flags in parser_options().values() for flag in flags}
    real |= top_level_options()
    ghost = documented - real
    assert not ghost, f"README documents options that do not exist: {ghost}"


def test_help_text_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for subcommand in ("run", "merge", "list", "bench", "serve", "query",
                       "fleet", "report"):
        assert subcommand in out


# --------------------------------------------------------------------------- #
# --quiet / REPRO_QUIET
# --------------------------------------------------------------------------- #
def test_quiet_flag_silences_stderr_but_not_stdout(capsys):
    status, document, err = run_cli(capsys, "--quiet", "list")
    assert status == 0
    assert document["experiments"]
    assert err == ""


def test_repro_quiet_env_silences_stderr(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_QUIET", "1")
    status, document, err = run_cli(
        capsys, "run", EXPERIMENTS[0], "--out", str(tmp_path / "out"))
    assert status == 0
    assert document["command"] == "run"
    assert err == ""
    # REPRO_QUIET=0 keeps the chatter.
    monkeypatch.setenv("REPRO_QUIET", "0")
    status, _, err = run_cli(capsys, "run", EXPERIMENTS[0])
    assert status == 0
    assert "ran 1 experiments" in err


# --------------------------------------------------------------------------- #
# query (against an in-process server)
# --------------------------------------------------------------------------- #
def test_query_round_trip_and_exit_codes(capsys):
    from repro.server import EvalServer

    with EvalServer(batch_window_s=0.0) as server:
        status, document, _ = run_cli(
            capsys, "query", "status", "--url", server.url)
        assert status == 0
        assert document["status"] == "ok"
        assert document["result"]["workers"] >= 1

        # --params JSON merged with repeatable --param KEY=VALUE overrides.
        status, document, _ = run_cli(
            capsys, "query", "experiments", "--url", server.url,
            "--params", '{"ablations": true}', "--param", "ablations=false")
        assert status == 0
        assert all(not entry["ablation"]
                   for entry in document["result"]["experiments"])

        # An error envelope is still printed, with exit 1.
        status, document, err = run_cli(
            capsys, "query", "frobnicate", "--url", server.url)
        assert status == 1
        assert document["code"] == "unknown_action"
        assert "unknown_action" in err

    # No server at all: exit 2, no JSON document.
    status, document, err = run_cli(
        capsys, "query", "status", "--url", server.url, "--timeout", "2")
    assert status == 2
    assert document is None
    assert "no evaluation server" in err


def test_query_rejects_malformed_params(capsys):
    status, _, err = run_cli(
        capsys, "query", "status", "--url", "http://127.0.0.1:1",
        "--params", '["not", "an", "object"]')
    assert status == 2
    assert "JSON object" in err
    status, _, err = run_cli(
        capsys, "query", "status", "--url", "http://127.0.0.1:1",
        "--param", "missing-separator")
    assert status == 2
    assert "KEY=VALUE" in err


# --------------------------------------------------------------------------- #
# fleet / report
# --------------------------------------------------------------------------- #
def test_fleet_plan_work_status_harvest_round_trip(capsys, tmp_path,
                                                   monkeypatch):
    monkeypatch.setenv("REPRO_STORE_FSYNC", "0")
    golden = tmp_path / "golden"
    status, _, _ = run_cli(capsys, "run", *EXPERIMENTS, "--out", str(golden))
    assert status == 0

    queue = tmp_path / "q"
    status, document, _ = run_cli(
        capsys, "fleet", "plan", str(queue), *EXPERIMENTS,
        "--shards", "2", "--ttl", "60", "--max-attempts", "2")
    assert status == 0
    assert document["command"] == "fleet plan"
    assert document["tasks"] == ["shard-000-of-002", "shard-001-of-002"]
    assert document["shards"] == 2

    # Planning the same directory twice fails cleanly.
    status, _, err = run_cli(capsys, "fleet", "plan", str(queue))
    assert status == 2
    assert "already holds" in err

    # Harvesting before the fleet drains refuses with exit 1.
    status, document, _ = run_cli(capsys, "fleet", "harvest", str(queue))
    assert status == 1
    assert len(document["outstanding"]) == 2

    status, document, _ = run_cli(
        capsys, "fleet", "work", str(queue), "--owner", "cli-worker")
    assert status == 0
    assert document["command"] == "fleet work"
    assert document["completed"] == 2
    assert document["drained"] is True

    status, document, _ = run_cli(capsys, "fleet", "status", str(queue))
    assert status == 0
    assert document["command"] == "fleet status"
    assert document["done"] == 2
    assert document["finished"] is True
    assert document["reclaimed_now"] == 0

    merged = tmp_path / "merged"
    status, document, _ = run_cli(
        capsys, "fleet", "harvest", str(queue), "--out", str(merged),
        "--store", str(merged / ".repro_store"), "--golden", str(golden))
    assert status == 0
    assert document["command"] == "fleet harvest"
    assert document["identical_to_golden"] is True
    assert document["store"]["absorbed"] > 0
    for name in EXPERIMENTS:
        assert (merged / f"{name}.json").is_file()

    # The dashboard renders straight off the harvested bundle.
    output = tmp_path / "report.html"
    status, document, _ = run_cli(
        capsys, "report", str(merged), "--output", str(output),
        "--title", "smoke dashboard")
    assert status == 0
    assert document["command"] == "report"
    assert document["experiments"] == 2
    assert output.is_file()
    assert "smoke dashboard" in output.read_text()


def test_fleet_work_on_unplanned_directory_fails_cleanly(capsys, tmp_path):
    status, _, err = run_cli(capsys, "fleet", "work",
                             str(tmp_path / "nowhere"))
    assert status == 2
    assert "no queue.json" in err


def test_report_on_empty_bundle_fails_cleanly(capsys, tmp_path):
    status, _, err = run_cli(capsys, "report", str(tmp_path / "empty"))
    assert status == 2
    assert "no experiment results" in err


def test_report_reads_named_bench_history(capsys, tmp_path):
    out = tmp_path / "out"
    status, _, _ = run_cli(capsys, "run", EXPERIMENTS[0],
                           "--out", str(out))
    assert status == 0
    bench = tmp_path / "BENCH_perf.json"
    bench.write_text(json.dumps({"script": "benchmarks/perf.py",
                                 "studies": {}}))
    status, document, _ = run_cli(
        capsys, "report", str(out), "--bench", str(bench),
        "--output", str(tmp_path / "report.html"))
    assert status == 0
    assert document["bench"]["perf"] == str(bench)
    assert document["bench"]["serve"] is None


# --------------------------------------------------------------------------- #
# store scrub / fault plans
# --------------------------------------------------------------------------- #
def test_store_scrub_quarantines_and_reports(capsys, tmp_path):
    from repro.core import ResultStore

    store_dir = tmp_path / "store"
    store = ResultStore(store_dir)
    store.save("sweep", {"x": 1}, {"value": 1})
    store.save("sweep", {"x": 2}, {"value": 2})
    record = sorted((store_dir / "sweep").glob("*.json"))[0]
    record.write_text(record.read_text()[:15])

    status, document, _ = run_cli(
        capsys, "store", "scrub", str(store_dir), "--dry-run")
    assert status == 0
    assert document["dry_run"] is True
    assert document["corrupt"] == 1
    assert document["quarantined"] == 0
    assert record.exists()

    status, document, _ = run_cli(capsys, "store", "scrub", str(store_dir))
    assert status == 0
    assert document["dry_run"] is False
    assert document["quarantined"] == 1
    assert not record.exists()
    assert (store_dir / "quarantine" / "sweep" / record.name).exists()


def test_fault_plan_activates_for_the_run_then_clears(
        capsys, tmp_path, monkeypatch):
    from repro.faults import fault_active
    from repro.faults.inject import ENV_FAULT_PLAN

    monkeypatch.setenv("REPRO_STORE_FSYNC", "0")
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({
        "seed": 5,
        "rules": [{"point": "store.save", "kind": "torn_write",
                   "nth": [2], "params": {"keep_fraction": 0.4}}]}))
    status, document, err = run_cli(
        capsys, "run", EXPERIMENTS[0], "--out", str(tmp_path / "out"),
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path))
    # The faulted run still succeeds — a torn record is a cache miss,
    # never a failure — and the activation is logged then torn down.
    assert status == 0
    assert "fault plan active" in err
    assert fault_active() is False
    assert ENV_FAULT_PLAN not in __import__("os").environ
    scrub_status, report, _ = run_cli(
        capsys, "store", "scrub", str(tmp_path / "store"))
    assert scrub_status == 0
    assert report["corrupt"] == 1


def test_invalid_fault_plan_fails_cleanly(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"rules": [
        {"point": "nowhere", "kind": "nothing", "nth": [1]}]}))
    status, _, err = run_cli(capsys, "run", EXPERIMENTS[0],
                             "--fault-plan", str(bad))
    assert status == 2
    assert "unknown fault point" in err
