"""The package version is declared twice; the two must never drift.

``pyproject.toml`` is what packaging tools see, ``repro.__version__`` is
what run manifests, bench documents and the dashboard stamp — a drift
means artifacts claim a version pip never shipped.
"""
import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def pyproject_version() -> str:
    # Regex rather than a TOML parser: the floor is Python 3.9, which has
    # no stdlib tomllib.
    match = re.search(r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(),
                      flags=re.MULTILINE)
    assert match, "pyproject.toml declares no version"
    return match.group(1)


def test_package_version_matches_pyproject():
    assert repro.__version__ == pyproject_version()


def test_version_is_semver_shaped():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
